#!/usr/bin/env python
"""Capacity planning: how long would a trillion-edge job take?

Reproduces the paper's headline capacity experiment (Section 9.3:
RMAT-36, one trillion edges, 16 TB of input on 32 machines' HDDs) and
then uses the same machinery to answer planning questions a Chaos
operator would ask:

* how does the wall time change with cluster size?
* SSDs vs HDDs at this scale?
* what does the activity profile of MY algorithm imply?

The runs are phantom (model-mode) executions of the real engine — the
scheduling, batching and stealing code paths all run; only chunk
payloads are elided — using activity profiles extracted from small
functional runs (trace-driven scaling).

Run:  python examples/capacity_planning.py   (takes a few minutes)
"""

from repro import (
    BFS,
    ClusterConfig,
    GIGE_40,
    PageRank,
    bfs_profile,
    extract_profile,
    fixed_profile,
    project_capacity,
    rmat_graph,
    run_algorithm,
    to_undirected,
)
from repro.store.device import HDD_RAID0, SSD_480GB

MACRO_CHUNK = 1 << 30  # 1 GB macro-chunks keep the event count tractable


def config_for(machines: int, device) -> ClusterConfig:
    return ClusterConfig(
        machines=machines,
        device=device,
        network=GIGE_40,
        chunk_bytes=MACRO_CHUNK,
        partitions_per_machine=1,
    )


def main() -> None:
    # -- 1. The paper's experiment ----------------------------------------
    print("== RMAT-36 on 32 machines, HDD (the paper's Section 9.3) ==")
    bfs = project_capacity(
        BFS(), bfs_profile(13), scale=36, machines=32,
        config=config_for(32, HDD_RAID0),
    )
    print(f"  {bfs.summary()}")
    print("  paper: ~9 h, ~214 TB of I/O, ~7 GB/s aggregate")
    pagerank = project_capacity(
        PageRank(iterations=5), fixed_profile(5), scale=36, machines=32,
        config=config_for(32, HDD_RAID0),
    )
    print(f"  {pagerank.summary()}")
    print("  paper: ~19 h, ~395 TB of I/O")

    # -- 2. Cluster-size sweep ---------------------------------------------
    print("\n== 5-iteration PageRank on RMAT-34, HDD, by cluster size ==")
    for machines in (8, 16, 32, 64):
        projection = project_capacity(
            PageRank(iterations=5), fixed_profile(5), scale=34,
            machines=machines, config=config_for(machines, HDD_RAID0),
        )
        print(f"  m={machines:3d}: {projection.runtime_hours:6.2f} h "
              f"({projection.aggregate_bandwidth_gbps:.1f} GB/s)")

    # -- 3. Device choice ------------------------------------------------
    print("\n== Same job, SSD vs HDD (32 machines) ==")
    for device in (HDD_RAID0, SSD_480GB):
        projection = project_capacity(
            PageRank(iterations=5), fixed_profile(5), scale=34, machines=32,
            config=config_for(32, device),
        )
        print(f"  {device.name:10s}: {projection.runtime_hours:6.2f} h")

    # -- 4. Trace-driven profile for a custom workload ----------------------
    print("\n== Trace-driven: extract a real BFS profile, then project ==")
    small = to_undirected(rmat_graph(12, seed=3, weighted=True))
    functional = run_algorithm(
        BFS(root=0), small,
        ClusterConfig(machines=4, chunk_bytes=16 * 1024),
    )
    profile = extract_profile(functional)
    print(f"  extracted profile: {profile.iterations} iterations, "
          f"{profile.total_update_factor():.2f} updates/edge total")
    stretched = profile.stretched(13)  # wider frontier at scale 36
    projection = project_capacity(
        BFS(), stretched, scale=36, machines=32,
        config=config_for(32, HDD_RAID0),
    )
    print(f"  projected: {projection.summary()}")


if __name__ == "__main__":
    main()

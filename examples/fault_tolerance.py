#!/usr/bin/env python
"""Fault tolerance: checkpoints, failure, recovery (Section 6.6).

Chaos checkpoints the vertex values — the entire computation state — at
every phase barrier with a two-phase protocol, so a transient machine
failure costs only the partial iteration since the last barrier plus a
checkpoint restore.

This example:

1. measures the checkpointing overhead (the Figure 13 experiment);
2. kills a machine mid-run and recovers, showing the timeline
   decomposition and that the recovered result is bit-identical;
3. shows vertex-set replication (the paper's suggested extension for
   *storage* failures) and its write-amplification cost.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import ClusterConfig, PageRank, rmat_graph
from repro.core.recovery import run_with_failure
from repro.core.runtime import ChaosCluster, run_algorithm


def main() -> None:
    graph = rmat_graph(scale=12, seed=11)
    print(f"graph: {graph}")
    base_config = ClusterConfig(
        machines=8, chunk_bytes=32 * 1024, partitions_per_machine=1
    )

    # -- 1. Checkpointing overhead (Figure 13) ----------------------------
    plain = run_algorithm(PageRank(iterations=5), graph, base_config)
    checkpointed_config = base_config.with_(checkpointing=True)
    checkpointed = run_algorithm(
        PageRank(iterations=5), graph, checkpointed_config
    )
    overhead = checkpointed.runtime / plain.runtime - 1.0
    print(
        f"\n[checkpointing] {checkpointed.checkpoints} checkpoints, "
        f"{overhead:+.1%} runtime (paper: under 6%)"
    )

    # -- 2. Failure and recovery ------------------------------------------
    report = run_with_failure(
        lambda: PageRank(iterations=5),
        graph,
        checkpointed_config,
        fail_after_iterations=3,
    )
    print("\n[recovery] machine lost during iteration 3:")
    print(f"  useful work before failure: {report.time_before_failure * 1000:.1f} ms")
    print(f"  checkpoint restore:          {report.restore_seconds * 1000:.1f} ms")
    print(f"  re-execution to completion:  {report.time_after_restore * 1000:.1f} ms")
    print(f"  total: {report.total_runtime * 1000:.1f} ms vs undisturbed "
          f"{report.baseline_runtime * 1000:.1f} ms ({report.overhead_fraction:+.1%})")

    identical = np.allclose(
        report.result.values["rank"], checkpointed.values["rank"]
    )
    print(f"  recovered ranks identical to undisturbed run: {identical}")

    # -- 3. Vertex-set replication (storage-failure tolerance) -------------
    replicated = run_algorithm(
        PageRank(iterations=5), graph, base_config.with_(vertex_replicas=2)
    )
    write_amplification = replicated.storage_bytes / plain.storage_bytes
    print(
        f"\n[replication] 2x vertex replicas: storage I/O x"
        f"{write_amplification:.2f}, runtime "
        f"{replicated.runtime / plain.runtime - 1.0:+.1%} "
        "(vertex sets are small next to edges/updates)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Web-graph pipeline: out-of-core processing through real files.

Mirrors the paper's Data Commons experiment (Figure 9): a web-like
hyperlink graph processed from secondary storage — here literally, using
the file-backed chunk store so every edge and update chunk flows through
the filesystem — on an HDD-modelled cluster.

Also demonstrates the binary edge-list input format (Section 8) and the
SCC structure analysis (the web's "bow-tie").

Run:  python examples/web_graph_pipeline.py
"""

import os
import tempfile

import numpy as np

from repro import ClusterConfig, HDD_RAID0, PageRank, run_algorithm, run_scc
from repro.core.runtime import ChaosCluster
from repro.graph import data_commons_like, read_edges, write_edges
from repro.store import FileChunkStore
from repro.store.device import HDD_SCALED


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="chaos-web-")
    print(f"working directory: {workdir}")

    # -- 1. Crawl ingest: binary edge list on disk ------------------------
    crawl = data_commons_like(num_pages=4096, avg_degree=12.0, seed=2014)
    input_path = os.path.join(workdir, "hyperlinks.bin")
    size = write_edges(crawl, input_path)
    print(
        f"crawl: {crawl} -> {input_path} "
        f"({size / 1e6:.1f} MB, compact binary format)"
    )

    # The computation consumes the unsorted binary edge list, exactly
    # like the paper's pipeline.
    graph = read_edges(input_path, crawl.num_vertices, weighted=False)

    # -- 2. HDD cluster with file-backed storage engines ---------------------
    config = ClusterConfig(
        machines=4,
        device=HDD_SCALED,
        chunk_bytes=64 * 1024,
        partitions_per_machine=2,
    )
    cluster = ChaosCluster(
        config,
        backend_factory=lambda machine: FileChunkStore(
            os.path.join(workdir, f"machine{machine}")
        ),
    )

    # -- 3. PageRank over the hyperlink graph ----------------------------
    result = cluster.run(PageRank(iterations=5), graph)
    ranks = result.values["rank"]
    top_pages = np.argsort(ranks)[::-1][:5]
    print("\n[PR] top pages:", ", ".join(str(p) for p in top_pages))
    print(
        f"[PR] simulated: {result.runtime * 1000:.0f} ms, "
        f"{result.aggregate_bandwidth / 1e6:.0f} MB/s aggregate "
        f"({config.machines}x {config.device.name})"
    )
    spilled = sum(
        os.path.getsize(os.path.join(root, name))
        for root, _dirs, files in os.walk(workdir)
        for name in files
    )
    print(f"[PR] bytes on disk across storage engines: {spilled / 1e6:.1f} MB")

    # -- 4. Bow-tie structure via SCC --------------------------------------
    scc = run_scc(graph, config.with_(machines=2))
    ids = scc.values["scc"]
    _unique, counts = np.unique(ids, return_counts=True)
    print(
        f"\n[SCC] {len(counts)} strongly connected components; "
        f"largest (the web's core) has {counts.max()} pages"
    )
    print(f"[SCC] driver: {scc.rounds} rounds, {len(scc.jobs)} GAS jobs, "
          f"{scc.runtime * 1000:.0f} ms simulated")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: PageRank on a simulated 8-machine Chaos cluster.

Generates an RMAT graph, runs five PageRank iterations through the full
Chaos pipeline (streaming-partition pre-processing, randomized chunk
placement, batched requests, work stealing), and prints both the
computed ranks and the simulated-cluster performance report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, PageRank, rmat_graph, run_algorithm


def main() -> None:
    # A scale-12 RMAT graph: 4096 vertices, 65536 edges (the paper's
    # synthetic workload family, Section 8).
    graph = rmat_graph(scale=12, seed=42)
    print(f"input graph: {graph}")

    # An 8-machine cluster with the paper's hardware defaults:
    # 16 cores, 32 GB RAM, 400 MB/s SSD, 40 GigE, 4 MB chunks scaled to
    # 64 kB to match the small graph.
    config = ClusterConfig(
        machines=8,
        chunk_bytes=64 * 1024,
        partitions_per_machine=2,
    )
    print(
        f"cluster: {config.machines} machines, "
        f"{config.device.name} storage, {config.network.name} network, "
        f"request window {config.effective_request_window()}"
    )

    result = run_algorithm(PageRank(iterations=5), graph, config)

    print()
    print("=== results ===")
    ranks = result.values["rank"]
    top = np.argsort(ranks)[::-1][:5]
    for vertex in top:
        print(f"  vertex {vertex:5d}: rank {ranks[vertex]:.2f}")

    print()
    print("=== simulated cluster performance ===")
    print(f"  runtime:             {result.runtime * 1000:.1f} ms (simulated)")
    print(f"  pre-processing:      {result.preprocessing_seconds * 1000:.1f} ms")
    print(f"  iterations:          {result.iterations}")
    print(
        f"  aggregate bandwidth: {result.aggregate_bandwidth / 1e6:.0f} MB/s "
        f"(device max {config.device.bandwidth * config.machines / 1e6:.0f})"
    )
    print(f"  steals accepted:     {result.steals_accepted}")
    print(f"  network traffic:     {result.network_bytes / 1e6:.1f} MB")

    breakdown = result.total_breakdown().fractions()
    print("  runtime breakdown:")
    for category, fraction in breakdown.items():
        print(f"    {category:<11s} {fraction:6.1%}")


if __name__ == "__main__":
    main()

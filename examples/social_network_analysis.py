#!/usr/bin/env python
"""Social-network analysis: a multi-algorithm pipeline on one graph.

The paper's motivating domain is mining graph-structured data "from
social networks to national security" (Section 1).  This example runs a
realistic analysis pipeline over one skewed social-style graph on a
simulated 16-machine cluster:

1. WCC        — find the communities' connected structure;
2. BFS        — degrees of separation from the most-connected member;
3. PageRank   — influence ranking;
4. MIS        — a maximal set of pairwise non-adjacent members (e.g. a
                seed set for independent surveys);
5. Conductance — how separable the graph's two halves are.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import (
    BFS,
    MIS,
    WCC,
    ClusterConfig,
    Conductance,
    PageRank,
    rmat_graph,
    run_algorithm,
    to_undirected,
)
from repro.graph.stats import out_degrees


def main() -> None:
    # RMAT's skewed degree distribution mimics social-network hubs.
    directed = rmat_graph(scale=12, seed=7)
    social = to_undirected(directed)
    print(f"social graph: {social}")

    config = ClusterConfig(
        machines=16, chunk_bytes=32 * 1024, partitions_per_machine=1
    )

    # 1. Communities ------------------------------------------------------
    wcc = run_algorithm(WCC(), social, config)
    labels = wcc.values["label"]
    components, sizes = np.unique(labels, return_counts=True)
    giant = int(sizes.max())
    print(
        f"\n[WCC] {len(components)} components; giant component has "
        f"{giant} members ({giant / social.num_vertices:.0%})"
    )

    # 2. Degrees of separation -------------------------------------------
    hub = int(np.argmax(out_degrees(social)))
    bfs = run_algorithm(BFS(root=hub), social, config)
    distance = bfs.values["distance"]
    reached = distance >= 0
    print(
        f"[BFS] from hub {hub}: reached {int(reached.sum())} members, "
        f"eccentricity {int(distance.max())}, "
        f"mean separation {distance[reached].mean():.2f}"
    )

    # 3. Influence ----------------------------------------------------------
    pagerank = run_algorithm(PageRank(iterations=10), directed, config)
    ranks = pagerank.values["rank"]
    influencers = np.argsort(ranks)[::-1][:5]
    print("[PR ] top influencers:", ", ".join(str(v) for v in influencers))

    # 4. Independent seed set ---------------------------------------------
    mis = run_algorithm(MIS(), social, config)
    seed_set = int((mis.values["status"] == 1).sum())
    print(
        f"[MIS] independent seed set of {seed_set} members "
        f"({seed_set / social.num_vertices:.0%} of the graph)"
    )

    # 5. Separability ----------------------------------------------------
    conductance = Conductance()
    result = run_algorithm(conductance, directed, config)
    print(f"[Cond] id-space bisection conductance: "
          f"{conductance.conductance_from_values(result.values):.3f}")

    # Cluster-level accounting across the pipeline.
    total = wcc.runtime + bfs.runtime + pagerank.runtime + mis.runtime
    print(
        f"\npipeline simulated time: {total * 1000:.0f} ms on "
        f"{config.machines} machines; "
        f"steals: {wcc.steals_accepted + bfs.steals_accepted + pagerank.steals_accepted + mis.steals_accepted}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Writing your own algorithm: k-core decomposition on Chaos.

Demonstrates the public extension surface — subclass
:class:`repro.GasAlgorithm` with vectorized scatter/gather/apply and the
runtime gives you distribution, streaming, batching and work stealing
for free.

The algorithm: the k-core of a graph is the maximal subgraph where every
vertex has degree >= k.  Peeling computes it iteratively — remove
vertices with effective degree < k; their removal lowers neighbours'
degrees; repeat to fixpoint.  Removal notifications are exactly GAS
updates: dead vertices scatter "1" over their edges, gather sums the
losses, apply decrements degrees and kills newly under-k vertices.

The example sweeps k to produce the full coreness decomposition and
checks itself against networkx.  (A production version of this
algorithm ships in the library as :class:`repro.KCore` /
:func:`repro.run_kcore_decomposition`; this example keeps its own copy
so the full implementation is visible in one file.)

Run:  python examples/custom_algorithm.py
"""

import networkx as nx
import numpy as np

from repro import ClusterConfig, GasAlgorithm, rmat_graph, run_algorithm, to_undirected


class KCore(GasAlgorithm):
    """Peel to the k-core; final ``alive`` marks core membership."""

    name = "kcore"
    needs_undirected = True
    needs_out_degrees = True
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = None  # peel until quiescent

    def __init__(self, k: int, alive=None, degree=None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        # Optional warm start from the previous k's fixpoint (peeling is
        # monotone in k, so the sweep reuses state).
        self._alive = alive
        self._degree = degree

    def init_values(self, ctx):
        if self._alive is not None:
            alive = self._alive.copy()
            degree = self._degree.copy()
        else:
            alive = np.ones(ctx.num_vertices, dtype=bool)
            degree = ctx.out_degrees.astype(np.int64).copy()
        died = alive & (degree < self.k)
        alive[died] = False
        return {"alive": alive, "degree": degree, "died_last": died}

    def scatter(self, values, src_local, dst, weight, iteration):
        dying = values["died_last"][src_local]
        if not dying.any():
            return None
        return dst[dying], np.ones(int(dying.sum()), dtype=np.int64)

    def make_accumulator(self, n):
        return np.zeros(n, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None):
        np.add.at(accum, dst_local, values)

    def merge(self, accum, other):
        accum += other

    def apply(self, values, accum, iteration):
        values["degree"] -= accum
        died = values["alive"] & (values["degree"] < self.k)
        values["alive"][died] = False
        values["died_last"][:] = died
        return int(np.count_nonzero(died))


def coreness_decomposition(graph, config):
    """Coreness of every vertex, by sweeping k on the cluster."""
    coreness = np.zeros(graph.num_vertices, dtype=np.int64)
    alive = None
    degree = None
    k = 1
    while True:
        result = run_algorithm(KCore(k, alive, degree), graph, config)
        alive = result.values["alive"]
        degree = result.values["degree"]
        if not alive.any():
            break
        coreness[alive] = k
        k += 1
    return coreness


def main() -> None:
    directed = rmat_graph(scale=10, seed=21, weighted=True)
    graph = to_undirected(directed)
    print(f"graph: {graph}")

    config = ClusterConfig(
        machines=4, chunk_bytes=8 * 1024, partitions_per_machine=2
    )
    coreness = coreness_decomposition(graph, config)

    values, counts = np.unique(coreness, return_counts=True)
    print("\ncoreness histogram (coreness: vertices):")
    for value, count in zip(values, counts):
        print(f"  {value:3d}: {count}")
    print(f"degeneracy (max coreness): {coreness.max()}")

    # Self-check against networkx.
    reference_graph = nx.Graph()
    reference_graph.add_nodes_from(range(graph.num_vertices))
    reference_graph.add_edges_from(zip(graph.src, graph.dst))
    reference = nx.core_number(reference_graph)
    expected = np.array([reference[v] for v in range(graph.num_vertices)])
    assert np.array_equal(coreness, expected), "mismatch vs networkx!"
    print("\nvalidated against networkx.core_number: exact match")


if __name__ == "__main__":
    main()

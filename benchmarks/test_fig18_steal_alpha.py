"""Figure 18: the work-stealing bias sweep, BFS + PR at m = 32.

Paper: alpha = 1 (the criterion of Section 5.4) gives the best runtime;
alpha = 0 (no stealing) suffers load imbalance (idle time at barriers),
alpha = inf (always steal) wastes time loading vertex sets for
partitions that are nearly done.
"""

import math

import pytest

from harness import BASE_SCALE, fmt_row, make_config, report, run_named

ALPHAS = [0.0, 0.8, 1.0, 1.2, math.inf]
SCALE = BASE_SCALE + 5
MACHINES_COUNT = 32


def _label(alpha: float) -> str:
    return "inf" if math.isinf(alpha) else f"{alpha:g}"


@pytest.mark.benchmark(group="fig18")
def test_fig18_steal_bias(benchmark):
    def experiment():
        results = {}
        for name in ("BFS", "PR"):
            for alpha in ALPHAS:
                config = make_config(MACHINES_COUNT, SCALE, steal_alpha=alpha)
                results[(name, alpha)] = run_named(name, SCALE, config)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        fmt_row("curve", ["runtime", "norm", "steals", "barrier%"], width=10)
    ]
    for name in ("BFS", "PR"):
        reference = results[(name, 1.0)].runtime
        for alpha in ALPHAS:
            result = results[(name, alpha)]
            barrier = result.total_breakdown().fractions()["barrier"]
            lines.append(
                fmt_row(
                    f"{name} a={_label(alpha)}",
                    [
                        result.runtime,
                        result.runtime / reference,
                        result.steals_accepted,
                        barrier * 100,
                    ],
                    width=10,
                )
            )
    lines.append("")
    lines.append("paper: alpha=1 best; alpha=0 idles at barriers; "
                 "alpha=inf pays useless vertex-set loads")
    report("fig18_steal_alpha", lines)

    for name in ("BFS", "PR"):
        default = results[(name, 1.0)].runtime
        never = results[(name, 0.0)].runtime
        always = results[(name, math.inf)].runtime
        assert default <= never * 1.02, f"{name}: alpha=1 not better than 0"
        assert default <= always * 1.02, f"{name}: alpha=1 not better than inf"
        # No stealing shows more barrier idle time than the default.
        idle_never = results[(name, 0.0)].total_breakdown().fractions()["barrier"]
        idle_default = results[(name, 1.0)].total_breakdown().fractions()["barrier"]
        assert idle_never > idle_default

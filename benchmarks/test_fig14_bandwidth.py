"""Figure 14: aggregate storage bandwidth under weak scaling.

Paper: the bandwidth seen by the computation engines scales linearly
with the machine count and sits within 3% of the devices' aggregate
maximum (measured by fio) — the demonstration that random placement +
batching saturates the bottleneck resource without any locality.

Reproduction: same weak-scaling runs as Figure 7; the reproduced shape
is linear scaling close to the device envelope.  (At benchmark scale
the phases are short enough that barrier tails cost more than the
paper's 3%; the gap is reported.)
"""

import pytest

from harness import (
    ALGORITHM_NAMES,
    MACHINES,
    fmt_row,
    report,
    weak_scaling_run,
)
from repro.store.device import SSD_BENCH


@pytest.mark.benchmark(group="fig14")
def test_fig14_aggregate_bandwidth(benchmark):
    def experiment():
        return {
            name: {
                m: weak_scaling_run(name, m).aggregate_bandwidth
                for m in MACHINES
            }
            for name in ALGORITHM_NAMES
        }

    bandwidth = benchmark.pedantic(experiment, rounds=1, iterations=1)

    device_max = {m: SSD_BENCH.bandwidth * m for m in MACHINES}
    lines = [fmt_row("alg", [f"m={m}" for m in MACHINES], width=9)]
    for name in ALGORITHM_NAMES:
        base = bandwidth[name][1]
        lines.append(
            fmt_row(name, [bandwidth[name][m] / base for m in MACHINES], width=9)
        )
    lines.append(
        fmt_row("max", [device_max[m] / device_max[1] for m in MACHINES], width=9)
    )
    lines.append("")
    for name in ("BFS", "PR"):
        fractions = [
            f"{bandwidth[name][m] / device_max[m]:.0%}" for m in MACHINES
        ]
        lines.append(f"{name} fraction of device max: {' '.join(fractions)}")
    report("fig14_bandwidth", lines)

    for name in ALGORITHM_NAMES:
        # Aggregate bandwidth grows with the cluster...
        series = [bandwidth[name][m] for m in MACHINES]
        assert series[-1] > 8 * series[0], f"{name}: no linear growth"
        # ... and never exceeds the physical envelope.
        for m in MACHINES:
            assert bandwidth[name][m] <= device_max[m] * 1.001
    # The streaming-heavy algorithms run close to the envelope.
    assert bandwidth["PR"][1] > 0.75 * device_max[1]

"""Figure 16: runtime as a function of the request window phi*k, m = 32.

Paper: on the measured hardware phi = 2 (SSD latency equals the 40 GigE
round trip), so the theory (k = 5 for >= 99.3% utilization at any
cluster size) predicts a sweet spot at phi*k = 10 — exactly where the
measured curve bottoms out; smaller windows leave storage engines idle,
larger ones add queueing.

Reproduction: window sweep at m = 32; the reproduced shape is the steep
improvement up to the theoretical window and the flat/slightly rising
tail beyond it.
"""

import pytest

from harness import ALGORITHM_NAMES, BASE_SCALE, fmt_row, make_config, report, run_named

WINDOWS = [1, 2, 3, 5, 10, 16, 32]
SCALE = BASE_SCALE + 2
MACHINES_COUNT = 32


@pytest.mark.benchmark(group="fig16")
def test_fig16_batch_factor(benchmark):
    def experiment():
        results = {}
        for name in ALGORITHM_NAMES:
            series = {}
            for window in WINDOWS:
                config = make_config(
                    MACHINES_COUNT, SCALE, request_window_override=window
                )
                series[window] = run_named(name, SCALE, config).runtime
            results[name] = series
        return results

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("alg", [f"w={w}" for w in WINDOWS], width=8)]
    for name in ALGORITHM_NAMES:
        reference = runtimes[name][10]  # normalize to the paper's choice
        lines.append(
            fmt_row(name, [runtimes[name][w] / reference for w in WINDOWS])
        )
    report("fig16_batch_factor", lines)

    for name in ALGORITHM_NAMES:
        series = runtimes[name]
        # Tiny windows starve the storage engines.
        assert series[1] > 1.15 * series[10], (
            f"{name}: window 1 should be much slower than window 10"
        )
        # Beyond the sweet spot the curve is flat-ish (no cliff).  The
        # paper measured a mild *rise* past phi*k=10 from queueing and
        # incast; the lossless switch model instead stays flat or gains
        # a few percent, so the reproduced claim is "the theoretical
        # window captures nearly all of the benefit".
        assert series[32] < 1.4 * series[10]
        best = min(series.values())
        assert series[10] < 1.25 * best

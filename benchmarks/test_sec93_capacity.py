"""Section 9.3: capacity scaling — RMAT-36, one trillion edges, 16 TB.

Paper: on 32 machines with HDDs, Chaos finds a BFS order in "a little
over 9 hours" (~214 TB of I/O) and runs 5 PageRank iterations in ~19
hours (~395 TB), the store sustaining ~7 GB/s from 64 spindles.

Reproduction: phantom (model-mode) execution of the full engine at the
real scale — the identical scheduling/batching/stealing code paths move
16 TB of modelled data per edge pass.  Macro-chunks (1 GB) keep the
event count tractable; at HDD service times the per-chunk latency is
negligible either way.
"""

import pytest

from harness import report
from repro.algorithms import BFS, PageRank
from repro.core import ClusterConfig
from repro.net.topology import GIGE_40
from repro.perf import bfs_profile, fixed_profile, project_capacity
from repro.store.device import HDD_RAID0

MACRO_CHUNK = 1 << 30  # 1 GB


def _config():
    return ClusterConfig(
        machines=32,
        device=HDD_RAID0,
        network=GIGE_40,
        chunk_bytes=MACRO_CHUNK,
        partitions_per_machine=1,
    )


@pytest.mark.benchmark(group="sec93")
def test_sec93_capacity_scaling(benchmark):
    def experiment():
        bfs = project_capacity(
            BFS(), bfs_profile(13), scale=36, machines=32, config=_config()
        )
        pagerank = project_capacity(
            PageRank(iterations=5),
            fixed_profile(5),
            scale=36,
            machines=32,
            config=_config(),
        )
        return bfs, pagerank

    bfs, pagerank = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"input: RMAT-36, 1 trillion edges, "
        f"{16e12 / 1e12:.0f} TB on 32 machines (HDD)",
        "",
        f"BFS : {bfs.summary()}",
        "      paper: ~9 h, ~214 TB, ~7 GB/s aggregate",
        f"PR  : {pagerank.summary()}",
        "      paper: ~19 h, ~395 TB",
    ]
    report("sec93_capacity", lines)

    # Order-of-magnitude checks against the paper's numbers.
    assert 5 < bfs.runtime_hours < 25
    assert 8 < pagerank.runtime_hours < 40
    assert 100 < bfs.total_io_terabytes < 500
    assert 150 < pagerank.total_io_terabytes < 700
    # The robust ordering: PR moves far more data *per edge pass* than
    # BFS (every edge emits an update every iteration vs once per run).
    # (Total-runtime ordering additionally depends on how much non-edge
    # I/O the accounting includes — see EXPERIMENTS.md.)
    pr_per_pass = pagerank.total_io_terabytes / pagerank.iterations
    bfs_per_pass = bfs.total_io_terabytes / bfs.iterations
    assert pr_per_pass > 1.5 * bfs_per_pass
    # The store runs in the multi-GB/s aggregate regime.
    assert bfs.aggregate_bandwidth_gbps > 3.0

"""Figure 12: 40 GigE vs 1 GigE, BFS + PR, m = 1..32.

Paper: on 1 GigE the network throughput is ~1/4 of the disk bandwidth,
the network becomes the bottleneck, and Chaos stops scaling — runtimes
blow up with machine count instead of staying flat, "highlighting the
need for network links which are faster (or at least as fast) as the
storage bandwidth per machine".
"""

import math

import pytest

from harness import BASE_SCALE, MACHINES, fmt_row, make_config, report, run_named
from repro.net.topology import GIGE_1_BENCH, GIGE_40_BENCH

NETWORKS = [("40G", GIGE_40_BENCH), ("1G", GIGE_1_BENCH)]


@pytest.mark.benchmark(group="fig12")
def test_fig12_network_bottleneck(benchmark):
    def experiment():
        results = {}
        for name in ("BFS", "PR"):
            for net_name, network in NETWORKS:
                series = {}
                for machines in MACHINES:
                    scale = BASE_SCALE + int(math.log2(machines))
                    config = make_config(machines, scale, network=network)
                    series[machines] = run_named(name, scale, config).runtime
                results[(name, net_name)] = series
        return results

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("curve", [f"m={m}" for m in MACHINES], width=9)]
    for name in ("BFS", "PR"):
        base = runtimes[(name, "40G")][1]
        for net_name, _network in NETWORKS:
            lines.append(
                fmt_row(
                    f"{name} {net_name}",
                    [runtimes[(name, net_name)][m] / base for m in MACHINES],
                    width=9,
                )
            )
    report("fig12_network", lines)

    for name in ("BFS", "PR"):
        fast32 = runtimes[(name, "40G")][32] / runtimes[(name, "40G")][1]
        slow32 = runtimes[(name, "1G")][32] / runtimes[(name, "1G")][1]
        # The slow network destroys weak scaling (paper: ~4-9x curves).
        assert slow32 > 2.0 * fast32, (
            f"{name}: 1GigE curve {slow32:.2f} vs 40GigE {fast32:.2f}"
        )
        # Single-machine runs barely differ (all I/O is local).
        one_machine_ratio = (
            runtimes[(name, "1G")][1] / runtimes[(name, "40G")][1]
        )
        assert one_machine_ratio < 1.2

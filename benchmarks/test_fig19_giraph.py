"""Figure 19: Chaos vs out-of-core Giraph, PageRank, normalized to each
system's own single-machine runtime.

Paper: Giraph is an order of magnitude slower in absolute terms (JVM /
engineering overheads) and — the figure's point — its static random
vertex partitioning scales far worse than Chaos' dynamic load balancing
even after normalizing the constant factors away.
"""

import math

import pytest

import harness
from harness import BASE_SCALE, MACHINES, fmt_row, make_config, report
from repro.algorithms import PageRank
from repro.baselines import run_giraph
from repro.core.runtime import run_algorithm


@pytest.mark.benchmark(group="fig19")
def test_fig19_chaos_vs_giraph(benchmark):
    scale = BASE_SCALE + 3
    graph = harness.directed_graph(scale)

    def experiment():
        chaos = {}
        giraph = {}
        for machines in MACHINES:
            chaos[machines] = run_algorithm(
                PageRank(iterations=5), graph, make_config(machines, scale)
            ).runtime
            # Superstep coordination cost scaled with the benchmark's
            # graph size (the same dimensional-scaling rule as the
            # hardware latencies).
            giraph[machines] = run_giraph(
                PageRank(iterations=5),
                graph,
                machines=machines,
                superstep_overhead=0.05,
            ).runtime
        return chaos, giraph

    chaos, giraph = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("system", [f"m={m}" for m in MACHINES], width=9)]
    lines.append(
        fmt_row("Chaos", [chaos[m] / chaos[1] for m in MACHINES], width=9)
    )
    lines.append(
        fmt_row("Giraph", [giraph[m] / giraph[1] for m in MACHINES], width=9)
    )
    lines.append("")
    lines.append(
        f"absolute slowdown Giraph/Chaos at m=1: {giraph[1] / chaos[1]:.1f}x "
        "(paper: order of magnitude)"
    )
    report("fig19_giraph", lines)

    # Giraph is dramatically slower in absolute terms ...
    assert giraph[1] > 4 * chaos[1]
    # ... and scales worse even normalized to itself.
    chaos_speedup = chaos[1] / chaos[32]
    giraph_speedup = giraph[1] / giraph[32]
    assert chaos_speedup > 1.5 * giraph_speedup, (
        f"Chaos speedup {chaos_speedup:.1f}x vs Giraph {giraph_speedup:.1f}x"
    )

"""Figure 13: checkpointing overhead, BFS + PR at m = 32 on HDD.

Paper: two-phase vertex-set checkpoints at every barrier add under 6%
runtime even for executions writing hundreds of terabytes (RMAT-35).

Reproduction: the overhead bound loosens slightly at benchmark scale
because vertex state is a larger fraction of total data than at
RMAT-35; the reproduced shape is "small single-digit-percent overhead".
"""

import pytest

from harness import BASE_SCALE, fmt_row, make_config, report, run_named
from repro.store.device import HDD_BENCH

SCALE = BASE_SCALE + 5
MACHINES_COUNT = 32


@pytest.mark.benchmark(group="fig13")
def test_fig13_checkpoint_overhead(benchmark):
    def experiment():
        results = {}
        for name in ("BFS", "PR"):
            plain = run_named(
                name,
                SCALE,
                make_config(MACHINES_COUNT, SCALE, device=HDD_BENCH),
            )
            checkpointed = run_named(
                name,
                SCALE,
                make_config(
                    MACHINES_COUNT, SCALE, device=HDD_BENCH, checkpointing=True
                ),
            )
            results[name] = (plain.runtime, checkpointed.runtime)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("alg", ["plain", "chkpt", "overhead"], width=10)]
    for name, (plain, checkpointed) in results.items():
        overhead = checkpointed / plain - 1.0
        lines.append(fmt_row(name, [plain, checkpointed, overhead], width=10))
    lines.append("")
    lines.append("paper: overhead under 6% (RMAT-35, HDD, m=32)")
    report("fig13_checkpoint", lines)

    for name, (plain, checkpointed) in results.items():
        overhead = checkpointed / plain - 1.0
        # Checkpoint writes overlap with the stragglers' streaming (they
        # land in otherwise-idle pre-barrier time), so the measured
        # overhead is near zero and can dip slightly negative from
        # event-ordering noise; the reproduced claim is "small".
        assert overhead > -0.03
        assert overhead < 0.20, f"{name}: checkpoint overhead {overhead:.1%}"

"""Table 1: single-machine runtime, X-Stream vs Chaos, all ten algorithms.

Paper: Chaos on one machine is similar to but somewhat slower than
X-Stream (same streaming-partition design, but client-server I/O instead
of direct I/O): ratios range from ~0.96x (MIS) to ~2.5x (SpMV), most
algorithms between 1.1x and 1.7x.

Reproduction: both engines run the same scaled RMAT graph (standing in
for RMAT-27) on the same device model; the ratio column is the
reproduced quantity.
"""

import pytest

import harness
from harness import ALGORITHM_NAMES, BASE_SCALE, fmt_row, make_config, report
from repro.algorithms import run_mcst, run_scc
from repro.baselines import XStreamConfig, run_xstream

#: Paper's Table 1 (seconds on the real testbed), for reference columns.
PAPER_TABLE1 = {
    "BFS": (497, 594),
    "WCC": (729, 995),
    "MCST": (1239, 2129),
    "MIS": (983, 944),
    "SSSP": (2688, 3243),
    "PR": (884, 1358),
    "SCC": (1689, 1962),
    "Cond": (123, 273),
    "SpMV": (206, 508),
    "BP": (601, 610),
}

SCALE = BASE_SCALE + 2  # single-machine graph, streaming-dominated


def _xstream_run(name: str):
    config = XStreamConfig.from_cluster(make_config(1, SCALE))
    graph = harness.graph_for(name, SCALE)
    if name == "MCST":
        return _driver_xstream(run_mcst, graph, config)
    if name == "SCC":
        return _driver_xstream(run_scc, graph, config)
    algorithm = harness._make_algorithm(name, SCALE)
    return run_xstream(algorithm, graph, config)


class _XStreamResultShim:
    def __init__(self, runtime):
        self.runtime = runtime


def _driver_xstream(driver, graph, config):
    """MCST/SCC under X-Stream: same driver, X-Stream runner per job.

    The Chaos drivers re-run their sub-jobs on a Chaos cluster; for the
    X-Stream column we run them on a single-machine Chaos cluster, whose
    single-machine behaviour the paper equates with X-Stream modulo the
    I/O path, and rescale by the measured single-job X-Stream/Chaos
    ratio of this algorithm family's dominant job (streaming passes).
    """
    chaos_result = driver(graph, make_config(1, SCALE))
    # Calibrate with a PR-like streaming pass ratio on this graph size.
    from repro.algorithms import PageRank
    from repro.core.runtime import run_algorithm

    probe_graph = harness.directed_graph(SCALE)
    chaos_probe = run_algorithm(
        PageRank(iterations=3), probe_graph, make_config(1, SCALE)
    ).runtime
    xstream_probe = run_xstream(
        PageRank(iterations=3),
        probe_graph,
        XStreamConfig.from_cluster(make_config(1, SCALE)),
    ).runtime
    return _XStreamResultShim(chaos_result.runtime * xstream_probe / chaos_probe)


@pytest.mark.benchmark(group="table1")
def test_table1_single_machine(benchmark):
    def experiment():
        rows = {}
        for name in ALGORITHM_NAMES:
            xstream = _xstream_run(name)
            chaos = harness.run_named(name, SCALE, make_config(1, SCALE))
            rows[name] = (xstream.runtime, chaos.runtime)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        fmt_row("alg", ["xstream", "chaos", "ratio", "paper"], width=10)
    ]
    for name, (xstream_t, chaos_t) in rows.items():
        paper_ratio = PAPER_TABLE1[name][1] / PAPER_TABLE1[name][0]
        lines.append(
            fmt_row(
                name,
                [xstream_t, chaos_t, chaos_t / xstream_t, paper_ratio],
                width=10,
            )
        )
    report("table1_single_machine", lines)

    # Shape assertions: Chaos never (much) faster than X-Stream, and
    # the overhead stays inside the paper's observed band.
    for name, (xstream_t, chaos_t) in rows.items():
        ratio = chaos_t / xstream_t
        assert 0.8 < ratio < 4.0, f"{name}: ratio {ratio:.2f} out of band"

"""Figure 10: effect of the CPU core count (p = 8, 12, 16), BFS + PR.

Paper: Chaos performs adequately with half the cores; cores only matter
below the count needed to sustain the network/storage pipeline.

Reproduction: weak scaling with the per-machine core count swept; the
reproduced shape is the near-overlap of the p = 16 and p = 12 curves
with mild degradation at p = 8.
"""

import math

import pytest

from harness import BASE_SCALE, MACHINES, fmt_row, make_config, report, run_named

CORE_COUNTS = [16, 12, 8]


@pytest.mark.benchmark(group="fig10")
def test_fig10_core_count(benchmark):
    def experiment():
        results = {}
        for name in ("BFS", "PR"):
            for cores in CORE_COUNTS:
                series = {}
                for machines in MACHINES:
                    scale = BASE_SCALE + int(math.log2(machines))
                    config = make_config(machines, scale, cores=cores)
                    series[machines] = run_named(name, scale, config).runtime
                results[(name, cores)] = series
        return results

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("curve", [f"m={m}" for m in MACHINES], width=9)]
    for name in ("BFS", "PR"):
        base = runtimes[(name, 16)][1]  # normalize to 1 machine, 16 cores
        for cores in CORE_COUNTS:
            lines.append(
                fmt_row(
                    f"{name} p={cores}",
                    [runtimes[(name, cores)][m] / base for m in MACHINES],
                    width=9,
                )
            )
    report("fig10_cores", lines)

    for name in ("BFS", "PR"):
        full = runtimes[(name, 16)][32]
        half = runtimes[(name, 8)][32]
        # Fewer cores never helps (beyond event-ordering noise);
        # adequate performance with half the cores (the paper's
        # observation).
        assert half >= full * 0.97
        assert half < 2.0 * full, f"{name}: p=8 degraded {half / full:.2f}x"

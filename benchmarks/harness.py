"""Shared harness for the per-figure/table reproduction benchmarks.

Scaling strategy
----------------
The paper's experiments stream up to hundreds of terabytes; functional
Python runs obviously cannot.  Every benchmark here is a *dimensionally
scaled* version of the paper's experiment:

* graphs are RMAT, scaled down (the benchmark prints which scale stands
  in for which paper scale);
* the hardware model keeps the paper's bandwidths (SSD 400 MB/s, HDD
  200 MB/s, 40/1 GigE) and scales all latencies by the same factor as
  the data, so the runs sit in the same streaming-dominated regime as
  the paper's (see ``repro.store.device``);
* chunk sizes scale with the data so that a scatter phase streams a
  comparable number of chunks per partition.

What must reproduce is the *shape*: who wins, by what factor, where the
knees are.  Absolute times are simulated seconds, not testbed seconds.

Runs are memoized: several figures share the same underlying sweeps
(e.g. Figure 7 weak scaling feeds Figures 14 and 17).
"""

from __future__ import annotations

import functools
import math
import os
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms import (
    BFS,
    MIS,
    SSSP,
    WCC,
    BeliefPropagation,
    Conductance,
    PageRank,
    SpMV,
    run_mcst,
    run_scc,
)
from repro.core import ClusterConfig
from repro.core.runtime import run_algorithm
from repro.graph import data_commons_like, rmat_graph, to_undirected
from repro.graph.stats import out_degrees
from repro.net.topology import GIGE_1_BENCH, GIGE_40_BENCH
from repro.store.device import HDD_BENCH, SSD_BENCH

#: Machine counts used throughout the evaluation (Section 9).
MACHINES = [1, 2, 4, 8, 16, 32]

#: All ten algorithms in Table 1 order.
ALGORITHM_NAMES = [
    "BFS",
    "WCC",
    "MCST",
    "MIS",
    "SSSP",
    "SCC",
    "PR",
    "Cond",
    "SpMV",
    "BP",
]

#: Base RMAT scale standing in for the paper's RMAT-27.
BASE_SCALE = 11

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS: List[str] = []


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def report(name: str, lines) -> str:
    """Record a reproduction table: printed, kept for the terminal
    summary, and written under benchmarks/results/."""
    text = "\n".join([f"== {name} =="] + list(lines))
    _REPORTS.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return text


def collected_reports() -> List[str]:
    return list(_REPORTS)


def write_bench_snapshot(
    label: str,
    names: Optional[List[str]] = None,
    out: Optional[str] = None,
) -> str:
    """Run the tracked ``repro bench`` scenarios into a snapshot file.

    Benchmark drivers call this after their figure sweeps so a full
    benchmark session also refreshes the machine-readable perf
    trajectory (``BENCH_<label>.json`` at the repo root by default,
    matching what ``repro bench --label <label>`` writes).
    """
    from repro.obs import bench

    snapshot = bench.run_scenarios(names, label=label, progress=print)
    path = out or bench.snapshot_path(
        label, root=os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    bench.write_snapshot(snapshot, path)
    print(f"bench snapshot: {len(snapshot['scenarios'])} scenario(s) -> {path}")
    return path


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def directed_graph(scale: int, weighted: bool = False):
    return rmat_graph(scale, seed=100 + scale, weighted=weighted)


@functools.lru_cache(maxsize=None)
def undirected_graph(scale: int):
    return to_undirected(directed_graph(scale, weighted=True))


@functools.lru_cache(maxsize=None)
def web_graph(num_pages: int = 1 << 15):
    """Stand-in for the Data Commons hyperlink graph (Figure 9)."""
    return data_commons_like(num_pages, avg_degree=16.0, seed=7)


@functools.lru_cache(maxsize=None)
def traversal_root(scale: int) -> int:
    """Highest-degree vertex: guarantees a large traversal."""
    graph = undirected_graph(scale)
    return int(np.argmax(out_degrees(graph)))


# ---------------------------------------------------------------------------
# Configurations
# ---------------------------------------------------------------------------


#: Constant chunk size across every benchmark, like the paper's 4 MB:
#: the benchmark graphs are ~10^4x smaller, so 4 KB chunks keep the
#: chunks-per-machine-pass count in the paper's regime.
CHUNK_BYTES = 4 * 1024


def make_config(machines: int, scale: int, **overrides) -> ClusterConfig:
    defaults = dict(
        machines=machines,
        chunk_bytes=CHUNK_BYTES,
        partitions_per_machine=1,
        device=SSD_BENCH,
        network=GIGE_40_BENCH,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# ---------------------------------------------------------------------------
# Algorithm dispatch
# ---------------------------------------------------------------------------


def _make_algorithm(name: str, scale: int):
    if name == "BFS":
        return BFS(root=traversal_root(scale))
    if name == "WCC":
        return WCC()
    if name == "MIS":
        return MIS()
    if name == "SSSP":
        return SSSP(root=traversal_root(scale))
    if name == "PR":
        return PageRank(iterations=5)
    if name == "Cond":
        return Conductance()
    if name == "SpMV":
        return SpMV()
    if name == "BP":
        return BeliefPropagation(iterations=5)
    raise ValueError(f"unknown algorithm {name!r}")


def graph_for(name: str, scale: int):
    if name in ("BFS", "WCC", "MCST", "MIS", "SSSP"):
        return undirected_graph(scale)
    if name in ("SpMV", "BP"):
        return directed_graph(scale, weighted=True)
    return directed_graph(scale, weighted=False)


def run_named(name: str, scale: int, config: ClusterConfig):
    """Run one of the ten Table 1 algorithms; returns a result object
    with .runtime / .storage_bytes / .breakdowns / ... fields."""
    graph = graph_for(name, scale)
    if name == "MCST":
        return run_mcst(graph, config)
    if name == "SCC":
        return run_scc(graph, config)
    return run_algorithm(_make_algorithm(name, scale), graph, config)


# ---------------------------------------------------------------------------
# Memoized sweeps shared between figures
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def weak_scaling_run(name: str, machines: int):
    """Weak scaling: RMAT-(BASE+log2 m) on m machines (Figure 7 setup,
    standing in for RMAT-27 -> RMAT-32)."""
    scale = BASE_SCALE + int(math.log2(machines))
    return run_named(name, scale, make_config(machines, scale))


@functools.lru_cache(maxsize=None)
def strong_scaling_run(name: str, machines: int):
    """Strong scaling: fixed RMAT-(BASE+3) on 1..32 machines (Figure 8)."""
    scale = BASE_SCALE + 3
    return run_named(name, scale, make_config(machines, scale))


def normalized(series: Dict[int, float]) -> Dict[int, float]:
    """Normalize a {machines: runtime} series to its 1-machine value."""
    base = series[min(series)]
    return {m: value / base for m, value in series.items()}


def fmt_row(label: str, values, width: int = 8) -> str:
    cells = "".join(
        f"{v:>{width}.3f}" if isinstance(v, float) else f"{v:>{width}}"
        for v in values
    )
    return f"{label:<8s}{cells}"

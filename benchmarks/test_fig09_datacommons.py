"""Figure 9: strong scaling on the Data Commons web graph, HDD, BFS + PR.

Paper: the 1 TB hyperlink graph does not fit an SSD, so HDDs are used;
32 machines give ~20x (BFS) and ~18.5x (PR) speedups — better than the
RMAT-27 strong scaling because the graph is much larger relative to the
cluster.

Reproduction: synthetic web-like graph with the Data Commons degree
profile, HDD device model.  The larger-graph-scales-better relation
against Figure 8 is the reproduced shape.
"""

import pytest

import harness
from harness import MACHINES, fmt_row, make_config, report, web_graph
from repro.algorithms import BFS, PageRank
from repro.core.runtime import run_algorithm
from repro.graph import to_undirected
from repro.graph.stats import out_degrees
from repro.store.device import HDD_BENCH

import numpy as np


@pytest.mark.benchmark(group="fig09")
def test_fig09_datacommons_strong_scaling(benchmark):
    graph = web_graph()
    undirected = to_undirected(graph)
    root = int(np.argmax(out_degrees(undirected)))

    def experiment():
        results = {"BFS": {}, "PR": {}}
        for machines in MACHINES:
            config = make_config(machines, scale=0, device=HDD_BENCH)
            results["BFS"][machines] = run_algorithm(
                BFS(root=root), undirected, config
            ).runtime
            results["PR"][machines] = run_algorithm(
                PageRank(iterations=5), graph, config
            ).runtime
        return results

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("alg", [f"m={m}" for m in MACHINES])]
    for name in ("BFS", "PR"):
        base = runtimes[name][1]
        lines.append(fmt_row(name, [runtimes[name][m] / base for m in MACHINES]))
    bfs_speedup = runtimes["BFS"][1] / runtimes["BFS"][32]
    pr_speedup = runtimes["PR"][1] / runtimes["PR"][32]
    lines.append("")
    lines.append(
        f"speedup at m=32: BFS {bfs_speedup:.1f}x (paper 20x), "
        f"PR {pr_speedup:.1f}x (paper 18.5x)"
    )
    report("fig09_datacommons", lines)

    assert bfs_speedup > 4.0
    assert pr_speedup > 4.0

"""Figure 5: theoretical storage-engine utilization rho(m, k).

Pure math (Eq. 4-5): rho(m,k) = 1 - (1 - k/m)^m, decreasing in m,
asymptotic to 1 - e^-k.  k = 5 keeps utilization above 99.3% at any
cluster size — the paper's justification for its default batch factor.
"""

import pytest

from harness import fmt_row, report
from repro.core.batching import utilization, utilization_limit

MACHINES = [5, 10, 15, 20, 25, 30]
BATCH_FACTORS = [1, 2, 3, 5]


@pytest.mark.benchmark(group="fig05")
def test_fig05_utilization(benchmark):
    def experiment():
        return {
            k: {m: utilization(m, k) for m in MACHINES} for k in BATCH_FACTORS
        }

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("k\\m", MACHINES)]
    for k in BATCH_FACTORS:
        lines.append(fmt_row(f"k={k}", [table[k][m] for m in MACHINES]))
    lines.append(
        fmt_row("limit", [utilization_limit(k) for k in BATCH_FACTORS])
    )
    report("fig05_utilization", lines)

    for k in BATCH_FACTORS:
        series = [table[k][m] for m in MACHINES]
        # Decreasing in m, bounded below by the limit.
        assert series == sorted(series, reverse=True)
        assert all(v >= utilization_limit(k) for v in series)
    # Headline numbers from the paper's discussion.
    assert utilization_limit(5) > 0.993
    assert utilization(32, 5) > 0.995

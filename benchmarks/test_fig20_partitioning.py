"""Figure 20: dynamic rebalancing cost vs PowerGraph grid partitioning.

Paper: for every algorithm, the worst per-machine time Chaos spends on
dynamic load balancing is at most ~a fifth (mostly under a tenth) of
the time PowerGraph's in-memory grid partitioner would need to
partition the same graph — upfront partitioning is not worth it.
"""

import pytest

from harness import (
    ALGORITHM_NAMES,
    BASE_SCALE,
    fmt_row,
    report,
    strong_scaling_run,
)
from repro.baselines import grid_partition, partitioning_time
from repro.baselines.powergraph import rebalance_time
import harness

MACHINES_COUNT = 32


@pytest.mark.benchmark(group="fig20")
def test_fig20_rebalance_vs_partitioning(benchmark):
    scale = BASE_SCALE + 3
    graph = harness.directed_graph(scale)

    def experiment():
        ratios = {}
        upfront = partitioning_time(graph.num_edges, MACHINES_COUNT)
        for name in ALGORITHM_NAMES:
            result = strong_scaling_run(name, MACHINES_COUNT)
            ratios[name] = rebalance_time(result) / upfront
        return ratios, upfront

    ratios, upfront = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Also exercise the real grid partitioner for its quality metrics.
    grid = grid_partition(graph, MACHINES_COUNT)

    lines = [fmt_row("alg", ["rebal/part"], width=12)]
    for name in ALGORITHM_NAMES:
        lines.append(fmt_row(name, [ratios[name]], width=12))
    lines.append("")
    lines.append(f"grid partitioning modelled time: {upfront:.3f}s")
    lines.append(
        f"grid replication factor: {grid.replication_factor:.2f}, "
        f"edge balance: {grid.edge_balance:.2f}"
    )
    lines.append("paper: every ratio at or below ~0.2")
    report("fig20_partitioning", lines)

    for name, ratio in ratios.items():
        assert ratio < 0.5, f"{name}: rebalance/partition ratio {ratio:.2f}"
    assert max(ratios.values()) < 0.5
    assert 1.0 <= grid.replication_factor <= 12.0

"""Ablation: Pregel-style update aggregation (Section 11.1).

The paper states: *"Pregel optimizes network traffic by aggregating
updates to the same vertex.  While this optimization is also possible in
Chaos, we find that the cost of merging the updates to the same vertex
outweighs the benefits from reduced network traffic."*

This ablation implements the combiner (``aggregate_updates=True``) and
measures both sides of the trade-off:

* the *benefit* — written-update volume drops in proportion to the
  duplicate rate inside flush buffers, which grows with both the
  buffer-size/partition-size ratio and the graph's hub skew;
* the *cost* — combiner CPU on every flush.

Outcome in this model: on the storage-bound simulated cluster with
idle cores, combining runs off the critical path, so the I/O savings
win whenever the duplicate rate is substantial — a **known deviation**
from the paper's conclusion, whose measured system evidently paid the
merge on its critical path.  See EXPERIMENTS.md ("Known deltas") for
the analysis.  The reproduced invariants: results are identical with
and without combining, volume reduction tracks the buffer/partition
ratio, and the win shrinks as buffers shrink.
"""

import pytest

from harness import fmt_row, make_config, report, run_named

MACHINES_COUNT = 8


@pytest.mark.benchmark(group="ablation")
def test_ablation_update_aggregation(benchmark):
    cases = {
        # Small buffers against larger partitions: low duplicate rate.
        "sparse": dict(scale=14, chunk_bytes=512),
        # Buffers comparable to partitions: high duplicate rate.
        "dense": dict(scale=13, chunk_bytes=16 * 1024),
    }

    def experiment():
        rows = {}
        for case, params in cases.items():
            for aggregate in (False, True):
                config = make_config(
                    MACHINES_COUNT,
                    params["scale"],
                    chunk_bytes=params["chunk_bytes"],
                    aggregate_updates=aggregate,
                )
                rows[(case, aggregate)] = run_named(
                    "PR", params["scale"], config
                )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("case", ["runtime", "reduction", "speedup"], width=11)]
    outcomes = {}
    for case in cases:
        plain = rows[(case, False)]
        aggregated = rows[(case, True)]
        reduction = 1.0 - (
            aggregated.updates_written_bytes / plain.updates_written_bytes
        )
        speedup = plain.runtime / aggregated.runtime
        outcomes[case] = (reduction, speedup)
        lines.append(fmt_row(case, [plain.runtime, 0.0, 1.0], width=11))
        lines.append(
            fmt_row(
                f"{case}+agg",
                [aggregated.runtime, reduction, speedup],
                width=11,
            )
        )
    lines.append("")
    lines.append(
        "paper: merging cost outweighed the benefit in their system; "
        "here combining is off the critical path, so the I/O saving "
        "wins in proportion to the duplicate rate (see EXPERIMENTS.md)."
    )
    report("ablation_aggregation", lines)

    sparse_reduction, sparse_speedup = outcomes["sparse"]
    dense_reduction, dense_speedup = outcomes["dense"]
    # Volume reduction tracks the buffer/partition ratio ...
    assert dense_reduction > sparse_reduction
    assert dense_reduction > 0.30
    # ... and so does the runtime effect.
    assert dense_speedup >= sparse_speedup - 0.02
    # Combining never corrupts results (covered functionally in tests/)
    # and never blows up runtime in either regime.
    for _case, (_reduction, speedup) in outcomes.items():
        assert speedup > 0.85

"""Figure 17: runtime breakdown at m = 32 (weak scaling top end).

Paper: graph processing is 74-87% of runtime (83% average, split into
own-partition and stolen-partition work), idle time below 4%, and
copy/merge overhead 0-22% (14% average) — dynamic load balancing works
but is not free.

Reproduction: per-engine time attribution from the same weak-scaling
runs; the reproduced shape is "graph processing dominates, idle small,
copy/merge visible".  (Benchmark-scale phases are shorter, so barrier
tails are somewhat larger than the paper's 4%.)
"""

import pytest

from harness import ALGORITHM_NAMES, fmt_row, report, weak_scaling_run
from repro.core.metrics import BREAKDOWN_CATEGORIES


@pytest.mark.benchmark(group="fig17")
def test_fig17_runtime_breakdown(benchmark):
    def experiment():
        return {
            name: weak_scaling_run(name, 32).total_breakdown().fractions()
            for name in ALGORITHM_NAMES
        }

    fractions = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("alg", list(BREAKDOWN_CATEGORIES), width=11)]
    for name in ALGORITHM_NAMES:
        lines.append(
            fmt_row(
                name,
                [fractions[name][c] for c in BREAKDOWN_CATEGORIES],
                width=11,
            )
        )
    lines.append("")
    lines.append(
        "paper: gp 74-87% (avg 83), idle <4%, copy+merge 0-22% (avg 14)"
    )
    report("fig17_breakdown", lines)

    for name in ALGORITHM_NAMES:
        f = fractions[name]
        graph_processing = f["gp_master"] + f["gp_stolen"]
        overhead = f["copy"] + f["merge"] + f["merge_wait"]
        assert graph_processing > 0.45, f"{name}: gp only {graph_processing:.0%}"
        assert overhead < 0.45, f"{name}: overhead {overhead:.0%}"
        assert f["barrier"] < 0.40, f"{name}: barrier idle {f['barrier']:.0%}"

"""Benchmark-suite plumbing: dump reproduction tables after the run.

pytest captures stdout of passing tests, so the per-figure tables are
also echoed in the terminal summary (and written under
``benchmarks/results/``) where they survive capture.
"""

from __future__ import annotations

import harness


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = harness.collected_reports()
    if not reports:
        return
    terminalreporter.section("paper reproduction tables")
    for text in reports:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)

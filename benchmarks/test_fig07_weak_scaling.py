"""Figure 7: weak scaling, all ten algorithms, m = 1..32.

Paper: doubling both the graph (RMAT-27 -> RMAT-32) and the machines
keeps normalized runtime low — on average 1.61x at 32 machines, best
~0.97x (Cond), worst ~2.29x (MCST).

Reproduction: RMAT-(11+log2 m) on m machines with dimensionally scaled
hardware.  The reproduced quantities are the normalized-runtime curves.
"""

import statistics

import pytest

from harness import (
    ALGORITHM_NAMES,
    MACHINES,
    fmt_row,
    normalized,
    report,
    weak_scaling_run,
)


@pytest.mark.benchmark(group="fig07")
def test_fig07_weak_scaling(benchmark):
    def experiment():
        return {
            name: {m: weak_scaling_run(name, m).runtime for m in MACHINES}
            for name in ALGORITHM_NAMES
        }

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("alg", [f"m={m}" for m in MACHINES])]
    factors_at_32 = []
    for name in ALGORITHM_NAMES:
        series = normalized(runtimes[name])
        lines.append(fmt_row(name, [series[m] for m in MACHINES]))
        factors_at_32.append(series[32])
    mean_factor = statistics.mean(factors_at_32)
    lines.append("")
    lines.append(
        f"mean scaling factor at m=32: {mean_factor:.2f} (paper: 1.61)"
    )
    lines.append(
        f"best: {min(factors_at_32):.2f} (paper: 0.97)   "
        f"worst: {max(factors_at_32):.2f} (paper: 2.29)"
    )
    report("fig07_weak_scaling", lines)

    # Shape: weak scaling stays within a small constant factor.
    assert mean_factor < 2.5, f"mean weak-scaling factor {mean_factor:.2f}"
    assert max(factors_at_32) < 4.0

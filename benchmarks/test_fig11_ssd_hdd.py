"""Figure 11: SSD vs HDD, BFS + PR, m = 1..32.

Paper: HDD bandwidth is half the SSD's; Chaos scales identically on
both, and runtime is inversely proportional to device bandwidth (HDD
curves sit ~2x above the SSD curves when normalized to the SSD
1-machine runtime).
"""

import math

import pytest

from harness import BASE_SCALE, MACHINES, fmt_row, make_config, report, run_named
from repro.store.device import HDD_BENCH, SSD_BENCH

DEVICES = [("SSD", SSD_BENCH), ("HDD", HDD_BENCH)]


@pytest.mark.benchmark(group="fig11")
def test_fig11_ssd_vs_hdd(benchmark):
    def experiment():
        results = {}
        for name in ("BFS", "PR"):
            for device_name, device in DEVICES:
                series = {}
                for machines in MACHINES:
                    scale = BASE_SCALE + int(math.log2(machines))
                    config = make_config(machines, scale, device=device)
                    series[machines] = run_named(name, scale, config).runtime
                results[(name, device_name)] = series
        return results

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("curve", [f"m={m}" for m in MACHINES], width=9)]
    for name in ("BFS", "PR"):
        base = runtimes[(name, "SSD")][1]
        for device_name, _device in DEVICES:
            lines.append(
                fmt_row(
                    f"{name} {device_name}",
                    [runtimes[(name, device_name)][m] / base for m in MACHINES],
                    width=9,
                )
            )
    report("fig11_ssd_hdd", lines)

    for name in ("BFS", "PR"):
        # Runtime inversely proportional to bandwidth: HDD ~2x SSD.
        for machines in MACHINES:
            ratio = (
                runtimes[(name, "HDD")][machines]
                / runtimes[(name, "SSD")][machines]
            )
            assert 1.5 < ratio < 2.6, f"{name} m={machines}: {ratio:.2f}"
        # Scaling shape is bandwidth-independent: normalized curves match.
        ssd_curve = [
            runtimes[(name, "SSD")][m] / runtimes[(name, "SSD")][1]
            for m in MACHINES
        ]
        hdd_curve = [
            runtimes[(name, "HDD")][m] / runtimes[(name, "HDD")][1]
            for m in MACHINES
        ]
        for ssd_point, hdd_point in zip(ssd_curve, hdd_curve):
            assert abs(ssd_point - hdd_point) < 0.75

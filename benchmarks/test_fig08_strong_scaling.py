"""Figure 8: strong scaling, all ten algorithms, fixed graph, m = 1..32.

Paper: on RMAT-27, 32 machines give ~13x average speedup (best 23x for
Cond, worst 8x for MCST) — inferior to weak scaling because the fixed
graph is small relative to the cluster.
"""

import statistics

import pytest

from harness import (
    ALGORITHM_NAMES,
    MACHINES,
    fmt_row,
    report,
    strong_scaling_run,
)


@pytest.mark.benchmark(group="fig08")
def test_fig08_strong_scaling(benchmark):
    def experiment():
        return {
            name: {m: strong_scaling_run(name, m).runtime for m in MACHINES}
            for name in ALGORITHM_NAMES
        }

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("alg", [f"m={m}" for m in MACHINES])]
    speedups_at_32 = []
    for name in ALGORITHM_NAMES:
        base = runtimes[name][1]
        normalized_series = [runtimes[name][m] / base for m in MACHINES]
        lines.append(fmt_row(name, normalized_series))
        speedups_at_32.append(base / runtimes[name][32])
    mean_speedup = statistics.mean(speedups_at_32)
    lines.append("")
    lines.append(
        f"mean speedup at m=32: {mean_speedup:.1f}x (paper: ~13x)   "
        f"best {max(speedups_at_32):.1f}x (paper 23x)   "
        f"worst {min(speedups_at_32):.1f}x (paper 8x)"
    )
    report("fig08_strong_scaling", lines)

    # Shape: meaningful but sublinear speedup on a fixed small graph.
    assert mean_speedup > 3.0
    assert mean_speedup < 32.0
    for name in ALGORITHM_NAMES:
        # Monotone improvement from 1 to 32 machines.
        assert runtimes[name][32] < runtimes[name][1]

"""Figure 15: Chaos vs a centralized chunk directory, BFS + PR.

Paper: replacing randomized chunk selection with a central meta-data
server that every read/write must consult makes runtime grow much
faster with machine count — the directory "increasingly becomes a
bottleneck" (weak scaling, RMAT-27 -> 32).
"""

import math

import pytest

from harness import BASE_SCALE, MACHINES, fmt_row, make_config, report, run_named


@pytest.mark.benchmark(group="fig15")
def test_fig15_centralized_directory(benchmark):
    def experiment():
        results = {}
        for name in ("BFS", "PR"):
            for placement in ("random", "centralized"):
                series = {}
                for machines in MACHINES:
                    scale = BASE_SCALE + int(math.log2(machines))
                    # Directory rate scaled with the benchmark's small
                    # chunks (paper-equivalent ~150 us/lookup against
                    # 4 MB chunks becomes ~0.67 us against 4 kB chunks).
                    config = make_config(
                        machines,
                        scale,
                        placement=placement,
                        directory_lookups_per_second=1.5e6,
                    )
                    series[machines] = run_named(name, scale, config).runtime
                results[(name, placement)] = series
        return results

    runtimes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [fmt_row("curve", [f"m={m}" for m in MACHINES], width=12)]
    for name in ("BFS", "PR"):
        base = runtimes[(name, "random")][1]
        lines.append(
            fmt_row(
                f"{name}",
                [runtimes[(name, "random")][m] / base for m in MACHINES],
                width=12,
            )
        )
        lines.append(
            fmt_row(
                f"{name} Centr",
                [runtimes[(name, "centralized")][m] / base for m in MACHINES],
                width=12,
            )
        )
    report("fig15_centralized", lines)

    for name in ("BFS", "PR"):
        random32 = (
            runtimes[(name, "random")][32] / runtimes[(name, "random")][1]
        )
        central32 = (
            runtimes[(name, "centralized")][32]
            / runtimes[(name, "centralized")][1]
        )
        # The centralized design's curve grows distinctly faster.
        assert central32 > 1.3 * random32, (
            f"{name}: centralized {central32:.2f} vs random {random32:.2f}"
        )

"""Additional coverage: model-mode feature combinations, determinism of
placement policies, driver checkpointing, and generator properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PageRank, run_mcst, run_scc
from repro.core import ClusterConfig
from repro.core.runtime import ChaosCluster, GraphSpec
from repro.graph import data_commons_like, rmat_graph, to_undirected
from repro.graph.rmat import rmat_edge_count
from repro.perf.profiles import fixed_profile
from repro.store.placement import RandomPlacement

from tests.conftest import fast_config


class TestModelModeFeatureMatrix:
    def _spec(self):
        return GraphSpec.rmat(14)

    def test_model_with_stealing_disabled_slower_on_skew(self):
        # Chunks must be plentiful relative to stores: the master's D
        # estimate is (local remaining) x machines, which needs several
        # chunks per store to be meaningful (as at paper scale).  A
        # larger cluster makes the straggler effect unambiguous (a lone
        # master cannot match the aggregate drain rate).
        base = ClusterConfig(
            machines=16, chunk_bytes=1 << 12, partitions_per_machine=1
        )
        spec = GraphSpec.rmat(15)
        with_stealing = ChaosCluster(base).run_model(
            PageRank(iterations=3), spec, fixed_profile(3)
        )
        without = ChaosCluster(base.with_(steal_alpha=0.0)).run_model(
            PageRank(iterations=3), spec, fixed_profile(3)
        )
        # The RMAT partition skew makes no-stealing strictly worse.
        assert without.runtime > with_stealing.runtime
        assert with_stealing.steals_accepted > 0

    def test_model_with_checkpointing_adds_io(self):
        base = ClusterConfig(
            machines=4, chunk_bytes=1 << 13, partitions_per_machine=1
        )
        plain = ChaosCluster(base).run_model(
            PageRank(iterations=2), self._spec(), fixed_profile(2)
        )
        checkpointed = ChaosCluster(base.with_(checkpointing=True)).run_model(
            PageRank(iterations=2), self._spec(), fixed_profile(2)
        )
        assert checkpointed.storage_bytes > plain.storage_bytes
        assert checkpointed.checkpoints > 0

    def test_model_centralized_placement_slower(self):
        base = ClusterConfig(
            machines=8, chunk_bytes=1 << 13, partitions_per_machine=1
        )
        random_placement = ChaosCluster(base).run_model(
            PageRank(iterations=2), self._spec(), fixed_profile(2)
        )
        central = ChaosCluster(
            base.with_(
                placement="centralized", directory_lookups_per_second=50_000
            )
        ).run_model(PageRank(iterations=2), self._spec(), fixed_profile(2))
        assert central.runtime > random_placement.runtime


class TestPlacementDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomPlacement(8, seed=42)
        b = RandomPlacement(8, seed=42)
        assert [a.choose_write() for _ in range(50)] == [
            b.choose_write() for _ in range(50)
        ]

    def test_different_seed_different_sequence(self):
        a = RandomPlacement(8, seed=1)
        b = RandomPlacement(8, seed=2)
        assert [a.choose_write() for _ in range(50)] != [
            b.choose_write() for _ in range(50)
        ]


class TestDriversWithFeatures:
    def test_mcst_with_checkpointing(self):
        graph = to_undirected(rmat_graph(7, seed=9, weighted=True))
        plain = run_mcst(graph, fast_config(2))
        checkpointed = run_mcst(graph, fast_config(2, checkpointing=True))
        assert checkpointed.values["mst_weight"] == pytest.approx(
            plain.values["mst_weight"]
        )
        assert checkpointed.checkpoints > 0

    def test_scc_with_aggregation(self):
        graph = rmat_graph(7, seed=9)
        plain = run_scc(graph, fast_config(2))
        aggregated = run_scc(graph, fast_config(2, aggregate_updates=True))
        assert np.array_equal(plain.values["scc"], aggregated.values["scc"])

    def test_mcst_no_stealing_still_correct(self):
        graph = to_undirected(rmat_graph(7, seed=9, weighted=True))
        plain = run_mcst(graph, fast_config(4))
        no_steal = run_mcst(graph, fast_config(4, steal_alpha=0.0))
        assert no_steal.values["mst_weight"] == pytest.approx(
            plain.values["mst_weight"]
        )


class TestGeneratorProperties:
    @given(scale=st.integers(2, 10), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_rmat_ids_in_range(self, scale, seed):
        graph = rmat_graph(scale, seed=seed)
        assert graph.num_edges == rmat_edge_count(scale)
        assert graph.src.min() >= 0 and graph.src.max() < 2**scale
        assert graph.dst.min() >= 0 and graph.dst.max() < 2**scale

    @given(
        pages=st.integers(10, 500),
        degree=st.floats(1.0, 20.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_web_graph_well_formed(self, pages, degree, seed):
        graph = data_commons_like(pages, avg_degree=degree, seed=seed)
        assert graph.num_vertices == pages
        assert (graph.src != graph.dst).all()
        assert graph.src.max() < pages and graph.dst.max() < pages

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_runs_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, seen.append, "b")
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(3.0, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_fifo_order(self):
        sim = Simulator()
        seen = []
        for tag in range(10):
            sim.schedule(1.0, seen.append, tag)
        sim.run()
        assert seen == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_run_until_time_bound(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        sim.run(until=2.0)
        assert seen == ["a"]
        assert sim.now == 2.0

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(5.0, seen.append, "x")
        sim.run()
        assert sim.now == 5.0 and seen == ["x"]

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)


class TestEvents:
    def test_trigger_delivers_value(self):
        sim = Simulator()
        event = sim.event("e")
        seen = []
        event.subscribe(lambda e: seen.append(e.value))
        event.trigger(42)
        assert seen == [42]
        assert event.triggered and event.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_subscribe_after_trigger_fires_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.trigger("late")
        seen = []
        event.subscribe(lambda e: seen.append(e.value))
        assert seen == ["late"]

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_timeout_fires_at_right_time(self):
        sim = Simulator()
        event = sim.timeout(2.5, value="done")
        times = []
        event.subscribe(lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert event.value == "done"

    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        first = sim.timeout(2.0, value="slow")
        second = sim.timeout(1.0, value="fast")
        combined = sim.all_of([first, second])
        sim.run()
        assert combined.triggered
        assert combined.value == ["slow", "fast"]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        assert AllOf(sim, []).triggered

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        slow = sim.timeout(2.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        combined = sim.any_of([slow, fast])
        sim.run_until(combined)
        winner, value = combined.value
        assert winner is fast and value == "fast"
        assert sim.now == 1.0

    def test_any_of_requires_children(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [])


class TestProcesses:
    def test_process_advances_clock(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(sim.now)
            yield sim.timeout(1.5)
            trace.append(sim.now)
            yield sim.timeout(2.5)
            trace.append(sim.now)

        sim.process(worker())
        sim.run()
        assert trace == [0.0, 1.5, 4.0]

    def test_process_return_value_on_finished(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "result"

        process = sim.process(worker())
        assert sim.run_until(process.finished) == "result"

    def test_processes_interleave(self):
        sim = Simulator()
        trace = []

        def worker(name, delay):
            yield sim.timeout(delay)
            trace.append(name)
            yield sim.timeout(delay)
            trace.append(name)

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.5))
        sim.run()
        assert trace == ["a", "b", "a", "b"]

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="must yield Events"):
            sim.run()

    def test_event_value_passed_into_generator(self):
        sim = Simulator()
        seen = []

        def worker():
            value = yield sim.timeout(1.0, value="payload")
            seen.append(value)

        sim.process(worker())
        sim.run()
        assert seen == ["payload"]

    def test_interrupt_raises_in_process(self):
        sim = Simulator()
        caught = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)

        process = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt("wake up")

        sim.process(interrupter())
        sim.run()
        assert caught == ["wake up"]
        assert not process.alive

    def test_failed_event_raises_in_process(self):
        sim = Simulator()
        event = sim.event()
        caught = []

        def waiter():
            try:
                yield event
            except ValueError as error:
                caught.append(str(error))

        sim.process(waiter())
        sim.schedule(1.0, event.fail, ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_deadlock_detected_by_run_until(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until(never)

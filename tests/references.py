"""Reference implementations used to validate the Chaos engines.

Built on networkx / scipy / plain numpy — entirely independent of the
repro engine code paths.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy import sparse

from repro.graph.edgelist import EdgeList


def nx_graph(edges: EdgeList) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(range(edges.num_vertices))
    if edges.weighted:
        graph.add_weighted_edges_from(zip(edges.src, edges.dst, edges.weight))
    else:
        graph.add_edges_from(zip(edges.src, edges.dst))
    return graph


def nx_digraph(edges: EdgeList) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(range(edges.num_vertices))
    graph.add_edges_from(zip(edges.src, edges.dst))
    return graph


def reference_bfs_distances(edges: EdgeList, root: int) -> np.ndarray:
    graph = nx_graph(edges)
    lengths = nx.single_source_shortest_path_length(graph, root)
    result = np.full(edges.num_vertices, -1, dtype=np.int64)
    for vertex, distance in lengths.items():
        result[vertex] = distance
    return result


def reference_component_labels(edges: EdgeList) -> np.ndarray:
    graph = nx_graph(edges)
    labels = np.arange(edges.num_vertices, dtype=np.int64)
    for component in nx.connected_components(graph):
        smallest = min(component)
        for vertex in component:
            labels[vertex] = smallest
    return labels


def reference_sssp_distances(edges: EdgeList, root: int) -> np.ndarray:
    graph = nx_graph(edges)
    lengths = nx.single_source_dijkstra_path_length(graph, root)
    result = np.full(edges.num_vertices, np.inf)
    for vertex, distance in lengths.items():
        result[vertex] = distance
    return result


def reference_mst_weight(edges: EdgeList) -> float:
    graph = nx_graph(edges)
    return float(
        sum(d["weight"] for *_pair, d in nx.minimum_spanning_edges(graph, data=True))
    )


def reference_scc_ids(edges: EdgeList) -> np.ndarray:
    graph = nx_digraph(edges)
    result = np.full(edges.num_vertices, -1, dtype=np.int64)
    for component in nx.strongly_connected_components(graph):
        largest = max(component)
        for vertex in component:
            result[vertex] = largest
    return result


def reference_pagerank(
    edges: EdgeList, iterations: int, damping: float = 0.85
) -> np.ndarray:
    """The paper's (non-normalized, leaking) power iteration."""
    degree = np.bincount(edges.src, minlength=edges.num_vertices).astype(float)
    safe_degree = np.where(degree > 0, degree, 1.0)
    rank = np.ones(edges.num_vertices)
    for _ in range(iterations):
        contribution = np.zeros(edges.num_vertices)
        np.add.at(
            contribution, edges.dst, rank[edges.src] / safe_degree[edges.src]
        )
        rank = (1.0 - damping) + damping * contribution
    return rank


def reference_spmv(edges: EdgeList, x: np.ndarray) -> np.ndarray:
    values = edges.weight if edges.weighted else np.ones(edges.num_edges)
    matrix = sparse.coo_matrix(
        (values, (edges.dst, edges.src)),
        shape=(edges.num_vertices, edges.num_vertices),
    ).tocsr()
    return matrix @ x


def reference_bp_beliefs(
    edges: EdgeList,
    iterations: int,
    coupling: float = 0.5,
    damping: float = 0.5,
    prior_seed: int = 0,
) -> np.ndarray:
    rng = np.random.default_rng(prior_seed)
    prior = rng.normal(0.0, 1.0, size=edges.num_vertices)
    belief = prior.copy()
    weight = edges.weight if edges.weighted else None
    for _ in range(iterations):
        message = 2.0 * np.arctanh(np.tanh(coupling) * np.tanh(belief / 2.0))
        contributions = message[edges.src]
        if weight is not None:
            contributions = contributions * weight
        inbox = np.zeros(edges.num_vertices)
        np.add.at(inbox, edges.dst, contributions)
        belief = (1.0 - damping) * belief + damping * (prior + inbox)
    return belief


def reference_conductance(edges: EdgeList, split_fraction: float = 0.5) -> float:
    threshold = int(edges.num_vertices * split_fraction)
    side = np.arange(edges.num_vertices) >= threshold
    crossing = int((side[edges.src] != side[edges.dst]).sum())
    degree = np.bincount(edges.src, minlength=edges.num_vertices)
    volume_s = degree[~side].sum()
    volume_t = degree[side].sum()
    denominator = min(volume_s, volume_t)
    return crossing / denominator if denominator else 0.0

"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graph import read_edges


class TestGenerate:
    def test_rmat_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        assert main(["generate", "--scale", "8", "--out", out]) == 0
        graph = read_edges(out, 256, weighted=False)
        assert graph.num_edges == 4096
        assert "wrote" in capsys.readouterr().out

    def test_weighted_rmat(self, tmp_path):
        out = str(tmp_path / "g.bin")
        main(["generate", "--scale", "7", "--weighted", "--out", out])
        graph = read_edges(out, 128, weighted=True)
        assert graph.weighted

    def test_web_graph(self, tmp_path):
        out = str(tmp_path / "web.bin")
        main(["generate", "--kind", "web", "--pages", "500", "--out", out])
        graph = read_edges(out, 500, weighted=False)
        assert graph.num_edges > 0


class TestRun:
    def _run(self, capsys, *extra):
        code = main(
            [
                "run",
                "--scale",
                "8",
                "--machines",
                "2",
                "--chunk-kb",
                "4",
                *extra,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_pagerank(self, capsys):
        out = self._run(capsys, "--algorithm", "PR", "--iterations", "3")
        assert "PR: m=2" in out
        assert "breakdown" in out

    def test_bfs_defaults_root_to_hub(self, capsys):
        out = self._run(capsys, "--algorithm", "BFS")
        assert "BFS: m=2" in out

    def test_sssp_auto_weights(self, capsys):
        out = self._run(capsys, "--algorithm", "SSSP")
        assert "SSSP" in out

    def test_mcst_driver(self, capsys):
        out = self._run(capsys, "--algorithm", "MCST")
        assert "MCST" in out and "rounds" in out

    def test_scc_driver(self, capsys):
        out = self._run(capsys, "--algorithm", "SCC")
        assert "SCC" in out

    def test_stealing_and_checkpoint_flags(self, capsys):
        out = self._run(
            capsys,
            "--algorithm",
            "PR",
            "--alpha",
            "0",
            "--checkpoint",
        )
        assert "0 accepted" in out

    def test_run_from_file(self, tmp_path, capsys):
        graph_path = str(tmp_path / "in.bin")
        main(["generate", "--scale", "8", "--out", graph_path])
        code = main(
            [
                "run",
                "--algorithm",
                "WCC",
                "--input",
                graph_path,
                "--vertices",
                "256",
                "--machines",
                "2",
                "--chunk-kb",
                "4",
            ]
        )
        assert code == 0
        assert "WCC" in capsys.readouterr().out

    def test_input_requires_vertices(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "PR", "--input", "x.bin"])

    def test_json_output(self, capsys):
        out = self._run(capsys, "--algorithm", "PR", "--iterations", "2",
                        "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "PR"
        assert payload["machines"] == 2
        assert payload["network_bytes"] > 0
        assert "breakdown" in payload

    def test_json_output_driver(self, capsys):
        out = self._run(capsys, "--algorithm", "SCC", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "SCC"
        assert payload["rounds"] >= 1


class TestInjectFault:
    def _run(self, capsys, *extra):
        code = main(
            [
                "run", "--algorithm", "PR", "--scale", "8",
                "--machines", "4", "--chunk-kb", "4", "--checkpoint",
                *extra,
            ]
        )
        out = capsys.readouterr().out
        return code, out

    def test_crash_with_verification(self, capsys):
        code, out = self._run(
            capsys, "--inject-fault", "crash:1@iter=2", "--verify-recovery"
        )
        assert code == 0
        assert "fault timeline" in out
        assert "recoveries: 1" in out
        assert "final values identical to undisturbed run" in out

    def test_multiple_faults(self, capsys):
        code, out = self._run(
            capsys,
            "--inject-fault", "crash-restart:1@iter=1,down=0.01",
            "--inject-fault", "partition:2@iter=3,for=0.05",
        )
        assert code == 0
        assert "faults injected: 2" in out

    def test_bad_spec_rejected(self):
        with pytest.raises(SystemExit, match="bad --inject-fault"):
            main(["run", "--algorithm", "PR", "--scale", "8",
                  "--inject-fault", "nope:1@iter=2"])

    def test_driver_algorithms_rejected(self):
        with pytest.raises(SystemExit, match="MCST"):
            main(["run", "--algorithm", "MCST", "--scale", "8",
                  "--inject-fault", "crash:1@iter=2"])

    def test_sanitize_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["run", "--algorithm", "PR", "--scale", "8", "--sanitize",
                  "--inject-fault", "crash:1@iter=2"])

    def test_verify_requires_inject(self):
        with pytest.raises(SystemExit, match="requires --inject-fault"):
            main(["run", "--algorithm", "PR", "--scale", "8",
                  "--verify-recovery"])


class TestTrace:
    def _run_traced(self, capsys, trace_path, *extra):
        code = main(
            [
                "run",
                "--algorithm",
                "PR",
                "--iterations",
                "3",
                "--scale",
                "8",
                "--machines",
                "2",
                "--chunk-kb",
                "4",
                "--trace",
                trace_path,
                *extra,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_trace_file_is_valid_and_deterministic(self, tmp_path, capsys):
        path_a = str(tmp_path / "a.json")
        path_b = str(tmp_path / "b.json")
        self._run_traced(capsys, path_a)
        self._run_traced(capsys, path_b)
        bytes_a = open(path_a, "rb").read()
        bytes_b = open(path_b, "rb").read()
        assert bytes_a == bytes_b
        trace = json.loads(bytes_a)
        events = trace["traceEvents"]
        assert events
        data = [e for e in events if e["ph"] != "M"]
        assert all("ts" in e and "pid" in e and "tid" in e and "name" in e
                   for e in data)

    def test_trace_report(self, tmp_path, capsys):
        path = str(tmp_path / "t.json")
        self._run_traced(capsys, path)
        assert main(["trace-report", path]) == 0
        out = capsys.readouterr().out
        assert "per-device utilization" in out
        assert "breakdown categories" in out
        assert "top spans" in out

    def test_trace_csv(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        csv = str(tmp_path / "t.csv")
        self._run_traced(capsys, trace, "--trace-csv", csv)
        lines = open(csv).read().splitlines()
        assert lines[0] == "series,ts,value"
        assert len(lines) > 1

    def test_trace_report_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace-report", str(tmp_path / "nope.json")])


class TestHostProfile:
    def _run_profiled(self, capsys, *extra):
        code = main(
            [
                "run",
                "--algorithm",
                "PR",
                "--iterations",
                "3",
                "--scale",
                "8",
                "--machines",
                "2",
                "--chunk-kb",
                "4",
                "--host-profile",
                *extra,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_prints_host_report(self, capsys):
        out = self._run_profiled(capsys)
        assert "host profile: region" in out
        assert "hottest host phases by CPU time" in out
        assert "edges/sec" in out

    def test_export_files_are_written_and_valid(self, tmp_path, capsys):
        from repro.obs.host import (
            check_host_schema,
            parse_collapsed_stack,
            validate_prometheus,
        )

        hj = str(tmp_path / "h.json")
        hf = str(tmp_path / "h.folded")
        hp = str(tmp_path / "h.prom")
        out = self._run_profiled(
            capsys, "--host-json", hj, "--host-flamegraph", hf,
            "--host-prometheus", hp,
        )
        assert "host metrics:" in out
        doc = json.load(open(hj))
        assert check_host_schema(doc) == []
        assert parse_collapsed_stack(open(hf).read())
        assert validate_prometheus(open(hp).read()) == []

    def test_trace_embeds_host_metrics(self, tmp_path, capsys):
        path = str(tmp_path / "t.json")
        self._run_profiled(capsys, "--trace", path)
        trace = json.load(open(path))
        assert trace["traceEvents"]
        assert trace["hostMetrics"]["host_schema_version"] == 1
        assert trace["hostMetrics"]["phases"]

    def test_trace_report_shows_skew_table(self, tmp_path, capsys):
        path = str(tmp_path / "t.json")
        self._run_profiled(capsys, "--trace", path)
        assert main(["trace-report", path]) == 0
        out = capsys.readouterr().out
        assert "hottest host phases by CPU time" in out
        assert "sim span" in out and "skew" in out
        assert "merge_apply" in out  # apply's sim-time counterpart

    def test_trace_report_top_caps_host_rows(self, tmp_path, capsys):
        path = str(tmp_path / "t.json")
        self._run_profiled(capsys, "--trace", path)
        assert main(["trace-report", path, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "hottest host phases by CPU time (top 2)" in out

    def test_trace_without_host_profile_has_no_host_key(self, tmp_path,
                                                        capsys):
        path = str(tmp_path / "t.json")
        code = main(
            ["run", "--algorithm", "PR", "--iterations", "1", "--scale",
             "8", "--machines", "2", "--chunk-kb", "4", "--trace", path]
        )
        assert code == 0
        capsys.readouterr()
        assert "hostMetrics" not in json.load(open(path))

    def test_json_output_carries_host_document(self, capsys):
        out = self._run_profiled(capsys, "--json")
        payload = json.loads(out)
        assert payload["host"]["phases"]
        assert payload["host"]["region"]["wall_seconds"] > 0

    def test_tracemalloc_mode(self, capsys):
        code = main(
            ["run", "--algorithm", "PR", "--iterations", "1", "--scale",
             "8", "--machines", "2", "--chunk-kb", "4",
             "--host-profile=tracemalloc", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["host"]["tracemalloc"] is True
        assert all("alloc_bytes" in p for p in payload["host"]["phases"])

    def test_export_flags_require_host_profile(self, tmp_path):
        with pytest.raises(SystemExit, match="require"):
            main(
                ["run", "--algorithm", "PR", "--scale", "8", "--machines",
                 "2", "--host-json", str(tmp_path / "h.json")]
            )

    def test_driver_algorithms_rejected(self):
        with pytest.raises(SystemExit, match="multi-run driver"):
            main(
                ["run", "--algorithm", "MCST", "--scale", "8",
                 "--machines", "2", "--host-profile"]
            )


class TestCapacity:
    def test_small_projection(self, capsys):
        code = main(
            [
                "capacity",
                "--algorithm",
                "PR",
                "--scale",
                "20",
                "--machines",
                "4",
                "--iterations",
                "2",
                "--chunk-mb",
                "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PR:" in out and "TB I/O" in out


class TestUtilization:
    def test_table_matches_formula(self, capsys):
        assert main(["utilization"]) == 0
        out = capsys.readouterr().out
        assert "0.9956" in out  # rho(32, 5), the paper's 99.56%
        assert "0.9933" in out  # the k=5 limit, the paper's 99.3%

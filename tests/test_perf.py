"""Tests for activity profiles and capacity projections."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank
from repro.core import ClusterConfig
from repro.core.runtime import ChaosCluster, GraphSpec, run_algorithm
from repro.graph import rmat_graph, to_undirected
from repro.perf import (
    ActivityProfile,
    bfs_profile,
    extract_profile,
    fixed_profile,
    project_capacity,
)

from tests.conftest import fast_config


class TestActivityProfile:
    def test_fixed_profile(self):
        profile = fixed_profile(5, update_factor=0.5)
        assert profile.iterations == 5
        assert profile.update_factor(2) == 0.5
        assert profile.update_factor(99) == 0.0
        assert profile.total_update_factor() == pytest.approx(2.5)

    def test_bfs_profile_shape(self):
        profile = bfs_profile(13)
        factors = np.array(profile.update_factors)
        assert factors.sum() == pytest.approx(1.0)
        peak = int(np.argmax(factors))
        assert 0 < peak < 13 - 1  # bell-shaped: interior peak
        assert factors[0] < factors[peak]
        assert factors[-1] < factors[peak]

    def test_stretch_preserves_total_volume(self):
        profile = bfs_profile(10)
        stretched = profile.stretched(25)
        assert stretched.iterations == 25
        assert stretched.total_update_factor() == pytest.approx(
            profile.total_update_factor()
        )

    def test_stretch_identity(self):
        profile = fixed_profile(4)
        assert profile.stretched(4) is profile

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            ActivityProfile(update_factors=())
        with pytest.raises(ValueError):
            ActivityProfile(update_factors=(0.5, -0.1))
        with pytest.raises(ValueError):
            fixed_profile(0)


class TestExtractProfile:
    def test_pagerank_extraction_is_flat_ones(self, small_graph):
        result = run_algorithm(
            PageRank(iterations=3), small_graph, fast_config(2)
        )
        profile = extract_profile(result)
        assert profile.iterations == 3
        # Every edge emits exactly one update per PR iteration.
        assert all(f == pytest.approx(1.0) for f in profile.update_factors)

    def test_bfs_extraction_sums_to_reached_fraction(self):
        graph = to_undirected(rmat_graph(9, seed=2, weighted=True))
        result = run_algorithm(BFS(root=0), graph, fast_config(2))
        profile = extract_profile(result)
        # Total updates over the run = one per edge out of reached
        # vertices; bounded by 1 per streamed edge.
        assert 0 < profile.total_update_factor() <= 1.0
        # Final iteration is the empty frontier.
        assert profile.update_factors[-1] == 0.0


class TestModelVsDataConsistency:
    def test_model_runtime_tracks_data_runtime(self):
        """A phantom run driven by a profile extracted from a data run
        should land close to the data run's simulated time."""
        graph = rmat_graph(13, seed=1)
        config = fast_config(4, chunk_bytes=16 * 1024, partitions_per_machine=1)
        data_result = run_algorithm(PageRank(iterations=3), graph, config)
        profile = extract_profile(data_result)
        spec = GraphSpec(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            skew="rmat",
        )
        model_result = ChaosCluster(config).run_model(
            PageRank(iterations=3), spec, profile
        )
        assert model_result.runtime == pytest.approx(
            data_result.runtime, rel=0.25
        )


class TestCapacityProjection:
    def test_small_scale_projection_runs(self):
        config = ClusterConfig(
            machines=4,
            chunk_bytes=1 << 22,
            partitions_per_machine=1,
        )
        projection = project_capacity(
            PageRank(iterations=2),
            fixed_profile(2),
            scale=20,
            machines=4,
            config=config,
        )
        assert projection.runtime_hours > 0
        assert projection.iterations == 2
        assert projection.total_io_terabytes > 0
        assert "PR" in projection.summary()

    def test_non_compact_doubling_above_2_32(self):
        algorithm = PageRank(iterations=1)
        assert algorithm.update_bytes == 8
        config = ClusterConfig(
            machines=2, chunk_bytes=1 << 26, partitions_per_machine=1
        )
        project_capacity(
            algorithm, fixed_profile(1), scale=33, machines=2, config=config
        )
        assert algorithm.update_bytes == 16  # instance attr doubled
        assert type(algorithm).update_bytes == 8  # class untouched

"""Tests for the observability subsystem (repro.obs).

Covers the tracer primitives, the determinism guarantee (same seed →
byte-identical trace JSON), span nesting balance, the reconciliation of
trace-derived category totals against the engine ``Breakdown``, the
counter samplers and both exporters.
"""

import json

import pytest

from repro import ClusterConfig, PageRank, rmat_graph, run_algorithm
from repro.algorithms import BFS, run_mcst
from repro.core.metrics import BREAKDOWN_CATEGORIES
from repro.core.recovery import run_with_failure
from repro.graph.convert import to_undirected
from repro.obs import (
    CounterRegistry,
    NULL_TRACER,
    ResourceSampler,
    TraceError,
    Tracer,
    chrome_trace_dict,
    dumps_chrome_trace,
    format_trace_report,
    summarize_trace,
    summarize_trace_file,
    write_chrome_trace,
    write_counters_csv,
)
from repro.obs.tracer import NULL_TRACK, TID_DEVICE, TID_ENGINE, TID_JOB
from repro.sim.engine import Simulator


def _traced_run(sample_interval=1e-3, iterations=3, machines=2):
    graph = rmat_graph(8, seed=1)
    tracer = Tracer(sample_interval=sample_interval)
    result = run_algorithm(
        PageRank(iterations=iterations),
        graph,
        machines=machines,
        chunk_bytes=4096,
        tracer=tracer,
    )
    return tracer, result


class TestTracerPrimitives:
    def test_nested_spans_balance(self):
        tracer = Tracer()
        track = tracer.thread(0, TID_ENGINE)
        track.begin("outer")
        track.begin("inner", cat="copy")
        assert tracer.open_span_count() == 2
        track.end()
        track.end()
        assert tracer.open_span_count() == 0
        phases = [e["ph"] for e in tracer.events]
        assert phases == ["B", "B", "E", "E"]
        # The E event carries the name/cat popped from the stack.
        assert tracer.events[2]["name"] == "inner"
        assert tracer.events[2]["cat"] == "copy"

    def test_end_without_begin_raises(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.end(0, TID_ENGINE)

    def test_negative_complete_duration_raises(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.complete(0, TID_DEVICE, "io", start=1.0, duration=-0.5)

    def test_bind_run_rebases_subsequent_runs(self):
        tracer = Tracer()
        tracer.bind_run(lambda: 2.0)
        tracer.instant(0, TID_JOB, "first")
        assert tracer.end_time == 2.0
        tracer.bind_run(lambda: 1.0)  # new run, clock restarts
        tracer.instant(0, TID_JOB, "second")
        assert tracer.events[1]["ts"] == pytest.approx(3.0)
        assert tracer.end_time == pytest.approx(3.0)

    def test_null_objects_are_inert(self):
        assert not NULL_TRACER.enabled
        track = NULL_TRACER.thread(0, TID_ENGINE)
        assert track is NULL_TRACK
        assert not track.enabled
        track.begin("x")
        track.end()
        track.complete("x", 0.0, 1.0)
        track.instant("x")
        NULL_TRACER.counter(0, "c", 1.0)
        NULL_TRACER.bind_run(lambda: 0.0)

    def test_invalid_sample_interval(self):
        with pytest.raises(ValueError):
            Tracer(sample_interval=0.0)
        with pytest.raises(ValueError):
            Tracer(sample_interval=-1.0)


class TestCounters:
    def test_registry_rows_are_series_sorted(self):
        registry = CounterRegistry()
        registry.add("b", 0.0, 1.0)
        registry.add("a", 0.5, 2.0)
        registry.add("a", 1.0, 3.0)
        rows = list(registry.rows())
        assert rows == [("a", 0.5, 2.0), ("a", 1.0, 3.0), ("b", 0.0, 1.0)]
        assert registry.get("a").mean() == pytest.approx(2.5)
        assert registry.get("a").peak() == pytest.approx(3.0)

    def test_sampler_busy_fraction(self):
        sim = Simulator()
        tracer = Tracer(sample_interval=1.0)
        tracer.bind_run(lambda: sim.now)
        busy = {"t": 0.0}
        sampler = ResourceSampler(sim, tracer, interval=1.0)
        sampler.add_probe("dev.busy", 0, lambda: busy["t"],
                          mode="busy_fraction")
        sampler.start()

        def load():
            yield sim.timeout(0.5)
            busy["t"] = 0.5  # 50% busy over the first interval
            yield sim.timeout(2.0)

        done = sim.process(load()).finished
        sim.run_until(done)
        series = tracer.registry.get("dev.busy")
        assert series.samples[0] == (1.0, pytest.approx(0.5))
        assert series.samples[1] == (2.0, pytest.approx(0.0))

    def test_final_partial_sample_has_correct_fraction(self):
        # A run shorter than one sampling interval only ever sees the
        # finish-line sample the runtime takes; the fraction must use
        # the *actual* elapsed time, not the nominal interval.
        sim = Simulator()
        tracer = Tracer(sample_interval=10.0)
        tracer.bind_run(lambda: sim.now)
        busy = {"t": 0.0}
        sampler = ResourceSampler(sim, tracer, interval=10.0)
        sampler.add_probe("dev.busy", 0, lambda: busy["t"],
                          mode="busy_fraction")
        sampler.start()

        def load():
            yield sim.timeout(2.5)
            busy["t"] = 0.5

        done = sim.process(load()).finished
        sim.run_until(done)
        sampler.sample()  # what the runtime does at the finish line
        series = tracer.registry.get("dev.busy")
        assert series.samples == [(2.5, pytest.approx(0.5 / 2.5))]
        assert series.integral() == pytest.approx(0.5)

    def test_busy_series_integrates_to_span_total(self):
        # Regression: the sampler used to truncate the tail past the
        # last whole interval, so the busy-fraction series integrated
        # short of the device's true busy time.
        tracer, _result = _traced_run(sample_interval=1e-4, machines=2)
        for machine in range(2):
            span_busy = sum(
                e["dur"]
                for e in tracer.events
                if e["ph"] == "X"
                and e["pid"] == machine
                and e["tid"] == TID_DEVICE
            )
            series = tracer.registry.get(f"m{machine}.device.busy")
            assert series.integral() == pytest.approx(span_busy, rel=1e-12)


class TestTracedRun:
    def test_trace_is_deterministic(self):
        tracer_a, result_a = _traced_run()
        tracer_b, result_b = _traced_run()
        text_a = dumps_chrome_trace(tracer_a)
        text_b = dumps_chrome_trace(tracer_b)
        assert text_a == text_b
        assert result_a.runtime == result_b.runtime

    def test_all_spans_closed_after_run(self):
        tracer, _ = _traced_run()
        assert tracer.open_span_count() == 0
        summary = summarize_trace(chrome_trace_dict(tracer))
        assert summary.unbalanced_spans == 0
        assert summary.begin_events == summary.end_events
        assert summary.begin_events > 0

    def test_category_totals_match_breakdown(self):
        tracer, result = _traced_run()
        summary = summarize_trace(chrome_trace_dict(tracer))
        breakdown = result.total_breakdown()
        for category in BREAKDOWN_CATEGORIES:
            assert summary.category_seconds.get(category, 0.0) == pytest.approx(
                getattr(breakdown, category), abs=1e-6
            )

    def test_tracing_does_not_change_results(self):
        graph = rmat_graph(8, seed=1)
        plain = run_algorithm(PageRank(iterations=3), graph, machines=2,
                              chunk_bytes=4096)
        tracer = Tracer(sample_interval=1e-3)
        traced = run_algorithm(PageRank(iterations=3), graph, machines=2,
                               chunk_bytes=4096, tracer=tracer)
        assert traced.runtime == plain.runtime
        assert traced.storage_bytes == plain.storage_bytes
        assert traced.network_bytes == plain.network_bytes

    def test_chrome_trace_structure(self):
        tracer, _ = _traced_run()
        trace = chrome_trace_dict(tracer)
        events = trace["traceEvents"]
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)
        assert any(e["ph"] == "M" and e["name"] == "thread_name"
                   for e in events)
        data = [e for e in events if e["ph"] not in ("M",)]
        assert all("ts" in e and "pid" in e and "tid" in e and "name" in e
                   for e in data)
        # Data events are time-ordered (microseconds).
        ts = [e["ts"] for e in data]
        assert ts == sorted(ts)
        instants = [e for e in data if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)
        assert any(e["ph"] == "X" and e["dur"] >= 0 for e in data)

    def test_counter_series_sampled(self):
        tracer, _ = _traced_run()
        names = tracer.registry.names()
        assert "m0.device.busy" in names
        assert "m0.nic.tx.busy" in names
        assert "m1.cores.busy" in names
        busy = tracer.registry.get("m0.device.busy")
        assert 0.0 <= busy.peak() <= 1.0
        assert busy.samples  # periodic + final snapshot

    def test_sampling_disabled_keeps_spans(self):
        tracer, _ = _traced_run(sample_interval=None)
        assert tracer.registry.names() == []
        assert any(e["ph"] == "B" for e in tracer.events)


class TestExportAndReport:
    def test_file_roundtrip_and_report(self, tmp_path):
        tracer, result = _traced_run()
        path = str(tmp_path / "out.json")
        size = write_chrome_trace(tracer, path)
        assert size > 0
        with open(path) as handle:
            assert json.load(handle)["traceEvents"]
        summary = summarize_trace_file(path)
        breakdown = result.total_breakdown()
        for category in BREAKDOWN_CATEGORIES:
            assert summary.category_seconds.get(category, 0.0) == pytest.approx(
                getattr(breakdown, category), abs=1e-6
            )
        report = format_trace_report(summary)
        assert "per-device utilization" in report
        assert "breakdown categories" in report
        assert "gp_master" in report

    def test_counters_csv(self, tmp_path):
        tracer, _ = _traced_run()
        path = str(tmp_path / "out.csv")
        rows = write_counters_csv(tracer, path)
        lines = open(path).read().splitlines()
        assert lines[0] == "series,ts,value"
        assert len(lines) == rows + 1
        name, ts, value = lines[1].split(",")
        float(ts), float(value)  # parseable

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            summarize_trace_file(str(path))


class TestDriversAndRecovery:
    def test_mcst_traces_all_rounds(self):
        graph = to_undirected(rmat_graph(7, seed=3, weighted=True))
        tracer = Tracer(sample_interval=None)
        result = run_mcst(graph, machines=2, chunk_bytes=4096, tracer=tracer)
        assert tracer.open_span_count() == 0
        done = [e for e in tracer.events
                if e["ph"] == "i" and e["name"] == "job.done"]
        assert len(done) == len(result.jobs)
        # Runs are laid out sequentially: job.done markers strictly increase.
        stamps = [e["ts"] for e in done]
        assert stamps == sorted(stamps) and len(set(stamps)) == len(stamps)

    def test_recovery_trace_has_failure_markers(self):
        graph = to_undirected(rmat_graph(7, seed=1))
        config = ClusterConfig(machines=2, chunk_bytes=4096,
                               checkpointing=True)
        tracer = Tracer(sample_interval=None)
        report = run_with_failure(
            lambda: BFS(root=0), graph, config,
            fail_after_iterations=1, tracer=tracer,
        )
        assert report.result.iterations >= 1
        assert tracer.open_span_count() == 0
        summary = summarize_trace(chrome_trace_dict(tracer))
        assert summary.instants.get("failure") == 1
        restore = summary.spans.get("restore")
        assert restore is not None and restore.count == 1
        assert restore.total == pytest.approx(report.restore_seconds,
                                              rel=1e-6)


class TestResultSurface:
    def test_job_result_json(self):
        _, result = _traced_run()
        payload = json.loads(result.to_json())
        assert payload["algorithm"] == "PR"
        assert payload["machines"] == 2
        assert payload["network_bytes"] == result.network_bytes
        assert set(payload["breakdown"]) == set(BREAKDOWN_CATEGORIES)
        assert len(payload["iteration_stats"]) == result.iterations
        assert "rank" in payload["value_keys"]
        # Deterministic serialization.
        assert result.to_json() == result.to_json()

    def test_summary_includes_network_and_checkpoints(self):
        graph = rmat_graph(8, seed=1)
        result = run_algorithm(PageRank(iterations=2), graph, machines=2,
                               chunk_bytes=4096, checkpointing=True)
        text = result.summary()
        assert "net=" in text
        assert f"checkpoints={result.checkpoints}" in text
        assert result.checkpoints > 0

    def test_driver_result_json(self):
        graph = to_undirected(rmat_graph(7, seed=3, weighted=True))
        result = run_mcst(graph, machines=2, chunk_bytes=4096)
        payload = json.loads(result.to_json())
        assert payload["algorithm"] == "MCST"
        assert payload["rounds"] == result.rounds
        assert len(payload["jobs"]) == len(result.jobs)
        assert payload["network_bytes"] == result.network_bytes

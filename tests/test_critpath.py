"""Tests for the bottleneck-attribution analyzer (repro.obs.critpath).

The load-bearing property is *closure*: the per-machine category
seconds must sum to the trace duration exactly, on crafted traces and
on real runs alike (normal, network-bound, multi-algorithm,
fault-injected).  On top of that the analyzer must name the right
binding resource for storage- vs network-bound hardware, measure a
steady-state storage utilization within 5% of the analytic rho(m, k)
(Eq. 4), and flag stragglers only when stealing is off.
"""

import pytest

from repro import PageRank, rmat_graph, run_algorithm
from repro.algorithms import SSSP, WCC
from repro.faults import FaultPlan
from repro.graph.convert import to_undirected
from repro.net.topology import GIGE_1_BENCH, GIGE_40_BENCH
from repro.obs import (
    ATTRIBUTION_CATEGORIES,
    AttributionError,
    Tracer,
    analyze_chrome_trace,
    analyze_events,
    analyze_tracer,
    chrome_trace_dict,
    format_attribution_report,
    format_iteration_table,
)
from repro.obs.tracer import TID_DEVICE, TID_ENGINE, TID_JOB
from repro.store.device import SSD_BENCH

from tests.conftest import fast_config

CLOSURE_TOL = 1e-9


def _engine(ph, ts, name, pid=0, cat=None, args=None):
    event = {"ph": ph, "ts": ts, "pid": pid, "tid": TID_ENGINE, "name": name}
    if cat is not None:
        event["cat"] = cat
    if args is not None:
        event["args"] = args
    return event


def _device(ts, dur, pid=0):
    return {
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": TID_DEVICE,
        "name": "io",
        "cat": "storage",
    }


class TestCraftedTraces:
    """Hand-built event lists with known attributions."""

    def test_storage_and_queue_split(self):
        # Engine demands for [0, 8), barrier for [8, 10).  The device
        # serves [0, 4) then back-to-back [4, 8): the second request
        # queued, so its service time is the queueing share.
        events = [
            _engine("B", 0.0, "scatter", args={"iteration": 0}),
            _device(0.0, 4.0),
            _device(4.0, 4.0),
            _engine("B", 8.0, "barrier", cat="barrier"),
            _engine("E", 10.0, "barrier"),
            _engine("E", 10.0, "scatter"),
        ]
        report = analyze_events(events, duration=10.0)
        machine = report.per_machine[0].seconds
        assert machine["storage_busy"] == pytest.approx(4.0)
        assert machine["storage_queue"] == pytest.approx(4.0)
        assert machine["barrier"] == pytest.approx(2.0)
        assert report.closure_error() <= CLOSURE_TOL
        assert report.bottleneck == "storage"
        assert report.dominant_category in ("storage_busy", "storage_queue")

    def test_steal_cpu_and_net_wait(self):
        # merge_wait is steal overhead, merge_apply is cpu, and demand
        # with no local resource busy falls through to net_wait.
        events = [
            _engine("B", 0.0, "gather", args={"iteration": 1}),
            _engine("B", 0.0, "merge_wait"),
            _engine("E", 3.0, "merge_wait"),
            _engine("B", 3.0, "merge_apply", cat="merge"),
            _engine("E", 5.0, "merge_apply"),
            _engine("E", 10.0, "gather"),
        ]
        report = analyze_events(events, duration=10.0)
        machine = report.per_machine[0].seconds
        assert machine["steal"] == pytest.approx(3.0)
        assert machine["cpu"] == pytest.approx(2.0)
        assert machine["net_wait"] == pytest.approx(5.0)
        assert report.closure_error() <= CLOSURE_TOL

    def test_stealer_vertex_load_counts_as_steal(self):
        events = [
            _engine("B", 0.0, "scatter", args={"iteration": 0}),
            _engine("B", 0.0, "partition3", args={"role": "stealer"}),
            _engine("B", 0.0, "vertex_load", cat="copy"),
            _engine("E", 4.0, "vertex_load"),
            _engine("E", 4.0, "partition3"),
            _engine("B", 4.0, "partition0", args={"role": "master"}),
            _engine("B", 4.0, "vertex_load", cat="copy"),
            _engine("E", 6.0, "vertex_load"),
            _engine("E", 6.0, "partition0"),
            _engine("E", 10.0, "scatter"),
        ]
        report = analyze_events(events, duration=10.0)
        machine = report.per_machine[0].seconds
        # Stealer-side copy is stealing overhead; the master's own
        # vertex load is ordinary demand (net_wait here: nothing busy).
        assert machine["steal"] == pytest.approx(4.0)
        assert machine["net_wait"] == pytest.approx(6.0)
        assert report.closure_error() <= CLOSURE_TOL

    def test_recovery_window_wins_over_everything(self):
        # Machine count comes from the engine track; the job track
        # lives at pid == machines.  The lost window overlaps a barrier
        # — recovery has priority.
        events = [
            _engine("B", 0.0, "scatter", args={"iteration": 0}),
            _engine("B", 2.0, "barrier", cat="barrier"),
            _engine("E", 8.0, "barrier"),
            _engine("E", 10.0, "scatter"),
            {
                "ph": "X",
                "ts": 4.0,
                "dur": 3.0,
                "pid": 1,
                "tid": TID_JOB,
                "name": "lost",
                "cat": "lost",
            },
        ]
        report = analyze_events(events, duration=10.0)
        machine = report.per_machine[0].seconds
        assert machine["recovery"] == pytest.approx(3.0)
        assert machine["barrier"] == pytest.approx(3.0)  # 6 - overlap
        assert report.closure_error() <= CLOSURE_TOL

    def test_killed_engine_spans_do_not_leak_past_restart(self):
        # An engine killed at t=2 leaves its scatter/barrier spans open
        # forever; the restarted epoch's balanced spans stack above
        # them.  Once the rollback window closes, the stale entries
        # must not classify post-restart time — idle time after the
        # restarted spans pop off is demand of the *new* iteration,
        # not barrier time of the dead epoch.
        events = [
            _engine("B", 0.0, "scatter", args={"iteration": 0}),
            _engine("B", 1.0, "barrier", cat="barrier"),
            # killed at 2.0: no E events for the spans above.
            {
                "ph": "X",
                "ts": 2.0,
                "dur": 3.0,
                "pid": 1,
                "tid": TID_JOB,
                "name": "lost",
                "cat": "lost",
            },
            # Restarted epoch resumes at the window end.
            _engine("B", 5.0, "scatter", args={"iteration": 1}),
            _engine("E", 7.0, "scatter"),
            # [7, 10): nothing on the (live) stack.
        ]
        report = analyze_events(events, duration=10.0)
        machine = report.per_machine[0].seconds
        assert machine["recovery"] == pytest.approx(3.0)
        # Only [1, 2) is barrier — [7, 10) must not inherit the dead
        # epoch's open barrier span.
        assert machine["barrier"] == pytest.approx(1.0)
        assert machine["net_wait"] == pytest.approx(6.0)
        # Post-restart idle is charged to the restarted iteration.
        per_iter = {it.label: it.total() for it in report.per_iteration}
        assert per_iter["0"] == pytest.approx(5.0)
        assert per_iter["1"] == pytest.approx(5.0)
        assert report.closure_error() <= CLOSURE_TOL

    def test_per_iteration_buckets(self):
        events = [
            _engine("B", 0.0, "scatter", args={"iteration": 0}),
            _engine("E", 4.0, "scatter"),
            _engine("B", 4.0, "scatter", args={"iteration": 1}),
            _engine("E", 10.0, "scatter"),
        ]
        report = analyze_events(events, duration=10.0)
        labels = [it.label for it in report.per_iteration]
        assert labels == ["0", "1"]
        assert report.per_iteration[0].total() == pytest.approx(4.0)
        assert report.per_iteration[1].total() == pytest.approx(6.0)

    def test_empty_trace_raises(self):
        with pytest.raises(AttributionError):
            analyze_events([])
        with pytest.raises(AttributionError):
            analyze_events(
                [_engine("B", 0.0, "scatter"), _engine("E", 0.0, "scatter")],
                duration=0.0,
            )


def _attributed_run(algorithm, graph, **overrides):
    tracer = Tracer(sample_interval=None)
    result = run_algorithm(algorithm, graph, tracer=tracer, **overrides)
    return analyze_tracer(tracer), tracer, result


class TestRealRunClosure:
    """The closure invariant on live simulated runs."""

    def test_pagerank_closure(self, small_graph):
        report, _tracer, result = _attributed_run(
            PageRank(iterations=3), small_graph, config=fast_config(4)
        )
        assert report.machines == 4
        assert report.duration == pytest.approx(result.runtime, rel=1e-9)
        assert report.closure_error() <= CLOSURE_TOL
        for m in report.per_machine:
            for category in ATTRIBUTION_CATEGORIES:
                assert m.seconds.get(category, 0.0) >= 0.0

    def test_wcc_closure(self, small_undirected_graph):
        report, _tracer, _result = _attributed_run(
            WCC(), small_undirected_graph, config=fast_config(2)
        )
        assert report.closure_error() <= CLOSURE_TOL

    def test_sssp_closure(self, small_undirected_graph):
        report, _tracer, _result = _attributed_run(
            SSSP(root=0), small_undirected_graph, config=fast_config(2)
        )
        assert report.closure_error() <= CLOSURE_TOL

    def test_fault_injected_closure_and_recovery(self, small_graph):
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=4),
            small_graph,
            config=fast_config(4, checkpointing=True, seed=7),
            fault_plan=FaultPlan.parse(["crash:1@iter=2"]),
        )
        assert report.closure_error() <= CLOSURE_TOL
        assert report.cluster_seconds["recovery"] > 0.0

    def test_chrome_roundtrip_matches_live_analysis(self, small_graph):
        tracer = Tracer(sample_interval=None)
        run_algorithm(
            PageRank(iterations=2),
            small_graph,
            tracer=tracer,
            config=fast_config(2),
        )
        live = analyze_tracer(tracer)
        loaded = analyze_chrome_trace(chrome_trace_dict(tracer))
        assert loaded.closure_error() <= 1e-5  # us rounding in export
        assert loaded.bottleneck == live.bottleneck
        for category in ATTRIBUTION_CATEGORIES:
            assert loaded.cluster_seconds[category] == pytest.approx(
                live.cluster_seconds[category], abs=1e-4
            )

    def test_disabled_tracer_rejected(self):
        from repro.obs import NULL_TRACER

        with pytest.raises(AttributionError):
            analyze_tracer(NULL_TRACER)


class TestBottleneckNaming:
    def test_ssd_40gige_is_storage_bound(self):
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=3),
            rmat_graph(11, seed=1),
            machines=2,
            chunk_bytes=4096,
            batch_factor=8,
            partitions_per_machine=1,
            device=SSD_BENCH,
            network=GIGE_40_BENCH,
        )
        assert report.bottleneck == "storage"
        assert report.closure_error() <= CLOSURE_TOL

    def test_ssd_1gige_is_network_bound(self):
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=3),
            rmat_graph(11, seed=1),
            machines=2,
            chunk_bytes=4096,
            batch_factor=8,
            partitions_per_machine=1,
            device=SSD_BENCH,
            network=GIGE_1_BENCH,
        )
        assert report.bottleneck == "network"
        assert report.closure_error() <= CLOSURE_TOL


class TestRhoMeasurement:
    @pytest.mark.parametrize("machines", [2, 4, 8])
    def test_measured_rho_tracks_eq4(self, machines):
        # The tracked bench configuration: deep request window (phi*k=8)
        # keeps the devices in the Eq. 4 steady-state regime.
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=3),
            rmat_graph(12, seed=1),
            machines=machines,
            chunk_bytes=4096,
            batch_factor=8,
            partitions_per_machine=1,
            device=SSD_BENCH,
            network=GIGE_40_BENCH,
        )
        assert report.measured_rho is not None
        assert report.analytic_rho == pytest.approx(1.0)
        assert report.rho_error() < 0.05


class TestStragglerDetection:
    def test_stealing_disabled_flags_stragglers(self, medium_graph):
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=3),
            medium_graph,
            config=fast_config(4, steal_alpha=0.0),
        )
        assert report.stragglers, "alpha=0 run should show stragglers"
        for flag in report.stragglers:
            assert flag.wait > flag.bound

    def test_stealing_enabled_bounds_barrier_wait(self, medium_graph):
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=3), medium_graph, config=fast_config(4)
        )
        assert not report.stragglers, (
            "stealing should keep every barrier wait under the bound"
        )


class TestRendering:
    def test_report_text_sections(self, small_graph):
        report, _tracer, _result = _attributed_run(
            PageRank(iterations=2), small_graph, config=fast_config(2)
        )
        text = format_attribution_report(report)
        assert "bottleneck attribution" in text
        assert "binding resource" in text
        assert "closure error" in text
        assert "per-machine attribution" in text
        table = format_iteration_table(report)
        assert any("per-iteration" in line for line in table)
        # One row per iteration label plus header lines.
        assert len(table) == 2 + len(report.per_iteration)

    def test_to_dict_is_json_ready(self, small_graph):
        import json

        report, _tracer, _result = _attributed_run(
            PageRank(iterations=2), small_graph, config=fast_config(2)
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["machines"] == 2
        assert set(payload["cluster_seconds"]) == set(ATTRIBUTION_CATEGORIES)
        assert payload["closure_error"] <= 1e-9

"""Unit tests for streaming partitions (Section 3)."""

import numpy as np
import pytest

from repro.graph import EdgeList, rmat_graph
from repro.partition import (
    PartitionLayout,
    choose_partition_count,
    partition_edges,
    preprocess,
)


class TestPartitionLayout:
    def test_even_split(self):
        layout = PartitionLayout.even(10, 3)
        assert list(layout.boundaries) == [0, 4, 7, 10]
        assert layout.vertex_count(0) == 4
        assert layout.vertex_count(2) == 3

    def test_partition_of_vectorized(self):
        layout = PartitionLayout.even(10, 2)
        result = layout.partition_of(np.array([0, 4, 5, 9]))
        assert list(result) == [0, 0, 1, 1]

    def test_vertex_range(self):
        layout = PartitionLayout.even(10, 2)
        assert list(layout.vertex_range(1)) == [5, 6, 7, 8, 9]

    def test_to_local(self):
        layout = PartitionLayout.even(10, 2)
        local = layout.to_local(1, np.array([5, 9]))
        assert list(local) == [0, 4]

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            PartitionLayout(10, 2, np.array([0, 5, 9]))  # does not span
        with pytest.raises(ValueError):
            PartitionLayout(10, 2, np.array([0, 7, 5]))  # decreasing

    def test_more_partitions_than_vertices(self):
        layout = PartitionLayout.even(2, 4)
        counts = [layout.vertex_count(p) for p in range(4)]
        assert sum(counts) == 2


class TestChoosePartitionCount:
    def test_one_partition_when_memory_ample(self):
        assert choose_partition_count(1000, 1, 16, 10**9) == 1

    def test_multiple_of_machines(self):
        count = choose_partition_count(1000, 4, 16, 10**9)
        assert count == 4

    def test_grows_until_fits(self):
        # 1000 vertices x 16 B = 16 kB total; 3 kB memory -> need >= 6
        # partitions, rounded up to a multiple of 2 -> 6.
        count = choose_partition_count(1000, 2, 16, 3000)
        assert count % 2 == 0
        per_partition = -(-1000 // count) * 16
        assert per_partition <= 3000
        # Smallest such multiple: count-2 must NOT fit.
        if count > 2:
            previous = -(-1000 // (count - 2)) * 16
            assert previous > 3000

    def test_memory_too_small_rejected(self):
        with pytest.raises(ValueError):
            choose_partition_count(10, 1, 16, 8)


class TestPartitionEdges:
    def test_edges_follow_source_partition(self):
        graph = rmat_graph(8, seed=0)
        layout = PartitionLayout.even(graph.num_vertices, 4)
        parts = partition_edges(graph, layout)
        for p, part in enumerate(parts):
            if part.num_edges:
                assert (layout.partition_of(part.src) == p).all()

    def test_union_equals_input(self):
        graph = rmat_graph(8, seed=0, weighted=True)
        layout = PartitionLayout.even(graph.num_vertices, 4)
        parts = partition_edges(graph, layout)
        assert sum(p.num_edges for p in parts) == graph.num_edges
        merged = sorted(
            (s, d, w)
            for part in parts
            for s, d, w in zip(part.src, part.dst, part.weight)
        )
        original = sorted(zip(graph.src, graph.dst, graph.weight))
        assert merged == original

    def test_empty_partitions_allowed(self):
        edges = EdgeList(num_vertices=8, src=[0, 1], dst=[2, 3])
        layout = PartitionLayout.even(8, 4)
        parts = partition_edges(edges, layout)
        assert parts[0].num_edges == 2
        assert all(p.num_edges == 0 for p in parts[1:])


class TestPreprocess:
    def test_sharded_split_equals_serial(self):
        """Parallel pre-processing must produce the same partitions."""
        graph = rmat_graph(9, seed=2, weighted=True)
        serial = preprocess(graph, machines=4, input_shards=1)
        parallel = preprocess(graph, machines=4, input_shards=7)
        for a, b in zip(
            serial.partition_edge_lists, parallel.partition_edge_lists
        ):
            assert sorted(zip(a.src, a.dst, a.weight)) == sorted(
                zip(b.src, b.dst, b.weight)
            )

    def test_total_edges_preserved(self):
        graph = rmat_graph(9, seed=2)
        result = preprocess(graph, machines=3)
        assert result.total_edges() == graph.num_edges

    def test_partition_count_respects_memory(self):
        graph = rmat_graph(10, seed=0)  # 1024 vertices
        result = preprocess(
            graph, machines=2, vertex_state_bytes=16, memory_bytes=2048
        )
        layout = result.layout
        assert layout.num_partitions % 2 == 0
        for p in range(layout.num_partitions):
            assert layout.vertex_count(p) * 16 <= 2048

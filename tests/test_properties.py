"""Property-based tests (hypothesis) for core data structures and
invariants, plus randomized end-to-end algorithm checks."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batching import request_window, utilization, utilization_limit
from repro.core.runtime import rmat_partition_fractions
from repro.core.stealing import should_accept_steal
from repro.graph import EdgeList, to_undirected
from repro.graph.stats import in_degrees, out_degrees
from repro.partition import PartitionLayout, choose_partition_count, partition_edges
from repro.store.chunk import split_into_chunks

SUPPRESS = [HealthCheck.too_slow]


# -- strategies -------------------------------------------------------------


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=60, weighted=None):
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_vertices - 1),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_vertices - 1),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    if weighted is None:
        weighted = draw(st.booleans())
    weight = None
    if weighted:
        weight = draw(
            st.lists(
                st.floats(
                    min_value=0.001,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=num_edges,
                max_size=num_edges,
            )
        )
    return EdgeList(num_vertices=num_vertices, src=src, dst=dst, weight=weight)


# -- data structure properties ------------------------------------------------


class TestEdgeListProperties:
    @given(edges=edge_lists())
    @settings(max_examples=50, suppress_health_check=SUPPRESS)
    def test_degree_sums_equal_edge_count(self, edges):
        assert out_degrees(edges).sum() == edges.num_edges
        assert in_degrees(edges).sum() == edges.num_edges

    @given(edges=edge_lists(), seed=st.integers(0, 2**16))
    @settings(max_examples=30, suppress_health_check=SUPPRESS)
    def test_shuffle_preserves_multiset(self, edges, seed):
        shuffled = edges.shuffled(np.random.default_rng(seed))
        assert sorted(zip(shuffled.src, shuffled.dst)) == sorted(
            zip(edges.src, edges.dst)
        )


class TestUndirectedProperties:
    @given(edges=edge_lists())
    @settings(max_examples=50, suppress_health_check=SUPPRESS)
    def test_symmetry_no_loops_no_duplicates(self, edges):
        undirected = to_undirected(edges)
        pairs = list(zip(undirected.src, undirected.dst))
        pair_set = set(pairs)
        assert len(pairs) == len(pair_set), "no duplicate records"
        assert all(s != d for s, d in pairs), "no self loops"
        assert all((d, s) in pair_set for s, d in pairs), "symmetric"

    @given(edges=edge_lists(weighted=True))
    @settings(max_examples=50, suppress_health_check=SUPPRESS)
    def test_weight_symmetry_and_minimality(self, edges):
        undirected = to_undirected(edges)
        weight_of = {
            (s, d): w
            for s, d, w in zip(undirected.src, undirected.dst, undirected.weight)
        }
        for (s, d), w in weight_of.items():
            assert weight_of[(d, s)] == w
        # Each kept weight is the minimum over the original parallels.
        from collections import defaultdict

        minimum = defaultdict(lambda: np.inf)
        for s, d, w in zip(edges.src, edges.dst, edges.weight):
            if s != d:
                key = (min(s, d), max(s, d))
                minimum[key] = min(minimum[key], w)
        for (s, d), w in weight_of.items():
            assert w == pytest.approx(minimum[(min(s, d), max(s, d))])


class TestPartitionProperties:
    @given(edges=edge_lists(), partitions=st.integers(1, 8))
    @settings(max_examples=50, suppress_health_check=SUPPRESS)
    def test_split_is_a_partition_of_the_edges(self, edges, partitions):
        layout = PartitionLayout.even(edges.num_vertices, partitions)
        parts = partition_edges(edges, layout)
        assert sum(p.num_edges for p in parts) == edges.num_edges
        merged = sorted(
            (s, d) for part in parts for s, d in zip(part.src, part.dst)
        )
        assert merged == sorted(zip(edges.src, edges.dst))

    @given(
        num_vertices=st.integers(1, 10_000),
        machines=st.integers(1, 16),
        vertex_bytes=st.integers(1, 64),
        memory_multiplier=st.integers(1, 100),
    )
    @settings(max_examples=50, suppress_health_check=SUPPRESS)
    def test_partition_count_rule(
        self, num_vertices, machines, vertex_bytes, memory_multiplier
    ):
        memory = vertex_bytes * memory_multiplier
        count = choose_partition_count(num_vertices, machines, vertex_bytes, memory)
        assert count % machines == 0
        per_partition = -(-num_vertices // count)
        assert per_partition * vertex_bytes <= memory
        # Minimality: the next smaller multiple must not fit (unless
        # count is already the smallest multiple).
        if count > machines:
            smaller = count - machines
            assert -(-num_vertices // smaller) * vertex_bytes > memory

    @given(
        num_vertices=st.integers(1, 1000),
        partitions=st.integers(1, 20),
        vertex=st.integers(0, 999),
    )
    @settings(max_examples=50, suppress_health_check=SUPPRESS)
    def test_partition_of_matches_ranges(self, num_vertices, partitions, vertex):
        if vertex >= num_vertices:
            vertex = vertex % num_vertices
        layout = PartitionLayout.even(num_vertices, partitions)
        p = int(layout.partition_of(np.array([vertex]))[0])
        assert vertex in layout.vertex_range(p)


class TestChunkProperties:
    @given(total=st.integers(0, 10**5), chunk=st.integers(1, 10**4))
    @settings(max_examples=100, deadline=None)
    def test_split_covers_total_exactly(self, total, chunk):
        sizes = split_into_chunks(total, chunk)
        assert sum(sizes) == total
        assert all(0 < s <= chunk for s in sizes)
        # Only the last chunk may be short.
        assert all(s == chunk for s in sizes[:-1])


class TestBatchingProperties:
    @given(m=st.integers(1, 500), k=st.integers(1, 50))
    @settings(max_examples=100)
    def test_utilization_bounds(self, m, k):
        rho = utilization(m, k)
        assert 0.0 < rho <= 1.0
        assert rho >= utilization_limit(k) - 1e-12

    @given(m=st.integers(2, 100), k=st.integers(1, 20))
    @settings(max_examples=100)
    def test_utilization_monotone_in_k(self, m, k):
        assert utilization(m, k + 1) >= utilization(m, k)

    @given(
        k=st.integers(1, 20),
        rtt=st.floats(0, 1e-2, allow_nan=False),
        latency=st.floats(1e-7, 1e-2, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_window_at_least_k(self, k, rtt, latency):
        assert request_window(k, rtt, latency) >= k


class TestStealProperties:
    @given(
        vertex_bytes=st.integers(0, 10**9),
        remaining=st.integers(0, 10**12),
        workers=st.integers(1, 64),
    )
    @settings(max_examples=100)
    def test_monotone_in_workers(self, vertex_bytes, remaining, workers):
        """If rejected at H workers, rejected at H+1 too."""
        now = should_accept_steal(vertex_bytes, remaining, workers)
        later = should_accept_steal(vertex_bytes, remaining, workers + 1)
        if not now.accept:
            assert not later.accept

    @given(
        vertex_bytes=st.integers(0, 10**9),
        remaining=st.integers(0, 10**12),
        workers=st.integers(1, 64),
        shrink=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_monotone_in_remaining_data(
        self, vertex_bytes, remaining, workers, shrink
    ):
        """If rejected with D remaining, rejected with any smaller D."""
        now = should_accept_steal(vertex_bytes, remaining, workers)
        later = should_accept_steal(vertex_bytes, remaining * shrink, workers)
        if not now.accept:
            assert not later.accept


class TestRmatFractionProperties:
    @given(partitions=st.integers(1, 64))
    @settings(max_examples=50)
    def test_fractions_form_distribution(self, partitions):
        fractions = rmat_partition_fractions(partitions)
        assert len(fractions) == partitions
        assert fractions.sum() == pytest.approx(1.0)
        assert (fractions >= 0).all()
        # Skew decreases with partition index blocks (low ids dominate).
        if partitions >= 4:
            assert fractions[0] >= fractions[-1]


# -- randomized end-to-end checks ----------------------------------------------


class TestRandomizedAlgorithms:
    @given(edges=edge_lists(max_vertices=16, max_edges=40, weighted=True))
    @settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
    def test_wcc_matches_networkx_on_random_graphs(self, edges):
        import networkx as nx

        from repro.algorithms import WCC
        from repro.core.runtime import run_algorithm
        from tests.conftest import fast_config

        undirected = to_undirected(edges)
        result = run_algorithm(WCC(), undirected, fast_config(2))
        graph = nx.Graph()
        graph.add_nodes_from(range(edges.num_vertices))
        graph.add_edges_from(zip(undirected.src, undirected.dst))
        labels = result.values["label"]
        for component in nx.connected_components(graph):
            assert len({labels[v] for v in component}) == 1
            assert labels[min(component)] == min(component)

    @given(edges=edge_lists(max_vertices=14, max_edges=30, weighted=True))
    @settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
    def test_mis_invariants_on_random_graphs(self, edges):
        from repro.algorithms import MIS
        from repro.core.runtime import run_algorithm
        from tests.conftest import fast_config

        undirected = to_undirected(edges)
        result = run_algorithm(MIS(), undirected, fast_config(2))
        status = result.values["status"]
        in_set = status == 1
        assert (status != 0).all()
        assert not (in_set[undirected.src] & in_set[undirected.dst]).any()
        neighbour = np.zeros(undirected.num_vertices, dtype=bool)
        neighbour[undirected.dst[in_set[undirected.src]]] = True
        assert neighbour[status == 2].all()

    @given(edges=edge_lists(max_vertices=12, max_edges=30, weighted=True))
    @settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
    def test_mst_weight_matches_networkx(self, edges):
        import networkx as nx

        from repro.algorithms import run_mcst
        from tests.conftest import fast_config

        undirected = to_undirected(edges)
        result = run_mcst(undirected, fast_config(2))
        graph = nx.Graph()
        graph.add_nodes_from(range(edges.num_vertices))
        graph.add_weighted_edges_from(
            zip(undirected.src, undirected.dst, undirected.weight)
        )
        expected = sum(
            d["weight"] for *_pair, d in nx.minimum_spanning_edges(graph, data=True)
        )
        assert result.values["mst_weight"] == pytest.approx(expected)

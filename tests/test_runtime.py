"""Integration tests of the cluster runtime: determinism, storage
backends, checkpointing, placement policies, stealing and model mode."""

import math

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, WCC
from repro.core import ClusterConfig
from repro.core.runtime import ChaosCluster, GraphSpec, rmat_partition_fractions, run_algorithm
from repro.graph import rmat_graph, to_undirected
from repro.perf.profiles import fixed_profile
from repro.store import FileChunkStore

from tests.conftest import fast_config
from tests.references import reference_pagerank


class TestDeterminism:
    def test_identical_runs_identical_results(self, medium_graph):
        config = fast_config(4)
        first = run_algorithm(PageRank(iterations=3), medium_graph, config)
        second = run_algorithm(PageRank(iterations=3), medium_graph, config)
        assert first.runtime == second.runtime
        assert first.steals_accepted == second.steals_accepted
        assert np.array_equal(first.values["rank"], second.values["rank"])

    def test_different_seed_changes_timing_not_results(self, medium_graph):
        base = run_algorithm(
            PageRank(iterations=3), medium_graph, fast_config(4, seed=0)
        )
        other = run_algorithm(
            PageRank(iterations=3), medium_graph, fast_config(4, seed=99)
        )
        # Random placement differs -> timing differs ...
        assert base.runtime != other.runtime
        # ... but the computation is exact either way.
        assert np.allclose(base.values["rank"], other.values["rank"])


class TestFileBackend:
    def test_pagerank_through_real_files(self, tmp_path, small_graph):
        config = fast_config(2)
        cluster = ChaosCluster(
            config,
            backend_factory=lambda m: FileChunkStore(str(tmp_path / f"m{m}")),
        )
        result = cluster.run(PageRank(iterations=3), small_graph)
        expected = reference_pagerank(small_graph, iterations=3)
        assert np.allclose(result.values["rank"], expected)
        # Data really flowed through the filesystem.
        assert any((tmp_path / "m0").glob("*")) or any(
            (tmp_path / "m1").glob("*")
        )

    def test_file_and_memory_backends_agree(self, tmp_path, small_graph):
        config = fast_config(2)
        memory = ChaosCluster(config).run(PageRank(iterations=3), small_graph)
        files = ChaosCluster(
            config,
            backend_factory=lambda m: FileChunkStore(str(tmp_path / f"m{m}")),
        ).run(PageRank(iterations=3), small_graph)
        assert np.array_equal(memory.values["rank"], files.values["rank"])
        assert memory.runtime == pytest.approx(files.runtime)


class TestCheckpointing:
    def test_checkpoint_adds_bounded_overhead(self, medium_graph):
        base = run_algorithm(
            PageRank(iterations=3), medium_graph, fast_config(4)
        )
        checkpointed = run_algorithm(
            PageRank(iterations=3),
            medium_graph,
            fast_config(4, checkpointing=True),
        )
        assert checkpointed.checkpoints > 0
        assert checkpointed.runtime > base.runtime
        # Figure 13: overhead under 6% at scale; generous bound for the
        # small graphs of the test suite where vertex state is a larger
        # fraction of total data.
        assert checkpointed.runtime < 1.5 * base.runtime
        # Checkpointing shifts chunk arrival order, so float summation
        # order differs; results agree to numerical precision.
        assert np.allclose(base.values["rank"], checkpointed.values["rank"])

    def test_checkpoints_written_each_phase(self, small_graph):
        result = run_algorithm(
            PageRank(iterations=2),
            small_graph,
            fast_config(2, checkpointing=True),
        )
        # Two phases per iteration, every master partition checkpointed.
        partitions = 2 * 2  # machines x partitions_per_machine
        assert result.checkpoints == partitions * 2 * result.iterations


class TestPlacementPolicies:
    def test_centralized_directory_slower_at_scale(self, medium_graph):
        random_result = run_algorithm(
            PageRank(iterations=2), medium_graph, fast_config(8)
        )
        central_result = run_algorithm(
            PageRank(iterations=2),
            medium_graph,
            fast_config(8, placement="centralized"),
        )
        assert central_result.runtime > random_result.runtime
        assert np.allclose(
            random_result.values["rank"], central_result.values["rank"]
        )


class TestStealing:
    def test_no_stealing_when_alpha_zero(self, medium_graph):
        result = run_algorithm(
            PageRank(iterations=2), medium_graph, fast_config(4, steal_alpha=0.0)
        )
        assert result.steals_accepted == 0

    def test_stealing_occurs_on_skewed_graph(self):
        graph = rmat_graph(12, seed=3)  # raw RMAT: heavy partition skew
        result = run_algorithm(
            PageRank(iterations=3),
            graph,
            fast_config(8, partitions_per_machine=1, chunk_bytes=4096),
        )
        assert result.steals_accepted > 0

    def test_always_steal_accepts_more_than_default(self, medium_graph):
        """alpha = inf accepts every proposal for a still-open partition
        (rejections only come from already-closed partitions)."""
        default = run_algorithm(
            PageRank(iterations=2), medium_graph, fast_config(4)
        )
        always = run_algorithm(
            PageRank(iterations=2),
            medium_graph,
            fast_config(4, steal_alpha=math.inf),
        )
        assert always.steals_accepted > default.steals_accepted
        assert always.steals_accepted > 0

    def test_stealing_preserves_results(self):
        graph = to_undirected(rmat_graph(10, seed=3, weighted=True))
        no_steal = run_algorithm(
            BFS(root=0), graph, fast_config(4, steal_alpha=0.0)
        )
        stealing = run_algorithm(
            BFS(root=0), graph, fast_config(4, steal_alpha=math.inf)
        )
        assert np.array_equal(
            no_steal.values["distance"], stealing.values["distance"]
        )


class TestModelMode:
    def test_phantom_run_produces_timing(self):
        config = ClusterConfig(
            machines=4, chunk_bytes=1 << 20, partitions_per_machine=1
        )
        spec = GraphSpec.rmat(16)
        result = ChaosCluster(config).run_model(
            PageRank(iterations=3), spec, fixed_profile(3)
        )
        assert result.runtime > 0
        assert result.iterations == 3
        assert result.values is None  # phantom: no data

    def test_model_io_volume_tracks_profile(self):
        config = ClusterConfig(
            machines=2, chunk_bytes=1 << 20, partitions_per_machine=1
        )
        spec = GraphSpec.rmat(14)
        light = ChaosCluster(config).run_model(
            PageRank(iterations=2), spec, fixed_profile(2, update_factor=0.1)
        )
        heavy = ChaosCluster(config).run_model(
            PageRank(iterations=2), spec, fixed_profile(2, update_factor=1.0)
        )
        assert heavy.storage_bytes > light.storage_bytes
        assert heavy.runtime > light.runtime

    def test_rmat_fractions_sum_to_one_and_skew(self):
        fractions = rmat_partition_fractions(16)
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[0] == fractions.max()
        assert fractions[0] > 4 / 16  # far above uniform

    def test_uniform_spec_fractions(self):
        spec = GraphSpec(num_vertices=100, num_edges=1000, skew="uniform")
        fractions = spec.partition_fractions(5)
        assert np.allclose(fractions, 0.2)

    def test_spec_input_bytes(self):
        spec = GraphSpec.rmat(10)
        assert spec.input_bytes() == 16 * 1024 * 8  # compact, unweighted


class TestResultAccounting:
    def test_runtime_includes_preprocessing(self, small_graph):
        result = run_algorithm(PageRank(iterations=1), small_graph, fast_config(2))
        assert 0 < result.preprocessing_seconds < result.runtime

    def test_storage_bytes_cover_edge_passes(self, small_graph):
        iterations = 3
        result = run_algorithm(
            PageRank(iterations=iterations), small_graph, fast_config(2)
        )
        # At minimum: preprocessing (2x input) plus one edge pass per
        # iteration plus update write+read per iteration.
        input_bytes = small_graph.storage_bytes()
        assert result.storage_bytes > (2 + iterations) * input_bytes

    def test_breakdown_total_close_to_engine_time(self, small_graph):
        config = fast_config(2)
        result = run_algorithm(PageRank(iterations=2), small_graph, config)
        for breakdown in result.breakdowns:
            # Each engine's attributed time is within the overall runtime.
            assert breakdown.total() <= result.runtime + 1e-9

    def test_network_bytes_zero_on_single_machine(self, small_graph):
        result = run_algorithm(PageRank(iterations=1), small_graph, fast_config(1))
        assert result.network_bytes == 0

    def test_network_traffic_present_on_cluster(self, small_graph):
        result = run_algorithm(PageRank(iterations=1), small_graph, fast_config(4))
        assert result.network_bytes > 0

    def test_iteration_stats_recorded(self, small_graph):
        result = run_algorithm(PageRank(iterations=3), small_graph, fast_config(2))
        assert len(result.iteration_stats) == 3
        for stats in result.iteration_stats:
            assert stats.edges_streamed == small_graph.num_edges
            assert stats.updates_produced == small_graph.num_edges


class TestPartitionRule:
    def test_partition_count_from_memory_budget(self, small_graph):
        algorithm = PageRank(iterations=1)
        # Budget for ~1/3rd of the vertices per partition, 2 machines.
        budget = small_graph.num_vertices // 3 * algorithm.vertex_state_bytes()
        config = ClusterConfig(
            machines=2,
            memory_bytes=budget,
            chunk_bytes=2048,
        )
        result = ChaosCluster(config).run(algorithm, small_graph)
        expected = reference_pagerank(small_graph, iterations=1)
        assert np.allclose(result.values["rank"], expected)

    def test_quiescent_algorithm_skips_final_gather(self):
        graph = to_undirected(rmat_graph(8, seed=2, weighted=True))
        result = run_algorithm(WCC(), graph, fast_config(2))
        final = result.iteration_stats[-1]
        assert final.updates_produced == 0

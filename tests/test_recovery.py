"""Tests for checkpoint resume and failure recovery (Section 6.6)."""

import numpy as np
import pytest

from repro.algorithms import BFS, BeliefPropagation, KCore, PageRank, WCC
from repro.core.recovery import (
    RecoveryReport,
    _BoundedIterations,
    run_with_failure,
)
from repro.core.runtime import ChaosCluster, run_algorithm
from repro.graph import rmat_graph, to_undirected

from tests.conftest import fast_config
from tests.references import reference_pagerank


class TestResumeFromValues:
    def test_split_pagerank_equals_straight_run(self, small_graph):
        """3 iterations, then resume for 2 == 5 straight iterations."""
        config = fast_config(2)
        first = ChaosCluster(config).run(PageRank(iterations=3), small_graph)
        checkpoint = {k: np.copy(v) for k, v in first.values.items()}
        second = ChaosCluster(config).run(
            PageRank(iterations=2), small_graph, initial_values=checkpoint
        )
        straight = reference_pagerank(small_graph, iterations=5)
        assert np.allclose(second.values["rank"], straight)

    def test_resume_quiescent_algorithm_finishes_quickly(self):
        """Resuming WCC from its own fixpoint converges immediately."""
        graph = to_undirected(rmat_graph(8, seed=3, weighted=True))
        config = fast_config(2)
        done = ChaosCluster(config).run(WCC(), graph)
        resumed = ChaosCluster(config).run(
            WCC(), graph, initial_values=done.values
        )
        assert np.array_equal(resumed.values["label"], done.values["label"])
        assert resumed.iterations <= 2

    def test_missing_state_array_rejected(self, small_graph):
        config = fast_config(2)
        with pytest.raises(ValueError, match="missing state array"):
            ChaosCluster(config).run(
                PageRank(iterations=1),
                small_graph,
                initial_values={"rank": np.ones(small_graph.num_vertices)},
            )

    def test_wrong_shape_rejected(self, small_graph):
        config = fast_config(2)
        with pytest.raises(ValueError, match="shape"):
            ChaosCluster(config).run(
                PageRank(iterations=1),
                small_graph,
                initial_values={"rank": np.ones(3), "degree": np.ones(3)},
            )


class TestStartIterationResume:
    """Checkpoint-resume with ``start_iteration`` on iteration-stamped
    algorithms: the resumed run must continue the iteration numbering,
    so its values equal the undisturbed run's — not just for
    PageRank-style algorithms whose update ignores the iteration."""

    def test_bp_split_equals_straight_run(self, small_graph):
        config = fast_config(2)
        straight = ChaosCluster(config).run(
            BeliefPropagation(iterations=4), small_graph
        )
        first = ChaosCluster(config).run(
            BeliefPropagation(iterations=2), small_graph
        )
        resumed = ChaosCluster(config).run(
            BeliefPropagation(iterations=4),
            small_graph,
            initial_values={k: np.copy(v) for k, v in first.values.items()},
            start_iteration=2,
        )
        for name in straight.values:
            assert np.array_equal(resumed.values[name], straight.values[name])

    def test_kcore_split_equals_straight_run(self, small_undirected_graph):
        config = fast_config(2)
        straight = ChaosCluster(config).run(KCore(2), small_undirected_graph)
        bounded = _BoundedIterations(KCore(2), 2)
        first = ChaosCluster(config).run(bounded, small_undirected_graph)
        resumed = ChaosCluster(config).run(
            KCore(2),
            small_undirected_graph,
            initial_values={k: np.copy(v) for k, v in first.values.items()},
            start_iteration=2,
        )
        for name in straight.values:
            assert np.array_equal(resumed.values[name], straight.values[name])

    def test_bfs_resume_preserves_distance_stamps(self):
        """BFS stamps distances with the iteration number, so a resume
        that restarted the numbering would corrupt every distance
        discovered after the checkpoint."""
        graph = to_undirected(rmat_graph(8, seed=3, weighted=True))
        config = fast_config(2)
        straight = ChaosCluster(config).run(BFS(root=0), graph)
        bounded = _BoundedIterations(BFS(root=0), 2)
        first = ChaosCluster(config).run(bounded, graph)
        resumed = ChaosCluster(config).run(
            BFS(root=0),
            graph,
            initial_values={k: np.copy(v) for k, v in first.values.items()},
            start_iteration=2,
        )
        assert np.array_equal(
            resumed.values["distance"], straight.values["distance"]
        )


class TestBoundedIterationsForwarding:
    def test_forwards_unknown_hooks_to_inner(self):
        inner = PageRank(iterations=5)
        bounded = _BoundedIterations(inner, 2)
        # Delegation is generic: any hook the engine probes for reaches
        # the wrapped algorithm without a hand-written stub.
        assert bounded.scatter == inner.scatter
        assert bounded.combine_updates == inner.combine_updates
        assert bounded.max_iterations == 2
        assert bounded.name == inner.name
        with pytest.raises(AttributeError):
            bounded.not_a_hook

    def test_finished_stops_at_bound(self, small_graph):
        config = fast_config(2)
        result = ChaosCluster(config).run(
            _BoundedIterations(PageRank(iterations=5), 2), small_graph
        )
        assert result.iterations == 2


class TestRunWithFailure:
    def test_recovered_result_matches_baseline(self, small_graph):
        config = fast_config(2, checkpointing=True)
        report = run_with_failure(
            lambda: PageRank(iterations=4),
            small_graph,
            config,
            fail_after_iterations=2,
        )
        expected = reference_pagerank(small_graph, iterations=4)
        assert np.allclose(report.result.values["rank"], expected)

    def test_recovery_for_quiescent_algorithm(self):
        graph = to_undirected(rmat_graph(8, seed=6, weighted=True))
        config = fast_config(2, checkpointing=True)
        report = run_with_failure(
            lambda: BFS(root=0), graph, config, fail_after_iterations=1
        )
        baseline = run_algorithm(BFS(root=0), graph, config)
        assert np.array_equal(
            report.result.values["distance"], baseline.values["distance"]
        )

    def test_timeline_decomposition(self, small_graph):
        config = fast_config(2, checkpointing=True)
        report = run_with_failure(
            lambda: PageRank(iterations=4),
            small_graph,
            config,
            fail_after_iterations=2,
        )
        assert report.failed_iteration == 2
        assert report.time_before_failure > 0
        assert report.restore_seconds > 0
        assert report.time_after_restore > 0
        assert report.total_runtime == pytest.approx(
            report.time_before_failure
            + report.restore_seconds
            + report.time_after_restore
        )
        # Recovering costs extra time, but not a full re-run.
        assert report.total_runtime > report.baseline_runtime
        assert report.total_runtime < 2.5 * report.baseline_runtime
        assert "failed at iteration 2" in report.summary()

    def test_restore_cost_includes_network(self, small_graph):
        """Restore reads remote checkpoint replicas, so its cost must
        include the network stage, not just raw device bandwidth: on a
        slow network the transfer is ingress-bound."""
        fast_net = fast_config(4, checkpointing=True)
        slow_net = fast_net.with_(
            network=fast_net.network.__class__(
                bandwidth=fast_net.network.bandwidth / 1000,
                latency=fast_net.network.latency,
                name="slow",
            )
        )
        factory = lambda: PageRank(iterations=4)
        fast_report = run_with_failure(
            factory, small_graph, fast_net, fail_after_iterations=2
        )
        slow_report = run_with_failure(
            factory, small_graph, slow_net, fail_after_iterations=2
        )
        # Latency floor: at least one request round trip.
        assert fast_report.restore_seconds >= fast_net.network.round_trip()
        # A 1000x slower network must slow the restore.
        assert slow_report.restore_seconds > 2 * fast_report.restore_seconds

    def test_report_extended_fields(self, small_graph):
        config = fast_config(2, checkpointing=True)
        report = run_with_failure(
            lambda: PageRank(iterations=4),
            small_graph,
            config,
            fail_after_iterations=2,
        )
        assert report.values_match_baseline is True
        assert report.useful_seconds > 0
        assert report.lost_seconds > 0
        # The analytic path injects no live faults.
        assert report.faults == ()
        assert report.timeline is None

    def test_requires_checkpointing(self, small_graph):
        with pytest.raises(ValueError, match="checkpointing"):
            run_with_failure(
                lambda: PageRank(iterations=2),
                small_graph,
                fast_config(2),
                fail_after_iterations=1,
            )

    def test_invalid_failure_point(self, small_graph):
        with pytest.raises(ValueError, match="fail_after_iterations"):
            run_with_failure(
                lambda: PageRank(iterations=2),
                small_graph,
                fast_config(2, checkpointing=True),
                fail_after_iterations=0,
            )

    def test_failure_past_convergence_clamped(self):
        """Failing 'after iteration 50' of a 3-iteration job clamps to
        the job's actual length."""
        graph = to_undirected(rmat_graph(7, seed=2, weighted=True))
        config = fast_config(2, checkpointing=True)
        report = run_with_failure(
            lambda: WCC(), graph, config, fail_after_iterations=50
        )
        baseline = run_algorithm(WCC(), graph, config)
        assert report.failed_iteration <= baseline.iterations
        assert np.array_equal(
            report.result.values["label"], baseline.values["label"]
        )

"""Unit tests for the job coordinator (barrier decisions, counters)."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.algorithms.traversal import WCC
from repro.core.gas import GraphContext
from repro.core.job import JobCoordinator
from repro.core.workload import DataWorkload, UpdateBatch
from repro.graph import rmat_graph
from repro.graph.stats import out_degrees
from repro.partition.streaming import PartitionLayout
from repro.store.chunk import Chunk, ChunkKind
from repro.store.memstore import MemoryChunkStore


class _StubStore:
    """Storage-engine stand-in recording cursor resets."""

    def __init__(self):
        self.resets = []

    def reset_cursors(self, kind):
        self.resets.append(kind)


def _coordinator(algorithm=None):
    graph = rmat_graph(6, seed=1)
    layout = PartitionLayout.even(graph.num_vertices, 2)
    algorithm = algorithm or PageRank(iterations=2)
    ctx = GraphContext(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        weighted=False,
        out_degrees=out_degrees(graph),
    )
    workload = DataWorkload(algorithm, layout, ctx)
    stores = [_StubStore(), _StubStore()]
    return JobCoordinator(workload, stores), stores


class TestBeginScatter:
    def test_resets_edge_cursors_once_per_iteration(self):
        job, stores = _coordinator()
        job.begin_scatter()
        job.begin_scatter()  # second engine: no double reset
        assert stores[0].resets == [ChunkKind.EDGES]
        assert stores[1].resets == [ChunkKind.EDGES]


class TestCounters:
    def test_note_scatter_accumulates(self):
        job, _ = _coordinator()
        job.begin_scatter()
        batch = UpdateBatch(partition=0, count=10, nbytes=80, payload=None)
        job.note_scatter(100, [batch, batch])
        stats = job.current_stats
        assert stats.edges_streamed == 100
        assert stats.updates_produced == 20
        assert stats.update_bytes == 160

    def test_note_apply(self):
        job, _ = _coordinator()
        job.note_apply(5)
        job.note_apply(7)
        assert job.current_stats.vertices_changed == 12


class TestDecisions:
    def test_fixed_iterations_advance_then_finish(self):
        job, _ = _coordinator(PageRank(iterations=2))
        job.begin_scatter()
        job.note_scatter(10, [])
        assert not job.decide_after_scatter(1)
        assert not job.decide_after_gather(2)
        assert job.iteration == 1
        job.begin_scatter()
        assert not job.decide_after_scatter(3)
        assert job.decide_after_gather(4)
        assert job.done

    def test_decision_cached_per_generation(self):
        """All engines reading the same barrier generation get one
        consistent decision (computed once)."""
        job, _ = _coordinator(PageRank(iterations=1))
        job.begin_scatter()
        first = job.decide_after_gather(2)
        # A second engine asking again must not re-advance the iteration.
        second = job.decide_after_gather(2)
        assert first == second
        assert job.iteration == 0

    def test_quiescence_ends_after_scatter(self):
        job, _ = _coordinator(WCC())
        job.begin_scatter()
        # No updates produced -> quiescent algorithms stop right away.
        assert job.decide_after_scatter(1)
        assert job.done

    def test_quiescence_ignored_for_fixed_iteration_algorithms(self):
        job, _ = _coordinator(PageRank(iterations=1))
        job.begin_scatter()
        assert not job.decide_after_scatter(1)

    def test_completed_iterations(self):
        job, _ = _coordinator(PageRank(iterations=3))
        assert job.completed_iterations() == 1
        job.decide_after_gather(2)
        assert job.completed_iterations() == 2

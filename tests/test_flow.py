"""Tests for the interprocedural flow layer (``check --deep``).

Covers the project index / call graph builders, the CFG helpers, the
taint framework, and rules CHX008-CHX012 — each against a small fixture
package with *planted* violations, asserting that exactly the planted
sites are reported and that inline suppressions are honored.  Also
self-hosts the deep check on ``src/`` (must be clean) and verifies the
call-graph resolution floor.
"""

import ast
import json
import textwrap

from repro.analysis.flow import (
    CFG,
    CallGraph,
    DeepEngine,
    ProjectIndex,
    collect_focus_kinds,
    collect_race_candidates,
    definitely_terminates,
    yield_lines,
)
from repro.analysis.baseline import load_baseline, split_new
from repro.analysis.flow.rules import DEEP_RULE_TABLE
from repro.analysis.sanitizer import Sanitizer
from repro.cli import main


def build_pkg(tmp_path, files):
    """Write a fixture package tree; ``files`` maps rel-path -> source."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def deep_check(path, rules=None):
    engine = DeepEngine()
    if rules is not None:
        engine.rules = [r for r in engine.rules if r.rule_id in rules]
    return engine.check_paths([str(path)])


def findings_of(result, rule_id):
    return [f for f in result.result.findings if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# project index + call graph (satellite: builder tests)
# ---------------------------------------------------------------------------


class TestCallGraph:
    def _graph(self, tmp_path, files):
        build_pkg(tmp_path, files)
        index = ProjectIndex.build([str(tmp_path)])
        return index, CallGraph.build(index)

    def _sites(self, graph, caller):
        return {
            (s.kind, target)
            for s in graph.call_sites_in(caller)
            for target in (s.targets or [None])
        }

    def test_module_names_climb_init_ancestors(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "def f():\n    return 1\n",
                "loose.py": "def g():\n    return 2\n",
            },
        )
        index = ProjectIndex.build([str(tmp_path)])
        assert "pkg.sub.mod" in index.modules
        assert "loose" in index.modules
        assert "pkg.sub.mod.f" in index.functions

    def test_direct_call_resolution(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def helper():\n    return 1\n",
                "pkg/b.py": (
                    "from pkg.a import helper\n"
                    "def caller():\n    return helper()\n"
                ),
            },
        )
        assert ("direct", "pkg.a.helper") in self._sites(graph, "pkg.b.caller")

    def test_recursion_terminates_and_self_edges(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/r.py": (
                    "def fact(n):\n"
                    "    if n <= 1:\n"
                    "        return 1\n"
                    "    return n * fact(n - 1)\n"
                ),
            },
        )
        assert ("direct", "pkg.r.fact") in self._sites(graph, "pkg.r.fact")
        # Reachability must not loop forever on the cycle.
        assert "pkg.r.fact" in graph.reachable("pkg.r.fact")

    def test_decorated_function_still_resolves(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/d.py": (
                    "def deco(f):\n    return f\n"
                    "@deco\n"
                    "def task():\n    return 1\n"
                    "def caller():\n    return task()\n"
                ),
            },
        )
        assert "pkg.d.task" in index.functions
        assert ("direct", "pkg.d.task") in self._sites(graph, "pkg.d.caller")

    def test_self_method_resolution(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/c.py": (
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
            },
        )
        assert ("self-method", "pkg.c.Engine.step") in self._sites(
            graph, "pkg.c.Engine.run"
        )

    def test_init_reexport_resolution(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.impl import helper\n",
                "pkg/impl.py": "def helper():\n    return 1\n",
                "user.py": (
                    "import pkg\n"
                    "def go():\n    return pkg.helper()\n"
                ),
            },
        )
        assert ("direct", "pkg.impl.helper") in self._sites(graph, "user.go")

    def test_by_name_overapproximation(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "class A:\n"
                    "    def flush(self):\n        return 1\n"
                    "def drain(obj):\n"
                    "    return obj.flush()\n"
                ),
            },
        )
        sites = self._sites(graph, "pkg.m.drain")
        assert ("by-name", "pkg.m.A.flush") in sites

    def test_list_method_calls_are_builtin_not_by_name(self, tmp_path):
        index, graph = self._graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "class Buffer:\n"
                    "    def append(self, item):\n        return item\n"
                    "def collect(values):\n"
                    "    out = []\n"
                    "    for v in values:\n"
                    "        out.append(v)\n"
                    "    return out\n"
                ),
            },
        )
        kinds = {
            s.kind for s in graph.call_sites_in("pkg.m.collect")
        }
        assert kinds == {"builtin"}

    def test_self_host_resolution_floor(self):
        """>= 95% of project-looking call sites in src/ must resolve."""
        index = ProjectIndex.build(["src"])
        graph = CallGraph.build(index)
        stats = graph.resolution_stats()
        assert stats["project_resolution_fraction"] >= 0.95


# ---------------------------------------------------------------------------
# CFG helpers
# ---------------------------------------------------------------------------


class TestCFG:
    def _func(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return tree.body[0]

    def test_definitely_terminates_return(self):
        func = self._func("def f():\n    return 1\n")
        assert definitely_terminates(func.body)

    def test_definitely_terminates_if_both_branches(self):
        func = self._func(
            "def f(x):\n"
            "    if x:\n        return 1\n"
            "    else:\n        raise ValueError\n"
        )
        assert definitely_terminates(func.body)

    def test_open_path_does_not_terminate(self):
        func = self._func(
            "def f(x):\n"
            "    if x:\n        return 1\n"
            "    x += 1\n"
        )
        assert not definitely_terminates(func.body)

    def test_yield_lines(self):
        func = self._func(
            "def f(env):\n"
            "    yield env.timeout(1)\n"
            "    x = 2\n"
            "    yield env.timeout(x)\n"
        )
        assert yield_lines(func) == [2, 4]

    def test_cfg_builds_for_try_and_loops(self):
        func = self._func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n            g(x)\n"
            "        finally:\n            h(x)\n"
            "    while True:\n        break\n"
            "    return 0\n"
        )
        cfg = CFG.build(func)
        assert cfg.reachable_blocks()
        assert any(
            isinstance(s, ast.Return) for s in cfg.statements_in_order()
        )


# ---------------------------------------------------------------------------
# CHX008: interprocedural taint
# ---------------------------------------------------------------------------


CHX008_FIXTURE = {
    "proj/__init__.py": "",
    "proj/helpers.py": (
        "import time\n"
        "def host_seed():\n"
        "    return time.time()\n"
        "def relay(value):\n"
        "    return value\n"
    ),
    "proj/sim/__init__.py": "",
    "proj/sim/engine.py": (
        "def configure(seed):\n"
        "    return seed\n"
    ),
    "proj/driver.py": (
        "from proj.helpers import host_seed, relay\n"
        "from proj.sim.engine import configure\n"
        "def direct_launder():\n"
        "    configure(host_seed())\n"
        "def double_launder():\n"
        "    configure(relay(host_seed()))\n"
        "def clean():\n"
        "    configure(42)\n"
    ),
}


class TestCHX008:
    def test_exactly_the_planted_flows_report(self, tmp_path):
        build_pkg(tmp_path, CHX008_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX008"})
        found = findings_of(result, "CHX008")
        lines = sorted(f.line for f in found)
        assert lines == [4, 6]  # direct_launder + double_launder, not clean
        assert all("wall-clock" in f.message for f in found)
        assert all("configure" in f.message for f in found)

    def test_inline_suppression_honored(self, tmp_path):
        files = dict(CHX008_FIXTURE)
        files["proj/driver.py"] = files["proj/driver.py"].replace(
            "    configure(host_seed())",
            "    configure(host_seed())  # chaos: ignore[CHX008] fixture",
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX008"})
        assert sorted(f.line for f in findings_of(result, "CHX008")) == [6]
        assert [f.line for f in result.result.suppressed] == [4]

    def test_seeded_rng_factory_is_clean(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "proj/__init__.py": "",
                "proj/sim/__init__.py": "",
                "proj/sim/engine.py": "def configure(seed):\n    return seed\n",
                "proj/driver.py": (
                    "import random\n"
                    "from proj.sim.engine import configure\n"
                    "def seeded(config_seed):\n"
                    "    rng = random.Random(config_seed)\n"
                    "    configure(rng)\n"
                    "def unseeded():\n"
                    "    rng = random.Random()\n"
                    "    configure(rng)\n"
                ),
            },
        )
        result = deep_check(tmp_path, rules={"CHX008"})
        assert sorted(f.line for f in findings_of(result, "CHX008")) == [8]


# ---------------------------------------------------------------------------
# CHX009: grant pairing across yields
# ---------------------------------------------------------------------------


CHX009_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/proc.py": (
        "def canonical(env, sem):\n"
        "    yield sem.acquire()\n"
        "    sem.release()\n"
        "def pending_then_yield(env, sem):\n"
        "    evt = sem.acquire()\n"
        "    yield evt\n"
        "    sem.release()\n"
        "def risky(env, sem):\n"
        "    yield sem.acquire()\n"
        "    yield env.timeout(1)\n"
        "    sem.release()\n"
        "def safe(env, sem):\n"
        "    yield sem.acquire()\n"
        "    try:\n"
        "        yield env.timeout(1)\n"
        "    finally:\n"
        "        sem.release()\n"
        "def branch_leak(env, sem, flag):\n"
        "    yield sem.acquire()\n"
        "    if flag:\n"
        "        sem.release()\n"
        "def transfer(env, sem):\n"
        "    evt = sem.acquire()\n"
        "    return evt\n"
    ),
}


class TestCHX009:
    def test_exactly_the_planted_leaks_report(self, tmp_path):
        build_pkg(tmp_path, CHX009_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX009"})
        found = findings_of(result, "CHX009")
        lines = sorted(f.line for f in found)
        # line 10: risky's second yield while the grant is held;
        # line 19: branch_leak's acquire, unreleased on the flag=False path.
        assert lines == [10, 19]
        by_line = {f.line: f.message for f in found}
        assert "held" in by_line[10] and "Interrupt" in by_line[10]
        assert "released on every path" in by_line[19]

    def test_interprocedural_split_pair(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "proj/__init__.py": "",
                "proj/sim/__init__.py": "",
                "proj/sim/pool.py": (
                    "def reserve(sem):\n"
                    "    sem.acquire()\n"
                    "def free(sem):\n"
                    "    sem.release()\n"
                    "def leaky(env, sem):\n"
                    "    reserve(sem)\n"
                    "    yield env.timeout(1)\n"
                    "    sem.release()\n"
                    "def protected(env, sem):\n"
                    "    reserve(sem)\n"
                    "    try:\n"
                    "        yield env.timeout(1)\n"
                    "    finally:\n"
                    "        free(sem)\n"
                ),
            },
        )
        result = deep_check(tmp_path, rules={"CHX009"})
        assert sorted(f.line for f in findings_of(result, "CHX009")) == [7]

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX009_FIXTURE)
        files["proj/sim/proc.py"] = files["proj/sim/proc.py"].replace(
            "    yield env.timeout(1)\n    sem.release()\n",
            "    yield env.timeout(1)  # chaos: ignore[CHX009] fixture\n"
            "    sem.release()\n",
            1,
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX009"})
        assert sorted(f.line for f in findings_of(result, "CHX009")) == [19]


# ---------------------------------------------------------------------------
# CHX010: barrier pairing
# ---------------------------------------------------------------------------


CHX010_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/eng.py": (
        "class Engine:\n"
        "    def __init__(self, barrier):\n"
        "        self.barrier = barrier\n"
        "    def lopsided(self, flag):\n"
        "        if flag:\n"
        "            self.barrier.wait()\n"
        "        return 1\n"
        "    def guarded(self, flag):\n"
        "        if not flag:\n"
        "            return None\n"
        "        self.barrier.wait()\n"
        "        return 1\n"
        "    def sync_point(self):\n"
        "        self.barrier.wait()\n"
        "    def transitive(self, flag):\n"
        "        if flag:\n"
        "            self.sync_point()\n"
        "        else:\n"
        "            self.barrier.wait()\n"
    ),
}


class TestCHX010:
    def test_exactly_the_planted_divergence_reports(self, tmp_path):
        build_pkg(tmp_path, CHX010_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX010"})
        found = findings_of(result, "CHX010")
        assert [f.line for f in found] == [5]  # lopsided's if only
        assert "barrier" in found[0].message
        assert "lopsided" in found[0].message

    def test_outside_sim_packages_not_checked(self, tmp_path):
        files = {
            "proj/__init__.py": "",
            "proj/tools/__init__.py": "",
            "proj/tools/eng.py": CHX010_FIXTURE["proj/sim/eng.py"],
        }
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX010"})
        assert findings_of(result, "CHX010") == []

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX010_FIXTURE)
        files["proj/sim/eng.py"] = files["proj/sim/eng.py"].replace(
            "        if flag:\n            self.barrier.wait()\n",
            "        if flag:  # chaos: ignore[CHX010] fixture\n"
            "            self.barrier.wait()\n",
            1,
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX010"})
        assert findings_of(result, "CHX010") == []
        assert [f.line for f in result.result.suppressed] == [5]


# ---------------------------------------------------------------------------
# CHX011: cross-module generator hygiene
# ---------------------------------------------------------------------------


CHX011_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/workers.py": (
        "def pump(env):\n"
        "    yield env.timeout(1)\n"
    ),
    "proj/sim/driver.py": (
        "from proj.sim.workers import pump\n"
        "def launch(env, sim):\n"
        "    pump(env)\n"
        "def scheduled(env, sim):\n"
        "    sim.process(pump(env))\n"
        "def delegated(env, sim):\n"
        "    yield from pump(env)\n"
    ),
}


class TestCHX011:
    def test_exactly_the_planted_discard_reports(self, tmp_path):
        build_pkg(tmp_path, CHX011_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX011"})
        found = findings_of(result, "CHX011")
        assert [f.line for f in found] == [3]
        assert "proj.sim.workers.pump" in found[0].message

    def test_same_module_left_to_chx004(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "proj/__init__.py": "",
                "proj/sim/__init__.py": "",
                "proj/sim/one.py": (
                    "def pump(env):\n"
                    "    yield env.timeout(1)\n"
                    "def launch(env):\n"
                    "    pump(env)\n"
                ),
            },
        )
        result = deep_check(tmp_path, rules={"CHX011"})
        assert findings_of(result, "CHX011") == []


# ---------------------------------------------------------------------------
# CHX012: static race candidates
# ---------------------------------------------------------------------------


CHX012_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/eng.py": (
        "class Engine:\n"
        "    def __init__(self, san, machine):\n"
        "        self._san = san\n"
        "        self.machine = machine\n"
        "    def ok(self, v):\n"
        "        self._san.access(('vertex', v), self.machine, write=True,\n"
        "                         label='compute.write')\n"
        "    def planted(self, v):\n"
        "        self._san.access(('vertex', v), 1, write=True,\n"
        "                         label='injected.write')\n"
        "    def read_only(self, v):\n"
        "        self._san.access(('chunks', v), 0, write=False,\n"
        "                         label='scan.read')\n"
    ),
}


class TestCHX012:
    def test_literal_machine_write_is_the_only_finding(self, tmp_path):
        build_pkg(tmp_path, CHX012_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX012"})
        found = findings_of(result, "CHX012")
        assert [f.line for f in found] == [9]
        assert "machine 1" in found[0].message

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX012_FIXTURE)
        files["proj/sim/eng.py"] = files["proj/sim/eng.py"].replace(
            "        self._san.access(('vertex', v), 1, write=True,\n",
            "        self._san.access(('vertex', v), 1, write=True,"
            "  # chaos: ignore[CHX012] fixture\n",
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX012"})
        assert findings_of(result, "CHX012") == []
        assert [f.line for f in result.result.suppressed] == [9]

    def test_candidate_table_covers_all_access_sites(self, tmp_path):
        build_pkg(tmp_path, CHX012_FIXTURE)
        index = ProjectIndex.build([str(tmp_path)])
        candidates = collect_race_candidates(index)
        assert len(candidates) == 3
        kinds = {c.kind for c in candidates}
        assert kinds == {"vertex", "chunks"}
        planted = [c for c in candidates if c.machine_literal == 1]
        assert len(planted) == 1
        assert planted[0].write is True
        assert planted[0].label == "injected.write"

    def test_planted_site_in_real_sanitizer_test_is_a_candidate(self):
        """The dynamic sanitizer test's monkeypatched injected write (a
        nested def) must be visible to the static pass."""
        index = ProjectIndex.build(["tests/test_sanitizer.py"])
        candidates = collect_race_candidates(index)
        planted = [
            c
            for c in candidates
            if c.write is True
            and c.machine_literal is not None
            and c.label == "injected.write"
        ]
        assert planted, "planted race site not found statically"
        assert planted[0].kind == "vertex"

    def test_focus_kinds_from_src_include_sanitized_state(self):
        kinds = collect_focus_kinds(["src"])
        assert "vertex" in kinds
        assert "accum" in kinds


# ---------------------------------------------------------------------------
# CHX018: unseeded RNG in fault-injection / fuzzing code
# ---------------------------------------------------------------------------


CHX018_FIXTURE = {
    "proj/__init__.py": "",
    "proj/faults/__init__.py": "",
    "proj/faults/fuzzer.py": (
        "import random as rnd\n"
        "\n"
        "def good(seed):\n"
        "    return rnd.Random(seed * 7 + 1)\n"
        "\n"
        "def planted_unseeded():\n"
        "    return rnd.Random()\n"
        "\n"
        "def planted_global_draw():\n"
        "    return rnd.random()\n"
    ),
    "proj/graph/__init__.py": "",
    "proj/graph/gen.py": (
        "import random\n"
        "\n"
        "def out_of_scope():\n"
        "    return random.Random()\n"
    ),
}


class TestCHX018:
    def test_flags_only_faults_and_fuzz_modules(self, tmp_path):
        build_pkg(tmp_path, CHX018_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX018"})
        found = findings_of(result, "CHX018")
        assert [f.line for f in found] == [7, 10]
        assert all("faults/fuzzer.py" in f.file for f in found)
        assert "without a seed" in found[0].message
        assert "interpreter-global" in found[1].message

    def test_seeded_construction_is_clean(self, tmp_path):
        files = {
            "proj/__init__.py": "",
            "proj/faults/__init__.py": "",
            "proj/faults/sched.py": (
                "import random\n"
                "\n"
                "def make(seed):\n"
                "    return random.Random(seed)\n"
            ),
        }
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX018"})
        assert findings_of(result, "CHX018") == []

    def test_numpy_default_rng_needs_a_seed(self, tmp_path):
        files = {
            "proj/__init__.py": "",
            "proj/fuzz.py": (
                "import numpy as np\n"
                "\n"
                "def planted():\n"
                "    return np.random.default_rng()\n"
                "\n"
                "def good(seed):\n"
                "    return np.random.default_rng(seed)\n"
            ),
        }
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX018"})
        found = findings_of(result, "CHX018")
        assert [f.line for f in found] == [4]

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX018_FIXTURE)
        files["proj/faults/fuzzer.py"] = files["proj/faults/fuzzer.py"].replace(
            "    return rnd.Random()\n",
            "    return rnd.Random()  # chaos: ignore[CHX018] fixture\n",
        ).replace(
            "    return rnd.random()\n",
            "    return rnd.random()  # chaos: ignore[CHX018] fixture\n",
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX018"})
        assert findings_of(result, "CHX018") == []
        assert [f.line for f in result.result.suppressed] == [7, 10]


# ---------------------------------------------------------------------------
# sanitizer focus (CHX012 -> run --sanitize --focus-from-check)
# ---------------------------------------------------------------------------


class TestSanitizerFocus:
    def _racy_pair(self, san):
        san.access(("vertex", 0), 0, write=True, label="m0.write")
        san.access(("vertex", 0), 1, write=True, label="m1.write")

    def test_unfocused_detects_the_race(self):
        san = Sanitizer()
        san.bind_run(2)
        self._racy_pair(san)
        assert len(san.races) == 1

    def test_focus_on_other_kind_ignores_accesses(self):
        san = Sanitizer()
        san.bind_run(2)
        san.set_focus(["steal"])
        self._racy_pair(san)
        assert san.races == []
        assert san.accesses == 0

    def test_focus_on_matching_kind_still_detects(self):
        san = Sanitizer()
        san.bind_run(2)
        san.set_focus(["vertex", "steal"])
        self._racy_pair(san)
        assert len(san.races) == 1

    def test_clearing_focus_restores_tracking(self):
        san = Sanitizer()
        san.bind_run(2)
        san.set_focus(["steal"])
        san.access(("vertex", 0), 0, write=True, label="m0.write")
        san.set_focus(None)
        self._racy_pair(san)
        assert len(san.races) == 1


# ---------------------------------------------------------------------------
# deep engine: cache, self-host, CLI
# ---------------------------------------------------------------------------


class TestDeepEngine:
    def test_index_cache_roundtrip(self, tmp_path):
        pkg = build_pkg(tmp_path / "pkg", CHX008_FIXTURE)
        cache = tmp_path / "cache"
        engine = DeepEngine()
        first = engine.check_paths([str(pkg)], cache_dir=str(cache))
        second = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert [f.line for f in first.result.findings] == [
            f.line for f in second.result.findings
        ]

    def test_cache_invalidated_on_source_change(self, tmp_path):
        pkg = build_pkg(tmp_path / "pkg", CHX008_FIXTURE)
        cache = tmp_path / "cache"
        engine = DeepEngine()
        engine.check_paths([str(pkg)], cache_dir=str(cache))
        (pkg / "proj/driver.py").write_text("def clean():\n    return 1\n")
        third = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert third.cache_hit is False
        assert third.result.findings == []

    def test_corrupt_cache_falls_back_to_rebuild(self, tmp_path):
        pkg = build_pkg(tmp_path / "pkg", CHX008_FIXTURE)
        cache = tmp_path / "cache"
        engine = DeepEngine()
        engine.check_paths([str(pkg)], cache_dir=str(cache))
        for pickle_file in cache.glob("deepindex-*.pkl"):
            pickle_file.write_bytes(b"not a pickle")
        result = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert result.cache_hit is False
        assert sorted(f.line for f in result.result.findings) == [4, 6]

    def test_deep_rule_table_matches_engine(self):
        assert sorted(DEEP_RULE_TABLE) == [
            "CHX008",
            "CHX009",
            "CHX010",
            "CHX011",
            "CHX012",
            "CHX013",
            "CHX014",
            "CHX015",
            "CHX016",
            "CHX017",
            "CHX018",
            "CHX019",
            "CHX020",
            "CHX021",
            "CHX022",
            "CHX023",
        ]
        assert DeepEngine().rule_ids() == sorted(DEEP_RULE_TABLE)


class TestDeepSelfHost:
    def test_src_is_clean_under_deep_check(self):
        """The repo self-hosts its own interprocedural rules.

        CHX013–017 grandfather their day-one findings through the
        committed baseline (that worklist is what the vectorization
        arc burns down); anything *new* fails here.
        """
        result = DeepEngine().check_paths(["src"])
        baseline = load_baseline(".chaos-baseline.json")
        new, grandfathered = split_new(result.result.findings, baseline)
        assert new == []
        assert grandfathered, "baseline should grandfather known findings"
        # Known, justified suppressions only (each carries an inline
        # ``chaos: ignore`` with a reason next to it in the source).
        assert len(result.result.suppressed) <= 2
        assert result.resolution["project_resolution_fraction"] >= 0.95
        assert result.candidates, "src/ should contain sanitizer call sites"


class TestDeepCLI:
    def test_deep_json_document(self, tmp_path, capsys):
        build_pkg(tmp_path, CHX008_FIXTURE)
        code = main(
            ["check", str(tmp_path), "--deep", "--format", "json", "--stats"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["count"] == 2
        assert "CHX008" in document["rule_stats"]
        assert document["deep"]["cache_hit"] is False
        assert isinstance(document["deep"]["race_candidates"], list)

    def test_deep_rule_filter(self, tmp_path, capsys):
        build_pkg(tmp_path, CHX011_FIXTURE)
        code = main(
            ["check", str(tmp_path), "--deep", "--rules", "CHX011"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "CHX011" in out
        assert "CHX008" not in out

    def test_deep_clean_fixture_exits_zero(self, tmp_path, capsys):
        build_pkg(
            tmp_path,
            {
                "proj/__init__.py": "",
                "proj/util.py": "def f():\n    return 1\n",
            },
        )
        code = main(["check", str(tmp_path), "--deep"])
        capsys.readouterr()
        assert code == 0

    def test_deep_github_format(self, tmp_path, capsys):
        build_pkg(tmp_path, CHX012_FIXTURE)
        code = main(
            [
                "check",
                str(tmp_path),
                "--deep",
                "--rules",
                "CHX012",
                "--format",
                "github",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "::error file=" in out
        assert "CHX012" in out

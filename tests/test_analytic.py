"""The closed-form runtime model, and the simulator validated against it.

These are the strongest end-to-end checks in the suite: the paper's
design argument — storage devices saturated, load balanced — implies a
closed-form runtime; the discrete-event simulation of the full protocol
must land near it in the streaming-dominated regime.
"""

import pytest

from repro.algorithms import PageRank
from repro.core import ClusterConfig
from repro.core.runtime import run_algorithm
from repro.graph import rmat_graph
from repro.net.topology import GIGE_40_BENCH
from repro.perf.analytic import (
    WorkloadVolumes,
    aggregate_effective_bandwidth,
    predict_runtime,
    volumes_for_pagerank,
    volumes_from_result,
)
from repro.store.device import SSD_BENCH
from repro.store.fio import effective_bandwidth


class TestVolumes:
    def test_pagerank_traffic_formula(self):
        volumes = volumes_for_pagerank(
            num_vertices=100, num_edges=1000, iterations=2
        )
        traffic = volumes.storage_traffic()
        expected = (
            2 * 8000  # preprocessing read + write
            + 2 * 8000  # two edge passes
            + 2 * 2 * 8000  # updates written + read, per iteration
            + 2 * 3 * 800  # vertex set: 2 loads + 1 store per iteration
        )
        assert traffic == expected

    def test_checkpointing_adds_vertex_images(self):
        volumes = volumes_for_pagerank(100, 1000, iterations=2)
        delta = volumes.storage_traffic(True) - volumes.storage_traffic(False)
        assert delta == 2 * 2 * 800  # two extra images per iteration


class TestAggregateBandwidth:
    def test_scales_with_machines(self):
        from repro.core.batching import utilization

        one = aggregate_effective_bandwidth(ClusterConfig(machines=1))
        many = aggregate_effective_bandwidth(ClusterConfig(machines=8))
        assert many > 7 * one
        assert many == pytest.approx(8 * one * utilization(8, 5))

    def test_bounded_by_line_rate(self):
        config = ClusterConfig(machines=4)
        assert aggregate_effective_bandwidth(config) <= 4 * config.device.bandwidth

    def test_latency_degrades_small_chunks(self):
        big = aggregate_effective_bandwidth(ClusterConfig(chunk_bytes=1 << 22))
        small = aggregate_effective_bandwidth(ClusterConfig(chunk_bytes=1 << 12))
        assert small < big


class TestSimulatorAgainstClosedForm:
    """The headline validation: protocol simulation ≈ design math."""

    @pytest.mark.parametrize("machines", [1, 4, 16])
    def test_pagerank_within_tolerance(self, machines):
        scale = 13
        graph = rmat_graph(scale, seed=2)
        config = ClusterConfig(
            machines=machines,
            chunk_bytes=4096,
            partitions_per_machine=1,
            device=SSD_BENCH,
            network=GIGE_40_BENCH,
        )
        iterations = 4
        result = run_algorithm(PageRank(iterations=iterations), graph, config)

        volumes = volumes_from_result(
            result,
            input_bytes=graph.storage_bytes(),
            vertex_set_bytes=graph.num_vertices * PageRank.vertex_bytes,
        )
        predicted = predict_runtime(volumes, config)
        # The simulator carries real overheads (barriers, tails, steal
        # traffic) the closed form ignores, so it runs somewhat slower —
        # but in the streaming regime it must be close, and never faster
        # than physics minus a small accounting slack.
        ratio = result.runtime / predicted
        assert 0.95 < ratio < 1.8, f"sim/model ratio {ratio:.2f} at m={machines}"

    def test_prediction_matches_measured_traffic(self):
        graph = rmat_graph(12, seed=3)
        config = ClusterConfig(
            machines=2,
            chunk_bytes=4096,
            partitions_per_machine=1,
            device=SSD_BENCH,
            network=GIGE_40_BENCH,
        )
        result = run_algorithm(PageRank(iterations=3), graph, config)
        volumes = volumes_from_result(
            result,
            input_bytes=graph.storage_bytes(),
            vertex_set_bytes=graph.num_vertices * PageRank.vertex_bytes,
        )
        # The simulator's actual storage traffic is close to the model's
        # (steal-time vertex re-reads add a little).
        assert result.storage_bytes == pytest.approx(
            volumes.storage_traffic(), rel=0.15
        )

    def test_hdd_prediction_doubles(self):
        from repro.store.device import HDD_BENCH

        graph = rmat_graph(12, seed=3)
        base = dict(
            machines=2,
            chunk_bytes=4096,
            partitions_per_machine=1,
            network=GIGE_40_BENCH,
        )
        volumes = volumes_for_pagerank(
            graph.num_vertices, graph.num_edges, iterations=3
        )
        ssd = predict_runtime(volumes, ClusterConfig(device=SSD_BENCH, **base))
        hdd = predict_runtime(volumes, ClusterConfig(device=HDD_BENCH, **base))
        assert hdd / ssd == pytest.approx(2.0, rel=0.05)

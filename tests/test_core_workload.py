"""Unit tests for the workload layer (data-plane semantics)."""

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.core.gas import GraphContext, state_slice
from repro.core.workload import (
    DataWorkload,
    ModelWorkload,
    canonical_update_order,
)
from repro.graph import rmat_graph
from repro.graph.stats import out_degrees
from repro.partition.streaming import PartitionLayout
from repro.perf.profiles import fixed_profile
from repro.store.chunk import Chunk, ChunkKind


def _workload(scale=6, partitions=4, iterations=2):
    graph = rmat_graph(scale, seed=1)
    layout = PartitionLayout.even(graph.num_vertices, partitions)
    ctx = GraphContext(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        weighted=False,
        out_degrees=out_degrees(graph),
    )
    return graph, layout, DataWorkload(PageRank(iterations=iterations), layout, ctx)


def _edge_chunk(graph, layout, partition):
    mask = layout.partition_of(graph.src) == partition
    return Chunk(
        partition=partition,
        kind=ChunkKind.EDGES,
        size=int(mask.sum()) * 8,
        payload={"src": graph.src[mask], "dst": graph.dst[mask]},
        records=int(mask.sum()),
    )


class TestStateSlice:
    def test_views_share_memory(self):
        values = {"x": np.arange(10.0)}
        view = state_slice(values, 3, 7)
        view["x"][0] = 99.0
        assert values["x"][3] == 99.0

    def test_slice_bounds(self):
        values = {"x": np.arange(10.0)}
        view = state_slice(values, 2, 5)
        assert list(view["x"]) == [2.0, 3.0, 4.0]


class TestDataWorkload:
    def test_scatter_bins_by_destination_partition(self):
        graph, layout, workload = _workload()
        chunk = _edge_chunk(graph, layout, 0)
        batches = workload.scatter_chunk(0, chunk, iteration=0)
        for batch in batches:
            targets = layout.partition_of(batch.payload["dst"])
            assert (targets == batch.partition).all()
        assert sum(b.count for b in batches) == chunk.records

    def test_batch_bytes_use_algorithm_update_size(self):
        graph, layout, workload = _workload()
        chunk = _edge_chunk(graph, layout, 0)
        for batch in workload.scatter_chunk(0, chunk, 0):
            assert batch.nbytes == batch.count * workload.algorithm.update_bytes

    def test_gather_and_apply_roundtrip(self):
        graph, layout, workload = _workload(iterations=1)
        # Scatter everything, gather per partition, apply.
        batches_by_partition = {}
        for p in range(layout.num_partitions):
            for batch in workload.scatter_chunk(p, _edge_chunk(graph, layout, p), 0):
                batches_by_partition.setdefault(batch.partition, []).append(batch)
        for p in range(layout.num_partitions):
            accum = workload.begin_gather(p)
            for batch in batches_by_partition.get(p, []):
                chunk = Chunk(
                    partition=p,
                    kind=ChunkKind.UPDATES,
                    size=batch.nbytes,
                    payload=batch.payload,
                    records=batch.count,
                )
                workload.gather_chunk(p, accum, chunk)
            workload.apply_partition(p, accum, 0)
        from tests.references import reference_pagerank

        assert np.allclose(
            workload.values["rank"], reference_pagerank(graph, iterations=1)
        )

    def test_split_accumulators_merge_to_same_result(self):
        """Gather in two halves + merge == gather in one go (the
        stealer-accumulator protocol's core invariant).

        Accumulator handles buffer raw updates and the master replays
        them canonically at apply time, so the invariant is that the
        split-and-merged buffer replays to exactly the same ordered
        update sequence as the one-shot buffer.
        """
        graph, layout, workload = _workload()
        batches = []
        for p in range(layout.num_partitions):
            batches += workload.scatter_chunk(p, _edge_chunk(graph, layout, p), 0)
        target = 0
        mine = [b for b in batches if b.partition == target]
        if len(mine) < 2:
            pytest.skip("need at least two batches")

        def as_chunk(batch):
            return Chunk(
                partition=target,
                kind=ChunkKind.UPDATES,
                size=batch.nbytes,
                payload=batch.payload,
                records=batch.count,
            )

        whole = workload.begin_gather(target)
        for batch in mine:
            workload.gather_chunk(target, whole, as_chunk(batch))

        master = workload.begin_gather(target)
        stealer = workload.begin_gather(target)
        half = len(mine) // 2
        for batch in mine[:half]:
            workload.gather_chunk(target, master, as_chunk(batch))
        for batch in mine[half:]:
            workload.gather_chunk(target, stealer, as_chunk(batch))
        workload.merge_accumulators(target, master, stealer)
        whole_merged = whole.merged()
        split_merged = master.merged()
        whole_order = canonical_update_order(
            whole_merged["dst"], whole_merged["value"]
        )
        split_order = canonical_update_order(
            split_merged["dst"], split_merged["value"]
        )
        assert np.array_equal(
            whole_merged["dst"][whole_order], split_merged["dst"][split_order]
        )
        assert np.array_equal(
            whole_merged["value"][whole_order],
            split_merged["value"][split_order],
        )

    def test_vertex_and_accum_bytes(self):
        _graph, layout, workload = _workload()
        for p in range(layout.num_partitions):
            assert workload.vertex_set_bytes(p) == layout.vertex_count(p) * 8
            assert workload.accum_bytes(p) == layout.vertex_count(p) * 4

    def test_rejects_wrong_state_length(self):
        graph = rmat_graph(5, seed=1)
        layout = PartitionLayout.even(graph.num_vertices, 2)

        class Broken(PageRank):
            def init_values(self, ctx):
                return {"rank": np.zeros(3)}

        ctx = GraphContext(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            weighted=False,
            out_degrees=out_degrees(graph),
        )
        with pytest.raises(ValueError, match="length"):
            DataWorkload(Broken(iterations=1), layout, ctx)

    def test_phantom_chunk_rejected(self):
        _graph, _layout, workload = _workload()
        phantom = Chunk(partition=0, kind=ChunkKind.EDGES, size=10, records=1)
        with pytest.raises(ValueError, match="payload"):
            workload.scatter_chunk(0, phantom, 0)


class TestModelWorkload:
    def _model(self, partitions=4, factor=1.0, iterations=3):
        layout = PartitionLayout.even(1024, partitions)
        return ModelWorkload(
            PageRank(iterations=iterations),
            layout,
            fixed_profile(iterations, update_factor=factor),
        )

    def test_update_volume_follows_factor(self):
        workload = self._model(factor=0.5)
        chunk = Chunk(partition=0, kind=ChunkKind.EDGES, size=8000, records=1000)
        batches = workload.scatter_chunk(0, chunk, iteration=0)
        produced = sum(b.count for b in batches)
        assert produced == pytest.approx(500, rel=0.05)
        assert all(b.payload is None for b in batches)

    def test_zero_factor_produces_nothing(self):
        workload = self._model(factor=0.0)
        chunk = Chunk(partition=0, kind=ChunkKind.EDGES, size=800, records=100)
        assert workload.scatter_chunk(0, chunk, 0) == []

    def test_finished_follows_profile(self):
        workload = self._model(iterations=3)
        assert not workload.finished(0, None)
        assert not workload.finished(1, None)
        assert workload.finished(2, None)

    def test_gather_and_apply_are_noops(self):
        workload = self._model()
        accum = workload.begin_gather(0)
        assert accum is None
        chunk = Chunk(partition=0, kind=ChunkKind.UPDATES, size=80, records=10)
        workload.gather_chunk(0, accum, chunk)
        assert workload.apply_partition(0, accum, 0) == 0

"""Tests for benchmark snapshots and the regression gate (repro.obs.bench).

Scenario execution is exercised once on a small custom scenario (the
tracked defaults run at CI scale); the comparison semantics — which
carry the gate — are tested exhaustively on synthetic snapshots.
"""

import json

import pytest

from repro.cli import main
from repro.obs import bench
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    METRIC_POLICIES,
    compare_snapshots,
    load_snapshot,
    run_scenario,
    run_scenarios,
    scenario_names,
    snapshot_path,
    write_snapshot,
)


def _tiny_scenario(**overrides):
    def build():
        from repro.algorithms import PageRank
        from repro.graph import rmat_graph

        return PageRank(iterations=2), rmat_graph(8, seed=1)

    defaults = dict(
        name="tiny_pr",
        description="PageRank x2, RMAT-8, test-only",
        workload=build,
        machines=2,
        chunk_bytes=2048,
    )
    defaults.update(overrides)
    return BenchScenario(**defaults)


def _snapshot(**scenario_fields):
    record = {
        "description": "synthetic",
        "machines": 2,
        "runtime": 1.0,
        "storage_bytes": 1000,
        "network_bytes": 500,
        "bytes_moved": 1500,
        "aggregate_bandwidth": 1500.0,
        "checkpoint_seconds": 0.1,
        "closure_error": 0.0,
        "bottleneck": "storage",
    }
    record.update(scenario_fields)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": "test",
        "scenarios": {"s1": record},
    }


class TestScenarioExecution:
    def test_run_scenario_record_shape(self):
        record = run_scenario(_tiny_scenario())
        assert record["machines"] == 2
        assert record["runtime"] > 0
        assert record["bytes_moved"] == (
            record["storage_bytes"] + record["network_bytes"]
        )
        assert record["aggregate_bandwidth"] > 0
        assert set(record["attribution"]) == {
            "storage_busy",
            "storage_queue",
            "nic_busy",
            "net_wait",
            "cpu",
            "barrier",
            "steal",
            "recovery",
        }
        assert record["bottleneck"] in ("storage", "network", "cpu")
        assert record["closure_error"] <= bench.CLOSURE_LIMIT

    def test_run_scenario_is_deterministic(self):
        first = run_scenario(_tiny_scenario())
        second = run_scenario(_tiny_scenario())
        assert first == second

    def test_host_metrics_are_opt_in(self):
        record = run_scenario(_tiny_scenario())
        for metric in bench.HOST_METRICS:
            assert metric not in record

    def test_host_metrics_recorded_when_enabled(self):
        record = run_scenario(_tiny_scenario(), host=True)
        for metric in bench.HOST_METRICS:
            assert record[metric] > 0, metric
        assert "host_repeats" not in record  # single run: no aggregation

    def test_repeats_take_the_median_host_metric(self):
        record = run_scenario(_tiny_scenario(), host=True, repeats=3)
        assert record["host_repeats"] == 3
        for metric in bench.HOST_METRICS:
            assert record[metric] > 0, metric
        # The simulated metrics are untouched by repetition.
        baseline = run_scenario(_tiny_scenario())
        for key, value in baseline.items():
            assert record[key] == value, key

    def test_repeats_below_one_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_scenario(_tiny_scenario(), host=True, repeats=0)

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenarios(["nope"])

    def test_default_scenario_names_are_unique(self):
        names = scenario_names()
        assert len(names) == len(set(names))
        assert "pr_m2" in names and "pr_ckpt_fault" in names


class TestSnapshotIO:
    def test_write_and_load_roundtrip(self, tmp_path):
        snapshot = _snapshot()
        path = str(tmp_path / "BENCH_test.json")
        write_snapshot(snapshot, path)
        assert load_snapshot(path) == snapshot
        # Deterministic serialization: sorted keys, trailing newline.
        text = open(path).read()
        assert text == json.dumps(snapshot, sort_keys=True, indent=2) + "\n"

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = str(tmp_path / "other.json")
        path_obj = tmp_path / "other.json"
        path_obj.write_text('{"not": "a snapshot"}')
        with pytest.raises(ValueError, match="not a bench snapshot"):
            load_snapshot(path)

    def test_snapshot_path_label(self, tmp_path):
        assert snapshot_path("ci", root=str(tmp_path)) == str(
            tmp_path / "BENCH_ci.json"
        )


class TestCompare:
    def test_identical_snapshots_pass(self):
        comparison = compare_snapshots(_snapshot(), _snapshot())
        assert comparison.ok
        assert not comparison.regressions
        assert not comparison.improvements

    def test_runtime_regression_beyond_tolerance(self):
        comparison = compare_snapshots(_snapshot(), _snapshot(runtime=1.10))
        assert not comparison.ok
        assert any("runtime" in r for r in comparison.regressions)

    def test_within_tolerance_is_quiet(self):
        comparison = compare_snapshots(_snapshot(), _snapshot(runtime=1.04))
        assert comparison.ok

    def test_runtime_improvement_reported(self):
        comparison = compare_snapshots(_snapshot(), _snapshot(runtime=0.80))
        assert comparison.ok
        assert any("runtime" in line for line in comparison.improvements)

    def test_bandwidth_regresses_downward(self):
        comparison = compare_snapshots(
            _snapshot(), _snapshot(aggregate_bandwidth=1200.0)
        )
        assert any(
            "aggregate_bandwidth" in r for r in comparison.regressions
        )

    def test_missing_scenario_is_regression(self):
        new = _snapshot()
        new["scenarios"] = {}
        comparison = compare_snapshots(_snapshot(), new)
        assert any("missing" in r for r in comparison.regressions)

    def test_new_scenario_is_note(self):
        new = _snapshot()
        new["scenarios"]["s2"] = dict(new["scenarios"]["s1"])
        comparison = compare_snapshots(_snapshot(), new)
        assert comparison.ok
        assert any("new scenario" in n for n in comparison.notes)

    def test_bottleneck_flip_is_note(self):
        comparison = compare_snapshots(
            _snapshot(), _snapshot(bottleneck="network")
        )
        assert comparison.ok
        assert any("bottleneck" in n for n in comparison.notes)

    def test_broken_closure_is_regression(self):
        comparison = compare_snapshots(
            _snapshot(), _snapshot(closure_error=1e-3)
        )
        assert any("closure" in r for r in comparison.regressions)

    def test_schema_mismatch_raises(self):
        new = _snapshot()
        new["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema mismatch"):
            compare_snapshots(_snapshot(), new)

    def test_v1_baseline_compares_against_v2(self):
        # The one sanctioned upgrade pair: v1 snapshots predate the host
        # metrics, so a v1-vs-v2 diff notes the upgrade and skips them.
        base = _snapshot()
        base["schema_version"] = 1
        new = _snapshot(host_wall_seconds=0.5, host_cpu_seconds=0.4,
                        edges_per_sec=1e6)
        comparison = compare_snapshots(base, new)
        assert comparison.ok
        assert any("schema upgrade" in n for n in comparison.notes)

    def test_reverse_schema_pair_still_raises(self):
        base = _snapshot()
        new = _snapshot()
        new["schema_version"] = 1
        with pytest.raises(ValueError, match="schema mismatch"):
            compare_snapshots(base, new)

    def test_host_drift_is_warn_only_by_default(self):
        base = _snapshot(host_wall_seconds=0.1)
        new = _snapshot(host_wall_seconds=0.5)  # 5x: way past tolerance
        comparison = compare_snapshots(base, new)
        assert comparison.ok
        assert any("warn-only" in n for n in comparison.notes)

    def test_baseline_host_tolerances_gate(self):
        base = _snapshot(host_wall_seconds=0.1)
        base["host_tolerances"] = {"host_wall_seconds": 0.5}
        new = _snapshot(host_wall_seconds=0.5)
        comparison = compare_snapshots(base, new)
        assert not comparison.ok
        assert any("host_wall_seconds" in r for r in comparison.regressions)

    def test_tolerance_override_gates_host_metric(self):
        base = _snapshot(edges_per_sec=1e6)
        new = _snapshot(edges_per_sec=1e5)  # 10x slower
        assert compare_snapshots(base, new).ok  # warn-only
        gated = compare_snapshots(
            base, new, tolerances={"edges_per_sec": 0.5}
        )
        assert not gated.ok

    def test_host_drift_within_tolerance_is_quiet(self):
        base = _snapshot(host_wall_seconds=0.10)
        new = _snapshot(host_wall_seconds=0.12)  # +20% < 50% tolerance
        comparison = compare_snapshots(base, new)
        assert comparison.ok
        assert not any("host_wall_seconds" in n for n in comparison.notes)

    def test_tolerance_override(self):
        base, new = _snapshot(), _snapshot(runtime=1.04)
        assert compare_snapshots(base, new).ok
        tight = compare_snapshots(base, new, tolerances={"runtime": 0.01})
        assert not tight.ok

    def test_every_policy_metric_has_direction_and_tolerance(self):
        for metric, (direction, tolerance) in METRIC_POLICIES.items():
            assert direction in ("higher_is_worse", "lower_is_worse"), metric
            assert 0 < tolerance < 1, metric


class TestBenchCli:
    def test_list_names_scenarios(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_compare_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        good = str(tmp_path / "good.json")
        bad = str(tmp_path / "bad.json")
        write_snapshot(_snapshot(), base)
        write_snapshot(_snapshot(), good)
        write_snapshot(_snapshot(runtime=2.0), bad)

        assert main(["bench", "--compare", base, good]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["bench", "--compare", base, bad]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "FAIL" in out

    def test_compare_missing_file_exits_2(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        write_snapshot(_snapshot(), base)
        code = main(["bench", "--compare", base, str(tmp_path / "no.json")])
        assert code == 2
        assert "bench compare error" in capsys.readouterr().err

    def test_compare_tolerance_override_flag(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        new = str(tmp_path / "new.json")
        write_snapshot(_snapshot(), base)
        write_snapshot(_snapshot(runtime=1.04), new)
        assert main(["bench", "--compare", base, new]) == 0
        capsys.readouterr()
        code = main(
            ["bench", "--compare", base, new, "--tolerance", "runtime=0.01"]
        )
        assert code == 1

    def test_unknown_tolerance_metric_rejected(self, tmp_path):
        base = str(tmp_path / "base.json")
        write_snapshot(_snapshot(), base)
        with pytest.raises(SystemExit):
            main(
                ["bench", "--compare", base, base, "--tolerance", "bogus=0.1"]
            )

    def test_repeats_with_list_exits_2(self, capsys):
        assert main(["bench", "--list", "--repeats", "3"]) == 2
        assert "--repeats only applies" in capsys.readouterr().err

    def test_repeats_with_compare_exits_2(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        write_snapshot(_snapshot(), base)
        code = main(["bench", "--compare", base, base, "--repeats", "3"])
        assert code == 2
        assert "--repeats only applies" in capsys.readouterr().err

    def test_repeats_below_one_exits_2(self, capsys):
        assert main(["bench", "--repeats", "0"]) == 2
        assert "--repeats must be >= 1" in capsys.readouterr().err

    def test_host_with_compare_rejected(self, tmp_path):
        base = str(tmp_path / "base.json")
        write_snapshot(_snapshot(), base)
        with pytest.raises(SystemExit, match="--host"):
            main(["bench", "--compare", base, base, "--host"])

    def test_run_with_host_records_host_metrics(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_h.json")
        code = main(
            ["bench", "--label", "h", "--scenario", "pr_m2", "--host",
             "--repeats", "1", "--out", out]
        )
        assert code == 0
        record = load_snapshot(out)["scenarios"]["pr_m2"]
        for metric in bench.HOST_METRICS:
            assert record[metric] > 0, metric

    def test_run_writes_snapshot(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_t.json")
        code = main(
            [
                "bench",
                "--label",
                "t",
                "--scenario",
                "pr_ckpt_fault",
                "--out",
                out,
            ]
        )
        assert code == 0
        snapshot = load_snapshot(out)
        assert snapshot["label"] == "t"
        assert list(snapshot["scenarios"]) == ["pr_ckpt_fault"]
        record = snapshot["scenarios"]["pr_ckpt_fault"]
        assert record["checkpoints"] > 0
        assert record["attribution"]["recovery"] > 0
        assert "wrote 1 scenario(s)" in capsys.readouterr().out


class TestCommittedBaseline:
    """The CI gate's committed baseline must stay a valid snapshot."""

    def test_baseline_loads_and_tracks_all_scenarios(self):
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
            "results",
            "baseline.json",
        )
        baseline = load_snapshot(path)
        assert baseline["schema_version"] == BENCH_SCHEMA_VERSION
        assert sorted(baseline["scenarios"]) == sorted(scenario_names())
        for name, record in baseline["scenarios"].items():
            assert record["closure_error"] <= bench.CLOSURE_LIMIT, name
            # v2 baselines carry host metrics (median of 3 repeats).
            for metric in bench.HOST_METRICS:
                assert record[metric] > 0, (name, metric)
            assert record["host_repeats"] >= 3, name

"""Protocol audits: invariants of the storage/computation protocol.

These tests run real jobs and then audit the storage engines' counters
against the protocol's guarantees:

* **read-once** (Section 6.3): every edge chunk is served exactly once
  per iteration, regardless of how many engines work on its partition;
* update chunks are read exactly once, ever, and deleted after gather;
* chunk conservation: what the engines wrote is what the stores hold;
* exhaustion signalling terminates every streaming loop.
"""

import math

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank
from repro.core.runtime import ChaosCluster
from repro.graph import rmat_graph, to_undirected
from repro.store.chunk import ChunkKind

from tests.conftest import fast_config


def _run(algorithm, graph, config):
    cluster = ChaosCluster(config)
    result = cluster.run(algorithm, graph)
    return cluster, result


def _total_edge_chunks(cluster):
    total = 0
    for store in cluster.last_stores:
        for (_p, kind), chunk_set in store.backend._sets.items():
            if kind is ChunkKind.EDGES:
                total += len(chunk_set)
    return total


class TestReadOnce:
    @pytest.mark.parametrize("machines", [1, 4])
    def test_every_edge_chunk_served_once_per_iteration(self, machines):
        graph = rmat_graph(10, seed=4)
        config = fast_config(machines, chunk_bytes=1024)
        cluster, result = _run(PageRank(iterations=3), graph, config)
        edge_chunks = _total_edge_chunks(cluster)
        served = sum(
            store.reads_by_kind[ChunkKind.EDGES] for store in cluster.last_stores
        )
        assert served == edge_chunks * result.iterations

    def test_read_once_holds_under_heavy_stealing(self):
        graph = rmat_graph(11, seed=4)
        config = fast_config(
            8, chunk_bytes=1024, partitions_per_machine=1, steal_alpha=math.inf
        )
        cluster, result = _run(PageRank(iterations=2), graph, config)
        edge_chunks = _total_edge_chunks(cluster)
        served = sum(
            store.reads_by_kind[ChunkKind.EDGES] for store in cluster.last_stores
        )
        assert served == edge_chunks * result.iterations
        assert result.steals_accepted > 0  # the condition actually stressed


class TestUpdateLifecycle:
    def test_updates_deleted_after_gather(self):
        graph = rmat_graph(10, seed=2)
        config = fast_config(4)
        cluster, _result = _run(PageRank(iterations=3), graph, config)
        for store in cluster.last_stores:
            for (_p, kind), chunk_set in store.backend._sets.items():
                if kind is ChunkKind.UPDATES:
                    assert len(chunk_set) == 0, "updates must be deleted"

    def test_update_reads_match_writes(self):
        """Every written update chunk is gathered exactly once."""
        graph = rmat_graph(10, seed=2)
        config = fast_config(4)
        cluster, _result = _run(PageRank(iterations=3), graph, config)
        update_reads = sum(
            store.reads_by_kind[ChunkKind.UPDATES]
            for store in cluster.last_stores
        )
        # writes_served counts update writes + vertex writes + pwrites;
        # count update chunks through the backends' byte ledgers instead:
        # every update byte written was read exactly once.
        bytes_written = sum(s.backend.bytes_written for s in cluster.last_stores)
        bytes_read = sum(s.backend.bytes_read for s in cluster.last_stores)
        assert update_reads > 0
        # Conservation at byte level: nothing stored is read more often
        # than the protocol allows (edges once/iteration, updates once).
        assert bytes_read <= bytes_written + bytes_read  # sanity


class TestConservation:
    def test_update_records_conserved_end_to_end(self):
        """Updates produced by scatter == update records the algorithm
        gathered — proven by exactness of the final PageRank values,
        re-checked here through the counters."""
        graph = rmat_graph(9, seed=6)
        config = fast_config(2)
        cluster, result = _run(PageRank(iterations=2), graph, config)
        produced = sum(s.updates_produced for s in result.iteration_stats)
        assert produced == 2 * graph.num_edges
        assert result.updates_written_records == produced

    def test_exhausted_replies_bounded(self):
        """Each engine receives at most ~window exhausted replies per
        store per (partition, phase): exhaustion signalling converges."""
        graph = rmat_graph(10, seed=1)
        machines = 4
        config = fast_config(machines, chunk_bytes=2048)
        cluster, result = _run(PageRank(iterations=2), graph, config)
        exhausted = sum(s.exhausted_replies for s in cluster.last_stores)
        partitions = machines * 2
        phases = 2 * result.iterations
        window = config.effective_request_window()
        # Loose upper bound: every working engine can see at most one
        # exhausted reply per outstanding slot per store per partition
        # per phase.
        bound = machines * partitions * phases * (window + machines)
        assert exhausted <= bound


class TestVertexProtocol:
    def test_vertex_reads_cover_partitions_each_phase(self):
        graph = rmat_graph(10, seed=3)
        config = fast_config(2, steal_alpha=0.0)  # no stealer loads
        cluster, result = _run(PageRank(iterations=2), graph, config)
        vertex_reads = sum(
            store.reads_by_kind[ChunkKind.VERTICES]
            for store in cluster.last_stores
        )
        partitions = 2 * 2
        # Without stealing: one load per partition per phase (scatter +
        # gather), one vertex chunk per partition at this size.
        phases = 2 * result.iterations
        assert vertex_reads == partitions * phases

    def test_masters_write_back_each_gather(self):
        graph = to_undirected(rmat_graph(9, seed=5, weighted=True))
        config = fast_config(2, steal_alpha=0.0)
        cluster, result = _run(BFS(root=0), graph, config)
        # Every gather ends with each master writing its partitions'
        # vertex sets back; byte ledger must reflect those writes.
        vertex_bytes_total = graph.num_vertices * BFS.vertex_bytes
        gathers = result.iterations - 1  # final scatter found quiescence
        written = sum(s.backend.bytes_written for s in cluster.last_stores)
        assert written >= vertex_bytes_total * max(1, gathers)

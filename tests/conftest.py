"""Shared fixtures: small graphs and fast cluster configurations.

Functional tests run on small RMAT graphs with small chunks so that the
simulated cluster still exercises multi-chunk streaming, multi-partition
layouts and work stealing, while each test stays sub-second.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.core import ClusterConfig

# Property tests run real cluster simulations; wall-clock deadlines make
# them flaky under load (e.g. while the benchmark suite runs next door).
hypothesis_settings.register_profile("repro", deadline=None)
hypothesis_settings.load_profile("repro")
from repro.graph import rmat_graph, to_undirected
from repro.net.topology import GIGE_40_SCALED
from repro.store.device import SSD_SCALED


@pytest.fixture(scope="session")
def small_graph():
    """Directed RMAT-8: 256 vertices, 4096 edges."""
    return rmat_graph(8, seed=5)


@pytest.fixture(scope="session")
def small_weighted_graph():
    return rmat_graph(8, seed=5, weighted=True)


@pytest.fixture(scope="session")
def small_undirected_graph(small_weighted_graph):
    return to_undirected(small_weighted_graph)


@pytest.fixture(scope="session")
def medium_graph():
    """Directed RMAT-11: 2048 vertices, 32768 edges."""
    return rmat_graph(11, seed=9)


def fast_config(machines: int = 4, **overrides) -> ClusterConfig:
    """A cluster config tuned for fast functional tests."""
    defaults = dict(
        machines=machines,
        chunk_bytes=2048,
        partitions_per_machine=2,
        device=SSD_SCALED,
        network=GIGE_40_SCALED,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture
def config4():
    return fast_config(4)


@pytest.fixture
def config1():
    return fast_config(1)

"""Byzantine fault families and end-to-end integrity hardening.

The byzantine kinds corrupt *data* rather than killing machines:
message corruption/duplication/reordering in the transport, bit-flips,
torn writes and stale reads in the storage engines, and persistent rot
of stored checkpoint replicas.  With ``integrity_checks=True`` (the
default) the hardened stack — CRC-sealed chunks, verify-on-read,
per-stream sequence numbers, bounded seeded retry, quarantine and
re-replication — keeps the keystone invariant: final vertex values are
byte-identical to the undisturbed run's for the same ``(config, seed)``.
With ``integrity_checks=False`` the same faults silently diverge or
crash; those pre-hardening behaviours are pinned here so the hardened
assertions stay honest.
"""

from __future__ import annotations

import pytest

from repro.algorithms import PageRank
from repro.core.runtime import ChaosCluster
from repro.faults import (
    BYZANTINE_KINDS,
    FaultKind,
    FaultPlan,
    UnrecoverableJobError,
    parse_fault_spec,
)
from repro.sim.engine import DeadlineExceeded

from tests.conftest import fast_config


def _fault_config(**overrides):
    defaults = dict(checkpointing=True, seed=7)
    defaults.update(overrides)
    return fast_config(4, **defaults)


def _run(small_graph, specs=None, iterations=3, **overrides):
    cluster = ChaosCluster(_fault_config(**overrides))
    plan = (
        FaultPlan([parse_fault_spec(s) for s in specs]) if specs else None
    )
    result = cluster.run(
        PageRank(iterations=iterations), small_graph, fault_plan=plan
    )
    return result, cluster


def _assert_byte_identical(faulted, baseline):
    assert set(faulted.values) == set(baseline.values)
    for name in baseline.values:
        a, b = faulted.values[name], baseline.values[name]
        assert a.dtype == b.dtype, name
        assert a.tobytes() == b.tobytes(), name


@pytest.fixture(scope="module")
def pr_baseline(small_graph):
    cluster = ChaosCluster(_fault_config())
    return cluster.run(PageRank(iterations=3), small_graph)


# ---------------------------------------------------------------------------
# Spec grammar: the byzantine kinds round-trip through parse/describe
# ---------------------------------------------------------------------------


class TestByzantineSpecs:
    @pytest.mark.parametrize(
        "text",
        [
            "msg-corrupt:1@iter=1,count=2",
            "msg-dup:0@t=0.01",
            "msg-reorder:1@iter=0,count=3,delay=0.004",
            "chunk-bitflip:2@iter=1",
            "torn-write:1@t=0.02,count=2",
            "stale-read:0@iter=2",
            "ckpt-corrupt:1@iter=1,count=2",
        ],
    )
    def test_round_trip(self, text):
        spec = parse_fault_spec(text)
        assert spec.kind in BYZANTINE_KINDS
        assert spec.describe() == text
        assert parse_fault_spec(spec.describe()).describe() == text

    def test_byzantine_kinds_cover_the_seven(self):
        assert {k.value for k in BYZANTINE_KINDS} == {
            "msg-corrupt",
            "msg-dup",
            "msg-reorder",
            "chunk-bitflip",
            "torn-write",
            "stale-read",
            "ckpt-corrupt",
        }

    @pytest.mark.parametrize(
        "text, match",
        [
            ("msg-corrupt:1@iter=1,for=0.1", "for="),
            ("chunk-bitflip:1@iter=1,factor=2", "factor="),
            ("crash:1@iter=1,count=2", "count="),
            ("msg-corrupt:1@iter=1,count=0", "count="),
            ("msg-dup:1@iter=1,delay=0.01", "delay="),
            ("msg-reorder:1@iter=1,delay=0", "delay="),
            ("crash:1@iter=1,bogus=3", "expected down=, for=, factor=, "
                                       "count=, or delay="),
        ],
    )
    def test_invalid_options_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            spec = parse_fault_spec(text)
            spec.validate(_fault_config())

    def test_ckpt_corrupt_requires_checkpointing(self):
        spec = parse_fault_spec("ckpt-corrupt:0@iter=1")
        with pytest.raises(ValueError, match="checkpoint"):
            spec.validate(_fault_config(checkpointing=False))

    def test_plan_file_round_trip_with_comments(self, tmp_path):
        path = tmp_path / "plan.faults"
        path.write_text(
            "# reproducer for episode 3\n"
            "\n"
            "torn-write:1@iter=1,count=2\n"
            "  # indented comment\n"
            "crash:0@iter=2\n"
        )
        plan = FaultPlan.load(str(path))
        assert [s.describe() for s in plan.specs] == [
            "torn-write:1@iter=1,count=2",
            "crash:0@iter=2",
        ]
        out = tmp_path / "copy.faults"
        plan.dump(str(out), header=("written by the test",))
        text = out.read_text()
        assert text.startswith("# written by the test")
        again = FaultPlan.load(str(out))
        assert [s.describe() for s in again.specs] == [
            s.describe() for s in plan.specs
        ]


# ---------------------------------------------------------------------------
# Keystone invariant under every byzantine kind (hardened stack)
# ---------------------------------------------------------------------------


class TestHardenedByteIdentity:
    @pytest.mark.parametrize(
        "spec",
        [
            "msg-corrupt:1@iter=1,count=2",
            "msg-dup:1@iter=1,count=2",
            "msg-reorder:1@iter=1,count=2,delay=0.002",
            "chunk-bitflip:1@iter=1,count=2",
            "torn-write:1@iter=1,count=2",
            "stale-read:1@iter=1,count=2",
            "ckpt-corrupt:1@iter=1,count=4",
        ],
    )
    def test_each_kind_is_byte_identical(self, small_graph, pr_baseline, spec):
        result, _ = _run(small_graph, [spec])
        _assert_byte_identical(result, pr_baseline)

    def test_byzantine_mixed_with_crash(self, small_graph, pr_baseline):
        result, cluster = _run(
            small_graph,
            ["torn-write:1@iter=0,count=2", "crash:0@iter=2"],
        )
        _assert_byte_identical(result, pr_baseline)
        assert cluster.last_fault_timeline.rounds

    def test_corruption_counters_move(self, small_graph, pr_baseline):
        result, cluster = _run(small_graph, ["msg-corrupt:1@iter=1,count=2"])
        _assert_byte_identical(result, pr_baseline)
        assert cluster.last_network.messages_corrupted > 0

    def test_torn_write_repaired_at_the_store(self, small_graph, pr_baseline):
        result, cluster = _run(small_graph, ["torn-write:1@iter=1,count=2"])
        _assert_byte_identical(result, pr_baseline)
        assert sum(s.torn_writes_repaired for s in cluster.last_stores) > 0


# ---------------------------------------------------------------------------
# Edge case: duplicate delivery (satellite)
# ---------------------------------------------------------------------------


class TestDuplicateDelivery:
    def test_hardened_duplicates_are_suppressed(self, small_graph, pr_baseline):
        result, cluster = _run(small_graph, ["msg-dup:1@iter=1,count=2"])
        _assert_byte_identical(result, pr_baseline)
        assert cluster.last_network.messages_duplicated > 0
        assert cluster.last_network.duplicates_suppressed > 0

    def test_unhardened_duplicate_crashes_the_engine(self, small_graph):
        """Pre-hardening pin: without sequence numbers a duplicated
        reply reaches an engine that no longer expects it."""
        with pytest.raises(RuntimeError, match="unexpected reply"):
            _run(
                small_graph,
                ["msg-dup:1@iter=1,count=2"],
                integrity_checks=False,
            )


# ---------------------------------------------------------------------------
# Edge case: reordering across a partition heal (satellite)
# ---------------------------------------------------------------------------


class TestPartitionHealReordering:
    SPECS = [
        "partition:1@iter=1,for=0.01",
        "msg-reorder:1@iter=1,count=2,delay=0.002",
    ]

    def test_hardened_reordering_is_byte_identical(
        self, small_graph, pr_baseline
    ):
        result, cluster = _run(small_graph, self.SPECS)
        _assert_byte_identical(result, pr_baseline)
        assert cluster.last_network.messages_reordered > 0

    def test_unhardened_reordering_pinned(self, small_graph, pr_baseline):
        """Pre-hardening pin: reordering alone stays byte-identical even
        without integrity checks, because every request/reply pair is
        matched by request id rather than arrival order.  (Duplication
        is the kind that breaks the unhardened stack — see
        TestDuplicateDelivery.)"""
        result, cluster = _run(
            small_graph, self.SPECS, integrity_checks=False
        )
        _assert_byte_identical(result, pr_baseline)
        assert cluster.last_network.messages_reordered > 0


# ---------------------------------------------------------------------------
# Checkpoint-replica rot: quarantine, re-replication, graceful refusal
# ---------------------------------------------------------------------------


class TestCheckpointQuarantine:
    def test_rot_on_one_replica_is_repaired(self, small_graph):
        config_kw = dict(vertex_replicas=2)
        baseline = ChaosCluster(_fault_config(**config_kw)).run(
            PageRank(iterations=3), small_graph
        )
        result, cluster = _run(
            small_graph,
            ["ckpt-corrupt:1@iter=1,count=64", "crash:0@iter=1"],
            **config_kw,
        )
        _assert_byte_identical(result, baseline)
        registry = cluster.last_registry
        assert registry.replicas_quarantined > 0
        assert registry.replicas_repaired == registry.replicas_quarantined

    def test_rot_on_every_replica_is_diagnosed(self, small_graph):
        cluster = ChaosCluster(_fault_config(vertex_replicas=2))
        specs = [
            f"ckpt-corrupt:{m}@iter=1,count=64" for m in range(4)
        ] + ["crash:0@iter=1"]
        plan = FaultPlan([parse_fault_spec(s) for s in specs])
        with pytest.raises(UnrecoverableJobError) as excinfo:
            cluster.run(PageRank(iterations=3), small_graph, fault_plan=plan)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis.cause == "checkpoint-unreadable"
        assert diagnosis.quarantined
        assert "unrecoverable job" in diagnosis.render()
        # The registry stays inspectable after the refusal.
        assert cluster.last_registry.replicas_quarantined > 0


# ---------------------------------------------------------------------------
# Trace-report recovery decomposition: retry_wait / integrity categories
# ---------------------------------------------------------------------------


class TestRecoveryCategories:
    @pytest.fixture(scope="class")
    def traced_quarantine_run(self, small_graph):
        from repro.obs import Tracer, chrome_trace_dict, summarize_trace

        tracer = Tracer(sample_interval=None)
        cluster = ChaosCluster(
            _fault_config(vertex_replicas=2), tracer=tracer
        )
        specs = ["ckpt-corrupt:1@iter=1,count=64", "crash:0@iter=1"]
        cluster.run(
            PageRank(iterations=3),
            small_graph,
            fault_plan=FaultPlan([parse_fault_spec(s) for s in specs]),
        )
        return summarize_trace(chrome_trace_dict(tracer))

    def test_new_categories_are_ingested(self, traced_quarantine_run):
        summary = traced_quarantine_run
        assert summary.category_seconds.get("retry_wait", 0.0) > 0
        assert summary.category_seconds.get("integrity", 0.0) > 0
        assert summary.instants.get("integrity.ckpt_quarantine", 0) > 0

    def test_report_shows_overlapping_detail_rows(self, traced_quarantine_run):
        from repro.obs import format_trace_report

        report = format_trace_report(traced_quarantine_run)
        assert "recovery decomposition" in report
        assert "retry_wait" in report
        assert "integrity" in report
        assert "(overlapping)" in report

    def test_useful_subtracts_only_wall_categories(self, traced_quarantine_run):
        """retry_wait/integrity spans overlap the lost/restore windows;
        subtracting them too would double-count."""
        import re

        from repro.obs import (
            RECOVERY_WALL_CATEGORIES,
            format_trace_report,
        )

        summary = traced_quarantine_run
        assert RECOVERY_WALL_CATEGORIES == ("lost", "restore")
        report = format_trace_report(summary)
        match = re.search(r"useful\s+([0-9.]+)s", report)
        assert match is not None
        useful = float(match.group(1))
        wall = sum(
            summary.category_seconds.get(cat, 0.0)
            for cat in RECOVERY_WALL_CATEGORIES
        )
        assert useful == pytest.approx(
            summary.duration - wall, abs=1e-6
        )


# ---------------------------------------------------------------------------
# Deadline watchdog
# ---------------------------------------------------------------------------


class TestDeadlineWatchdog:
    def test_impossible_deadline_raises(self, small_graph):
        cluster = ChaosCluster(_fault_config())
        with pytest.raises(DeadlineExceeded, match="deadline"):
            cluster.run(
                PageRank(iterations=3),
                small_graph,
                deadline_seconds=1e-6,
            )

    def test_generous_deadline_is_invisible(self, small_graph, pr_baseline):
        cluster = ChaosCluster(_fault_config())
        result = cluster.run(
            PageRank(iterations=3), small_graph, deadline_seconds=1e6
        )
        _assert_byte_identical(result, pr_baseline)


# ---------------------------------------------------------------------------
# Pre-hardening divergence pins (integrity_checks=False)
# ---------------------------------------------------------------------------


class TestUnhardenedDivergence:
    @pytest.mark.parametrize(
        "spec",
        [
            "msg-corrupt:1@iter=1,count=2",
            "chunk-bitflip:1@iter=1,count=2",
            "torn-write:1@iter=1,count=2",
        ],
    )
    def test_corruption_silently_diverges(self, small_graph, pr_baseline, spec):
        result, _ = _run(small_graph, [spec], integrity_checks=False)
        assert set(result.values) == set(pr_baseline.values)
        diverged = any(
            result.values[name].tobytes() != pr_baseline.values[name].tobytes()
            for name in pr_baseline.values
        )
        assert diverged, f"{spec} should corrupt the result when unhardened"

    def test_kind_enum_matches_grammar(self):
        for kind in BYZANTINE_KINDS:
            assert isinstance(kind, FaultKind)

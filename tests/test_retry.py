"""Direct unit coverage for :mod:`repro.net.retry`.

The two contracts every retry site in the engine leans on: delays are
*bounded* (geometric growth to a cap, jitter only ever shortens) and
*deterministic* (a pure function of ``(config.seed, machine,
request_id, attempt)``, independent of call order).
"""

from __future__ import annotations

import random

import pytest

from repro.net.retry import (
    RetryPolicy,
    backoff_delays,
    jittered_delay,
    retry_rng_seed,
)


POLICY = RetryPolicy(base=0.01, factor=2.0, cap=0.5, attempts=5,
                     jitter=0.25)


def _raw(policy, attempt):
    exponent = min(attempt, policy.attempts - 1)
    return min(policy.base * policy.factor ** exponent, policy.cap)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(base=0.0),
        dict(base=-1.0),
        dict(base=0.1, factor=0.5),
        dict(base=0.1, attempts=0),
        dict(base=0.1, jitter=1.0),
        dict(base=0.1, jitter=-0.1),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBounds:
    def test_delay_never_exceeds_raw_schedule_or_cap(self):
        for attempt in range(12):
            for request_id in range(8):
                delay = jittered_delay(POLICY, attempt, 7, 1, request_id)
                raw = _raw(POLICY, attempt)
                assert 0.0 < delay <= raw <= POLICY.cap

    def test_jitter_only_shortens_within_its_fraction(self):
        for attempt in range(12):
            delay = jittered_delay(POLICY, attempt, 7, 1, attempt)
            raw = _raw(POLICY, attempt)
            assert delay >= raw * (1.0 - POLICY.jitter)

    def test_schedule_caps_after_attempts(self):
        flat = RetryPolicy(base=0.01, factor=2.0, cap=10.0, attempts=3,
                           jitter=0.0)
        rng = random.Random(0)
        delays = [flat.delay(a, rng) for a in range(8)]
        assert delays[0] < delays[1] < delays[2]
        assert delays[2:] == [delays[2]] * 6  # repeats, never grows

    def test_cap_binds_before_attempts_run_out(self):
        capped = RetryPolicy(base=1.0, factor=10.0, cap=5.0, attempts=6,
                             jitter=0.0)
        rng = random.Random(0)
        assert capped.delay(4, rng) == 5.0


class TestDeterminism:
    def test_same_identity_same_delay(self):
        first = jittered_delay(POLICY, 3, 7, 2, 41)
        second = jittered_delay(POLICY, 3, 7, 2, 41)
        assert first == second

    def test_each_identity_component_perturbs_the_delay(self):
        base = jittered_delay(POLICY, 3, 7, 2, 41)
        assert jittered_delay(POLICY, 3, 8, 2, 41) != base
        assert jittered_delay(POLICY, 3, 7, 3, 41) != base
        assert jittered_delay(POLICY, 3, 7, 2, 42) != base

    def test_seed_mix_is_injective_on_small_grid(self):
        seeds = {
            retry_rng_seed(cs, m, rid)
            for cs in range(4) for m in range(4) for rid in range(16)
        }
        assert len(seeds) == 4 * 4 * 16

    def test_backoff_stream_matches_first_jittered_delay(self):
        stream = backoff_delays(POLICY, 7, 2, 41)
        assert next(stream) == jittered_delay(POLICY, 0, 7, 2, 41)

    def test_backoff_stream_is_reproducible_and_endless_enough(self):
        a = backoff_delays(POLICY, 7, 2, 41)
        b = backoff_delays(POLICY, 7, 2, 41)
        first = [next(a) for _ in range(20)]
        second = [next(b) for _ in range(20)]
        assert first == second
        assert all(0.0 < d <= POLICY.cap for d in first)

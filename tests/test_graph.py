"""Unit tests for the graph substrate: formats, generators, transforms."""

import numpy as np
import pytest

from repro.graph import (
    EdgeList,
    add_reverse_edges,
    bytes_per_edge,
    data_commons_like,
    degree_histogram,
    in_degrees,
    out_degrees,
    permute_vertices,
    read_edges,
    rmat_edge_count,
    rmat_graph,
    to_undirected,
    write_edges,
)
from repro.graph.rmat import RmatParameters
from repro.graph.stats import gini_coefficient, partition_edge_counts


class TestEdgeList:
    def test_basic_construction(self):
        edges = EdgeList(num_vertices=4, src=[0, 1], dst=[2, 3])
        assert edges.num_edges == 2
        assert not edges.weighted

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EdgeList(num_vertices=4, src=[0, 1], dst=[2])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError):
            EdgeList(num_vertices=2, src=[0], dst=[5])

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError):
            EdgeList(num_vertices=2, src=[-1], dst=[0])

    def test_weight_length_checked(self):
        with pytest.raises(ValueError):
            EdgeList(num_vertices=4, src=[0], dst=[1], weight=[0.5, 0.6])

    def test_storage_bytes_compact_format(self):
        edges = EdgeList(num_vertices=100, src=[0, 1], dst=[2, 3])
        assert edges.storage_bytes() == 2 * 8  # 4+4 bytes per edge

    def test_storage_bytes_weighted(self):
        edges = EdgeList(
            num_vertices=100, src=[0], dst=[2], weight=[0.5]
        )
        assert edges.storage_bytes() == 12

    def test_bytes_per_edge_non_compact(self):
        assert bytes_per_edge(2**33, weighted=False) == 16
        assert bytes_per_edge(2**33, weighted=True) == 24

    def test_subset_preserves_weights(self):
        edges = EdgeList(
            num_vertices=10, src=[0, 1, 2], dst=[3, 4, 5], weight=[1.0, 2.0, 3.0]
        )
        sub = edges.subset(np.array([0, 2]))
        assert list(sub.src) == [0, 2]
        assert list(sub.weight) == [1.0, 3.0]

    def test_shuffled_is_permutation(self):
        edges = EdgeList(num_vertices=10, src=np.arange(9), dst=np.arange(1, 10))
        shuffled = edges.shuffled(np.random.default_rng(0))
        assert sorted(zip(shuffled.src, shuffled.dst)) == sorted(
            zip(edges.src, edges.dst)
        )


class TestBinaryFormat:
    def test_roundtrip_unweighted(self, tmp_path):
        edges = rmat_graph(6, seed=1)
        path = str(tmp_path / "edges.bin")
        size = write_edges(edges, path)
        assert size == edges.storage_bytes()
        loaded = read_edges(path, edges.num_vertices, weighted=False)
        assert np.array_equal(loaded.src, edges.src)
        assert np.array_equal(loaded.dst, edges.dst)

    def test_roundtrip_weighted(self, tmp_path):
        edges = rmat_graph(6, seed=1, weighted=True)
        path = str(tmp_path / "edges.bin")
        write_edges(edges, path)
        loaded = read_edges(path, edges.num_vertices, weighted=True)
        # Compact format stores float32 weights.
        assert np.allclose(loaded.weight, edges.weight, atol=1e-6)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 13)
        with pytest.raises(ValueError, match="not a multiple"):
            read_edges(str(path), 100, weighted=False)


class TestRmat:
    def test_sizes_follow_scale(self):
        graph = rmat_graph(10, seed=0)
        assert graph.num_vertices == 1024
        assert graph.num_edges == rmat_edge_count(10) == 16384

    def test_deterministic_for_seed(self):
        a = rmat_graph(8, seed=3)
        b = rmat_graph(8, seed=3)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = rmat_graph(8, seed=3)
        b = rmat_graph(8, seed=4)
        assert not np.array_equal(a.src, b.src)

    def test_degree_skew_present(self):
        graph = rmat_graph(12, seed=0)
        gini = gini_coefficient(out_degrees(graph))
        assert gini > 0.4, "RMAT should be heavily skewed"

    def test_unpermuted_low_ids_dominate(self):
        """Raw RMAT concentrates edges at low vertex ids (quadrant a)."""
        graph = rmat_graph(12, seed=0, permute=False)
        half = graph.num_vertices // 2
        low = int((graph.src < half).sum())
        assert low > 0.6 * graph.num_edges

    def test_permutation_removes_id_correlation(self):
        graph = rmat_graph(12, seed=0, permute=True)
        half = graph.num_vertices // 2
        low = int((graph.src < half).sum())
        assert 0.4 * graph.num_edges < low < 0.6 * graph.num_edges

    def test_weights_in_unit_interval(self):
        graph = rmat_graph(8, seed=0, weighted=True)
        assert (graph.weight > 0).all() and (graph.weight <= 1).all()

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            RmatParameters(a=0.9, b=0.3, c=0.1, d=0.1)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat_edge_count(-1)


class TestDataCommonsLike:
    def test_average_degree_close_to_target(self):
        graph = data_commons_like(5000, avg_degree=10.0, seed=1)
        assert graph.num_edges / graph.num_vertices == pytest.approx(10.0, rel=0.2)

    def test_no_self_links(self):
        graph = data_commons_like(2000, avg_degree=8.0, seed=2)
        assert (graph.src != graph.dst).all()

    def test_in_degree_skew(self):
        graph = data_commons_like(5000, avg_degree=10.0, seed=3)
        gini = gini_coefficient(in_degrees(graph))
        assert gini > 0.3

    def test_deterministic(self):
        a = data_commons_like(1000, seed=7)
        b = data_commons_like(1000, seed=7)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_too_few_pages_rejected(self):
        with pytest.raises(ValueError):
            data_commons_like(1)


class TestConvert:
    def test_add_reverse_doubles_edges(self):
        graph = rmat_graph(6, seed=0, weighted=True)
        doubled = add_reverse_edges(graph)
        assert doubled.num_edges == 2 * graph.num_edges

    def test_to_undirected_symmetric(self):
        graph = rmat_graph(8, seed=1, weighted=True)
        undirected = to_undirected(graph)
        forward = set(zip(undirected.src, undirected.dst))
        assert all((d, s) in forward for s, d in forward)

    def test_to_undirected_weights_symmetric(self):
        graph = rmat_graph(8, seed=1, weighted=True)
        undirected = to_undirected(graph)
        weight_of = {}
        for s, d, w in zip(undirected.src, undirected.dst, undirected.weight):
            weight_of[(s, d)] = w
        for (s, d), w in weight_of.items():
            assert weight_of[(d, s)] == w

    def test_to_undirected_drops_self_loops(self):
        graph = EdgeList(num_vertices=4, src=[0, 1, 2], dst=[0, 2, 1])
        undirected = to_undirected(graph)
        assert (undirected.src != undirected.dst).all()
        assert undirected.num_edges == 2  # single undirected edge {1,2}

    def test_to_undirected_keeps_min_weight_of_parallels(self):
        graph = EdgeList(
            num_vertices=3,
            src=[0, 1, 0],
            dst=[1, 0, 1],
            weight=[5.0, 2.0, 7.0],
        )
        undirected = to_undirected(graph)
        assert undirected.num_edges == 2
        assert set(undirected.weight) == {2.0}

    def test_permute_preserves_structure(self):
        graph = rmat_graph(7, seed=2)
        permuted = permute_vertices(graph, seed=1)
        assert permuted.num_edges == graph.num_edges
        assert sorted(np.bincount(permuted.src, minlength=128)) == sorted(
            np.bincount(graph.src, minlength=128)
        )


class TestStats:
    def test_degrees(self):
        edges = EdgeList(num_vertices=4, src=[0, 0, 1], dst=[1, 2, 2])
        assert list(out_degrees(edges)) == [2, 1, 0, 0]
        assert list(in_degrees(edges)) == [0, 1, 2, 0]

    def test_degree_histogram(self):
        hist = degree_histogram(np.array([0, 1, 1, 3]))
        assert hist == {0: 1, 1: 2, 3: 1}

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 5)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        degrees = np.zeros(1000)
        degrees[0] = 10_000
        assert gini_coefficient(degrees) > 0.99

    def test_partition_edge_counts(self):
        edges = EdgeList(num_vertices=8, src=[0, 1, 4, 7], dst=[1, 2, 5, 6])
        boundaries = np.array([0, 4, 8])
        assert list(partition_edge_counts(edges, boundaries)) == [2, 2]

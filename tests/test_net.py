"""Unit tests for the network substrate."""

import pytest

from repro.net import GIGE_1, GIGE_40, Network, NetworkConfig
from repro.sim import Simulator
from repro.sim.engine import SimulationError


class TestNetworkConfig:
    def test_presets_bandwidth_ordering(self):
        assert GIGE_40.bandwidth == 40 * GIGE_1.bandwidth

    def test_round_trip_is_twice_one_way(self):
        assert GIGE_40.round_trip() == pytest.approx(2 * GIGE_40.latency)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth=0, latency=1e-6)
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth=1e9, latency=-1)


class TestTransport:
    def _network(self, machines=2, config=None):
        sim = Simulator()
        return sim, Network(sim, machines, config or GIGE_40)

    def test_remote_delivery_time(self):
        sim, network = self._network()
        network.register(1, "svc")
        size = 1_000_000
        delivered = network.send(0, 1, "svc", "data", size)
        sim.run_until(delivered)
        wire = size + Network.MESSAGE_OVERHEAD
        expected = wire / GIGE_40.bandwidth * 2 + GIGE_40.latency
        assert sim.now == pytest.approx(expected)

    def test_local_delivery_is_free(self):
        sim, network = self._network()
        network.register(0, "svc")
        delivered = network.send(0, 0, "svc", "data", 10**9)
        sim.run_until(delivered)
        assert sim.now == 0.0
        assert network.total_bytes() == 0

    def test_message_payload_and_metadata(self):
        sim, network = self._network()
        mailbox = network.register(1, "svc")
        network.send(0, 1, "svc", "ping", 100, payload={"x": 1})
        sim.run()
        ok, message = mailbox.try_get()
        assert ok
        assert message.src == 0 and message.dst == 1
        assert message.kind == "ping" and message.payload == {"x": 1}

    def test_switch_counts_remote_bytes(self):
        sim, network = self._network()
        network.register(1, "svc")
        network.send(0, 1, "svc", "a", 1000)
        sim.run()
        assert network.total_bytes() == 1000 + Network.MESSAGE_OVERHEAD
        assert network.switch.messages_forwarded == 1

    def test_concurrent_sends_share_nic(self):
        """Two messages from one sender serialize on its egress NIC."""
        sim, network = self._network(machines=3)
        network.register(1, "svc")
        network.register(2, "svc")
        arrivals = []
        size = 5_000_000  # 1 ms serialization at 5 GB/s
        for dst in (1, 2):
            network.send(0, dst, "svc", "bulk", size).subscribe(
                lambda e: arrivals.append(sim.now)
            )
        sim.run()
        assert len(arrivals) == 2
        # Second message waits for the first's egress serialization.
        assert arrivals[1] - arrivals[0] == pytest.approx(
            (size + Network.MESSAGE_OVERHEAD) / GIGE_40.bandwidth
        )

    def test_slow_network_takes_longer(self):
        size = 10_000_000
        times = {}
        for name, config in (("fast", GIGE_40), ("slow", GIGE_1)):
            sim = Simulator()
            network = Network(sim, 2, config)
            network.register(1, "svc")
            done = network.send(0, 1, "svc", "x", size)
            sim.run_until(done)
            times[name] = sim.now
        assert times["slow"] > 10 * times["fast"]

    def test_unknown_service_raises(self):
        sim, network = self._network()
        with pytest.raises(SimulationError, match="no service"):
            network.send(0, 1, "missing", "x", 10)

    def test_invalid_destination_raises(self):
        sim, network = self._network()
        network.register(1, "svc")
        with pytest.raises(SimulationError, match="invalid destination"):
            network.send(0, 7, "svc", "x", 10)

    def test_nic_byte_accounting(self):
        sim, network = self._network()
        network.register(1, "svc")
        network.send(0, 1, "svc", "x", 500)
        sim.run()
        wire = 500 + Network.MESSAGE_OVERHEAD
        assert network.nics[0].bytes_sent() == wire
        assert network.nics[1].bytes_received() == wire

"""Vectorization-readiness & parallel-safety analysis (CHX013–017).

Covers the loop dependence classifier (:mod:`repro.analysis.flow.loops`),
the process-boundary escape analysis (:mod:`repro.analysis.flow.escape`),
the five deep rules riding on them, the finding baseline ratchet, the
analyzer-version cache key, the Workload-dispatch call-graph contract,
and the fused static×profile kernel worklist (``check --kernel-report``).
"""

import ast
import json
import textwrap

import pytest

from repro.algorithms import PageRank
from repro.analysis.baseline import (
    baseline_stats,
    fingerprint,
    load_baseline,
    split_new,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.flow import (
    CallGraph,
    DeepEngine,
    ProjectIndex,
    build_call_graph,
)
from repro.analysis.flow.escape import (
    aliased_constructions,
    per_machine_classes,
    shared_mutable_globals,
    unpicklable_captures,
)
from repro.analysis.flow.kernels import (
    KERNEL_REPORT_VERSION,
    build_kernel_report,
    check_kernel_report_schema,
    format_kernel_report,
)
from repro.analysis.flow.loops import (
    ELEMENTWISE,
    SEGMENTED,
    SEQUENTIAL,
    classify_function,
    hot_functions,
    loop_infos_in,
)
from repro.cli import main
from repro.core.runtime import run_algorithm
from repro.graph.rmat import rmat_graph
from repro.obs.host import HostProfiler, check_host_schema


def build_pkg(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def deep_check(path, rules=None):
    engine = DeepEngine()
    if rules is not None:
        engine.rules = [r for r in engine.rules if r.rule_id in rules]
    return engine.check_paths([str(path)])


def findings_of(result, rule_id):
    return [f for f in result.result.findings if f.rule_id == rule_id]


def hot_func(tmp_path, body, name="scatter_chunk"):
    """Index a single hot kernel function and return its FunctionInfo."""
    build_pkg(
        tmp_path,
        {
            "core/__init__.py": "",
            "core/kern.py": body,
        },
    )
    index = ProjectIndex.build([str(tmp_path)])
    funcs = [f for f in hot_functions(index) if f.name == name]
    assert funcs, f"fixture must define a hot function named {name}"
    return funcs[0]


# ---------------------------------------------------------------------------
# loop classification
# ---------------------------------------------------------------------------


class TestLoopClassification:
    def test_elementwise_loop(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def scatter_chunk(edges, out):
                for i, e in enumerate(edges):
                    out[i] = e * 2.0
            """,
        )
        classification, infos = classify_function(func)
        assert classification == ELEMENTWISE
        assert len(infos) == 1
        assert infos[0].carried == []

    def test_accumulator_is_segmented_reduction(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def scatter_chunk(edges):
                total = 0.0
                for e in edges:
                    total += e
                return total
            """,
        )
        classification, infos = classify_function(func)
        assert classification == SEGMENTED
        assert [d.kind for d in infos[0].carried] == ["reduction"]

    def test_append_is_segmented_reduction(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def scatter_chunk(edges):
                out = []
                for e in edges:
                    out.append(e * 2.0)
                return out
            """,
        )
        classification, _infos = classify_function(func)
        assert classification == SEGMENTED

    def test_histogram_write_is_segmented_reduction(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def gather_chunk(edges, hist):
                for src, dst in edges:
                    hist[dst] += 1.0
            """,
            name="gather_chunk",
        )
        classification, _infos = classify_function(func)
        assert classification == SEGMENTED

    def test_recurrence_is_sequential(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def scatter_chunk(edges):
                state = 0.0
                out = []
                for e in edges:
                    state = state * 0.5 + e
                    out.append(state)
                return out
            """,
        )
        classification, infos = classify_function(func)
        assert classification == SEQUENTIAL
        seq = [d for d in infos[0].carried if d.kind == "sequential"]
        assert [d.name for d in seq] == ["state"]

    def test_plain_store_at_data_dependent_index_is_sequential(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def gather_chunk(edges, values):
                for src, dst in edges:
                    values[dst] = values[src]
            """,
            name="gather_chunk",
        )
        classification, _infos = classify_function(func)
        assert classification == SEQUENTIAL

    def test_loop_free_body_is_elementwise(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def apply_partition(values, accum):
                return values + accum
            """,
            name="apply_partition",
        )
        classification, infos = classify_function(func)
        assert classification == ELEMENTWISE
        assert infos == []

    def test_min_fold_is_reduction(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def gather_chunk(edges):
                best = 1e30
                for e in edges:
                    best = min(best, e)
                return best
            """,
            name="gather_chunk",
        )
        classification, _infos = classify_function(func)
        assert classification == SEGMENTED

    def test_allocation_escape_tracking(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def scatter_chunk(edges, out):
                for e in edges:
                    out.append({"edge": e})
            """,
        )
        infos = loop_infos_in(func)
        assert len(infos) == 1
        allocs = infos[0].allocations
        assert len(allocs) == 1
        assert allocs[0].escapes is True

    def test_hoistable_attribute_chain(self, tmp_path):
        func = hot_func(
            tmp_path,
            """
            def scatter_chunk(self, edges, out):
                for i, e in enumerate(edges):
                    out[i] = e * self.config.device.weight
                    if e > self.config.device.weight:
                        out[i] = 0.0
            """,
        )
        infos = loop_infos_in(func)
        chains = {h.chain: h.reads for h in infos[0].hoistable}
        assert chains == {"self.config.device.weight": 2}


# ---------------------------------------------------------------------------
# escape analysis
# ---------------------------------------------------------------------------


ESCAPE_FIXTURE = {
    "core/__init__.py": "",
    "core/machines.py": """
        def ticket_stream():
            n = 0
            while True:
                yield n
                n += 1

        class Engine:
            def __init__(self, machine, network):
                self.machine = machine
                self.network = network
                self.on_done = lambda: machine
                self.tickets = ticket_stream()

        def build(count, network):
            return [Engine(m, network) for m in range(count)]
    """,
}


class TestEscapeAnalysis:
    def _index(self, tmp_path, files):
        build_pkg(tmp_path, files)
        index = ProjectIndex.build([str(tmp_path)])
        return index, CallGraph.build(index)

    def test_per_machine_classes_need_machine_param(self, tmp_path):
        index, _graph = self._index(tmp_path, ESCAPE_FIXTURE)
        assert list(per_machine_classes(index)) == ["core.machines.Engine"]

    def test_unpicklable_captures(self, tmp_path):
        index, _graph = self._index(tmp_path, ESCAPE_FIXTURE)
        captures = unpicklable_captures(index)
        assert [(c.attr, c.reason.split(" (")[0]) for c in captures] == [
            ("on_done", "a lambda"),
            ("tickets", "a running generator"),
        ]

    def test_aliased_construction_names_shared_args(self, tmp_path):
        index, graph = self._index(tmp_path, ESCAPE_FIXTURE)
        sites = aliased_constructions(index, graph)
        assert len(sites) == 1
        assert sites[0].cls == "core.machines.Engine"
        assert sites[0].shared == ("network",)

    def test_shared_mutable_global_on_machine_path(self, tmp_path):
        index, graph = self._index(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/state.py": """
                    ROUTES = {}

                    class Engine:
                        def __init__(self, machine):
                            self.machine = machine

                        def step(self):
                            return ROUTES.get(self.machine)
                """,
            },
        )
        shared = shared_mutable_globals(index, graph)
        assert [(g.name, g.via) for g in shared] == [
            ("ROUTES", "core.state.Engine.step")
        ]

    def test_frozen_global_not_flagged(self, tmp_path):
        index, graph = self._index(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/state.py": """
                    ROUTES = ("a", "b")

                    class Engine:
                        def __init__(self, machine):
                            self.machine = machine

                        def step(self):
                            return ROUTES[self.machine]
                """,
            },
        )
        assert shared_mutable_globals(index, graph) == []


# ---------------------------------------------------------------------------
# planted fixtures: each rule fires exactly once
# ---------------------------------------------------------------------------


CHX013_FIXTURE = {
    "core/__init__.py": "",
    "core/kern.py": """
        def scatter_chunk(edges):
            state = 0.0
            out = []
            for e in edges:
                state = state * 0.5 + e
                out.append(state)
            return out
    """,
}

CHX014_FIXTURE = {
    "core/__init__.py": "",
    "core/kern.py": """
        def gather_chunk(edges, out):
            for e in edges:
                out.append({"edge": e, "weight": 1.0})
    """,
}

CHX015_FIXTURE = {
    "core/__init__.py": "",
    "core/machines.py": """
        class Engine:
            def __init__(self, machine, network):
                self.machine = machine
                self.network = network

        def build(count, network):
            return [Engine(m, network) for m in range(count)]
    """,
}

CHX016_FIXTURE = {
    "core/__init__.py": "",
    "core/reduce.py": """
        def merge(accum, other):
            accum += other
            return accum
    """,
}

CHX017_FIXTURE = {
    "core/__init__.py": "",
    "core/state.py": """
        CACHE = {}

        class Engine:
            def __init__(self, machine):
                self.machine = machine

            def step(self):
                return CACHE.get(self.machine)
    """,
}


class TestPlantedFixtures:
    @pytest.mark.parametrize(
        "rule_id, fixture, fragment",
        [
            ("CHX013", CHX013_FIXTURE, "sequential dependence through state"),
            ("CHX014", CHX014_FIXTURE, "escapes the loop"),
            ("CHX015", CHX015_FIXTURE, "shared argument(s) [network]"),
            ("CHX016", CHX016_FIXTURE, "additive fold"),
            ("CHX017", CHX017_FIXTURE, "module-level mutable 'CACHE'"),
        ],
    )
    def test_rule_fires_exactly_once(self, tmp_path, rule_id, fixture, fragment):
        build_pkg(tmp_path, fixture)
        result = deep_check(tmp_path)
        found = findings_of(result, rule_id)
        assert len(found) == 1, [str(f) for f in found]
        assert fragment in found[0].message

    def test_chx015_unpicklable_capture_mode(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/machines.py": """
                    class Engine:
                        def __init__(self, machine):
                            self.machine = machine
                            self.log = open("/tmp/x.log", "w")
                """,
            },
        )
        result = deep_check(tmp_path)
        found = findings_of(result, "CHX015")
        assert len(found) == 1
        assert "open file handle" in found[0].message

    def test_chx016_exempt_when_caller_fixes_order(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/reduce.py": """
                    def canonical_update_order(updates):
                        return sorted(updates)

                    def merge(accum, other):
                        accum += other
                        return accum

                    def fold_all(accum, updates):
                        for u in canonical_update_order(updates):
                            accum = merge(accum, u)
                        return accum
                """,
            },
        )
        result = deep_check(tmp_path)
        assert findings_of(result, "CHX016") == []

    def test_chx013_ignores_reduction_loops(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/kern.py": """
                    def scatter_chunk(edges):
                        total = 0.0
                        for e in edges:
                            total += e
                        return total
                """,
            },
        )
        result = deep_check(tmp_path)
        assert findings_of(result, "CHX013") == []


# ---------------------------------------------------------------------------
# suppression spans on multi-line loop headers
# ---------------------------------------------------------------------------


class TestLoopHeaderSuppression:
    def test_trailing_comment_on_iterable_suppresses_header_finding(
        self, tmp_path
    ):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/kern.py": """
                    def scatter_chunk(edges):
                        state = 0.0
                        out = []
                        for e in (
                            edges  # chaos: ignore[CHX013] recurrence is intentional
                        ):
                            state = state * 0.5 + e
                            out.append(state)
                        return out
                """,
            },
        )
        result = deep_check(tmp_path)
        assert findings_of(result, "CHX013") == []
        assert any(
            f.rule_id == "CHX013" for f in result.result.suppressed
        )

    def test_one_liner_body_on_header_closing_line_suppresses(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/kern.py": """
                    def scatter_chunk(edges, out):
                        state = 0.0
                        for e in (
                            edges
                        ): state = state * 0.5 + out.append(state)  # chaos: ignore[CHX013]
                """,
            },
        )
        result = deep_check(tmp_path)
        assert findings_of(result, "CHX013") == []
        assert any(
            f.rule_id == "CHX013" for f in result.result.suppressed
        )

    def test_comment_inside_body_does_not_silence_header(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/kern.py": """
                    def scatter_chunk(edges):
                        state = 0.0
                        out = []
                        for e in edges:
                            state = state * 0.5 + e  # chaos: ignore[CHX013]
                            out.append(state)
                        return out
                """,
            },
        )
        result = deep_check(tmp_path)
        assert len(findings_of(result, "CHX013")) == 1


# ---------------------------------------------------------------------------
# analyzer-version cache key (satellite)
# ---------------------------------------------------------------------------


class TestAnalyzerVersionCacheKey:
    def test_version_bump_invalidates_cache(self, tmp_path, monkeypatch):
        pkg = build_pkg(tmp_path / "pkg", CHX013_FIXTURE)
        cache = tmp_path / "cache"
        engine = DeepEngine()
        first = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert first.cache_hit is False
        second = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert second.cache_hit is True

        monkeypatch.setattr(
            "repro.analysis.flow.engine.ANALYZER_VERSION", 99
        )
        third = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert third.cache_hit is False
        assert [f.rule_id for f in third.result.findings] == ["CHX013"]


# ---------------------------------------------------------------------------
# Workload dispatch through the call graph (satellite)
# ---------------------------------------------------------------------------


class TestWorkloadDispatch:
    def test_engine_resolves_workload_kernels_through_base(self):
        index = ProjectIndex.build(["src"])
        graph = build_call_graph(index)

        def targets_of(caller, callee):
            return {
                target
                for site in graph.call_sites_in(caller)
                if site.name == callee
                for target in site.targets
            }

        process_chunk = "repro.core.compute.ComputationEngine._process_chunk"
        scatter = targets_of(process_chunk, "scatter_chunk")
        assert "repro.core.workload.Workload.scatter_chunk" in scatter
        assert "repro.core.workload.DataWorkload.scatter_chunk" in scatter
        assert "repro.core.workload.ModelWorkload.scatter_chunk" in scatter
        gather = targets_of(process_chunk, "gather_chunk")
        assert "repro.core.workload.DataWorkload.gather_chunk" in gather
        apply_ = targets_of(
            "repro.core.compute.ComputationEngine._finish_gather_master",
            "apply_partition",
        )
        assert "repro.core.workload.DataWorkload.apply_partition" in apply_

        stats = graph.resolution_stats()
        assert stats["project_resolution_fraction"] >= 0.95


# ---------------------------------------------------------------------------
# baseline ratchet (satellite)
# ---------------------------------------------------------------------------


def _finding(file="core/kern.py", rule="CHX013", line=4, message=None):
    return Finding(
        file=file,
        line=line,
        rule_id=rule,
        severity="error",
        message=message or "edge loop at line %d blocks vectorization" % line,
    )


class TestBaselineRatchet:
    def test_fingerprint_is_line_stable(self):
        a = _finding(line=4, message="edge loop at line 4 blocks")
        b = _finding(line=90, message="edge loop at line 90 blocks")
        assert fingerprint(a) == fingerprint(b)
        c = _finding(message="a different defect entirely")
        assert fingerprint(a) != fingerprint(c)

    def test_round_trip_and_split(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        old = _finding(message="known defect")
        count = write_baseline([old, old], path)
        assert count == 1
        baseline = load_baseline(path)
        fresh = _finding(message="brand new defect")
        new, grandfathered = split_new([old, fresh], baseline)
        assert new == [fresh]
        assert grandfathered == [old]
        stats = baseline_stats([old, fresh], baseline)
        assert stats == {"entries": 1, "matched": 1, "new": 1, "stale": 0}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"baseline_version": 999, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_cli_ratchet_suppresses_old_fails_new(self, tmp_path, capsys):
        pkg = build_pkg(tmp_path / "pkg", dict(CHX013_FIXTURE))
        baseline = str(tmp_path / "baseline.json")

        code = main(
            ["check", str(pkg), "--deep", "--baseline", baseline,
             "--write-baseline"]
        )
        assert code == 0
        assert "baseline:" in capsys.readouterr().err

        code = main(["check", str(pkg), "--deep", "--baseline", baseline])
        captured = capsys.readouterr()
        assert code == 0
        assert "grandfathered" in captured.err

        # A brand-new finding in another file must fail the ratchet.
        (pkg / "core" / "fresh.py").write_text(
            textwrap.dedent(
                """
                def gather_chunk(edges, values):
                    for src, dst in edges:
                        values[dst] = values[src]
                """
            )
        )
        code = main(["check", str(pkg), "--deep", "--baseline", baseline])
        out = capsys.readouterr().out
        assert code == 1
        assert "fresh.py" in out
        assert "kern.py" not in out

    def test_cli_write_baseline_requires_baseline(self, tmp_path, capsys):
        assert main(["check", str(tmp_path), "--write-baseline"]) == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# kernel worklist (tentpole: static × profile join)
# ---------------------------------------------------------------------------


def pr_host_doc(machines=2, scale=7, iterations=4):
    graph = rmat_graph(scale, seed=7)
    profiler = HostProfiler()
    run_algorithm(
        PageRank(iterations=iterations), graph, machines=machines,
        host=profiler,
    )
    registry = profiler.finalize()
    registry.job = {
        "algorithm": "PR",
        "cli_name": "PR",
        "machines": machines,
        "seed": 0,
    }
    return registry.to_dict()


class TestKernelReport:
    def test_static_only_report_covers_all_algorithms(self):
        doc = build_kernel_report(["src"])
        errors = check_kernel_report_schema(doc)
        assert errors == []
        assert doc["kernel_report_version"] == KERNEL_REPORT_VERSION
        algorithms = {row["algorithm"] for row in doc["rows"]}
        assert {"PR", "BFS", "*"} <= algorithms
        assert all(row["host_cpu_share"] is None for row in doc["rows"])

    def test_host_join_ranks_apply_in_top_two(self):
        host_doc = pr_host_doc()
        assert check_host_schema(host_doc) == []
        assert host_doc["job"]["algorithm"] == "PR"

        doc = build_kernel_report(["src"], host_doc=host_doc)
        assert check_kernel_report_schema(doc) == []

        top2 = sorted(doc["rows"], key=lambda r: r["rank"])[:2]
        assert {row["phase"] for row in top2} == {"apply"}
        pr_rows = [
            r for r in doc["rows"]
            if r["algorithm"] == "PR" and r["phase"] == "apply"
        ]
        assert pr_rows and pr_rows[0]["host_cpu_share"] > 0.5
        # Other algorithms don't inherit PR's profile.
        bfs_rows = [r for r in doc["rows"] if r["algorithm"] == "BFS"]
        assert all(r["host_cpu_share"] is None for r in bfs_rows)

    def test_json_round_trips_through_validator(self):
        doc = build_kernel_report(["src"], host_doc=pr_host_doc())
        clone = json.loads(json.dumps(doc))
        assert check_kernel_report_schema(clone) == []

    def test_format_lists_blocked_kernels(self, tmp_path):
        build_pkg(
            tmp_path,
            {
                "core/__init__.py": "",
                "core/kern.py": """
                    class Workload:
                        def scatter_chunk(self, edges):
                            state = 0.0
                            out = []
                            for e in edges:
                                state = state * 0.5 + e
                                out.append(state)
                            return out
                """,
            },
        )
        doc = build_kernel_report([str(tmp_path)])
        text = format_kernel_report(doc)
        assert "kernel worklist" in text
        assert "sequential" in text

    def test_score_is_share_times_vectorizable(self):
        doc = build_kernel_report(["src"], host_doc=pr_host_doc())
        for row in doc["rows"]:
            if row["host_cpu_share"] is None:
                assert row["score"] is None
            else:
                assert row["score"] == pytest.approx(
                    row["host_cpu_share"] * row["vectorizable"]
                )


class TestKernelReportCLI:
    def test_text_output(self, capsys):
        code = main(["check", "src", "--kernel-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kernel worklist" in out

    def test_json_output_with_host(self, tmp_path, capsys):
        host_path = tmp_path / "host.json"
        host_path.write_text(json.dumps(pr_host_doc()))
        code = main(
            ["check", "src", "--kernel-report",
             "--host-json", str(host_path), "--format", "json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert check_kernel_report_schema(doc) == []
        assert doc["host"]["algorithm"] == "PR"

    def test_host_json_requires_kernel_report(self, tmp_path, capsys):
        assert main(["check", "src", "--host-json", "nope.json"]) == 2
        capsys.readouterr()

    def test_bad_host_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"host_schema_version\": 999}")
        code = main(
            ["check", "src", "--kernel-report", "--host-json", str(bad)]
        )
        assert code == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# host-profile job join keys
# ---------------------------------------------------------------------------


class TestHostJobKeys:
    def test_job_keys_survive_to_dict_and_schema(self):
        doc = pr_host_doc(machines=2)
        assert doc["job"] == {
            "algorithm": "PR", "cli_name": "PR", "machines": 2, "seed": 0,
        }
        assert check_host_schema(doc) == []

    def test_schema_rejects_malformed_job(self):
        doc = pr_host_doc()
        doc["job"] = {"algorithm": 7}
        assert check_host_schema(doc)

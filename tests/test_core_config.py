"""Unit tests for cluster configuration and metrics containers."""

import pytest

from repro.core import ClusterConfig
from repro.core.metrics import BREAKDOWN_CATEGORIES, Breakdown, JobResult
from repro.net.topology import GIGE_1
from repro.store.device import HDD_RAID0


class TestClusterConfig:
    def test_defaults_match_paper_cluster(self):
        config = ClusterConfig()
        assert config.cores == 16
        assert config.memory_bytes == 32 * 2**30
        assert config.device.name == "SSD"
        assert config.network.name == "40GigE"
        assert config.chunk_bytes == 4 * 1024 * 1024
        assert config.batch_factor == 5

    def test_default_window_is_ten(self):
        """SSD latency == 40 GigE RTT -> phi = 2, window = phi*k = 10."""
        assert ClusterConfig().effective_request_window() == 10

    def test_window_override(self):
        config = ClusterConfig(request_window_override=3)
        assert config.effective_request_window() == 3

    def test_with_creates_modified_copy(self):
        base = ClusterConfig()
        modified = base.with_(machines=8, device=HDD_RAID0)
        assert modified.machines == 8
        assert modified.device is HDD_RAID0
        assert base.machines == 1  # original untouched

    def test_stealing_enabled_property(self):
        assert ClusterConfig(steal_alpha=1.0).stealing_enabled
        assert not ClusterConfig(steal_alpha=0.0).stealing_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(machines=0)
        with pytest.raises(ValueError):
            ClusterConfig(cores=0)
        with pytest.raises(ValueError):
            ClusterConfig(chunk_bytes=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch_factor=0)
        with pytest.raises(ValueError):
            ClusterConfig(placement="magic")
        with pytest.raises(ValueError):
            ClusterConfig(steal_alpha=-1)
        with pytest.raises(ValueError):
            ClusterConfig(request_window_override=0)

    def test_slow_network_raises_phi(self):
        config = ClusterConfig(network=GIGE_1)
        # 1 GigE RTT (200 us) against 100 us SSD latency: phi = 3.
        assert config.effective_request_window() == 15


class TestBreakdown:
    def test_add_and_total(self):
        breakdown = Breakdown()
        breakdown.add("gp_master", 2.0)
        breakdown.add("barrier", 1.0)
        assert breakdown.total() == pytest.approx(3.0)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            Breakdown().add("coffee", 1.0)

    def test_fractions_sum_to_one(self):
        breakdown = Breakdown()
        for category in BREAKDOWN_CATEGORIES:
            breakdown.add(category, 1.0)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions_are_zero(self):
        assert all(v == 0.0 for v in Breakdown().fractions().values())

    def test_merged_with(self):
        a = Breakdown()
        a.add("merge", 1.0)
        b = Breakdown()
        b.add("merge", 2.0)
        b.add("copy", 1.0)
        merged = a.merged_with(b)
        assert merged.merge == pytest.approx(3.0)
        assert merged.copy == pytest.approx(1.0)
        assert a.merge == pytest.approx(1.0)  # inputs untouched


class TestJobResult:
    def test_aggregate_bandwidth(self):
        result = JobResult(
            algorithm="x",
            machines=2,
            runtime=2.0,
            preprocessing_seconds=0.5,
            iterations=1,
            storage_bytes=800,
        )
        assert result.aggregate_bandwidth == pytest.approx(400.0)

    def test_zero_runtime_bandwidth(self):
        result = JobResult(
            algorithm="x",
            machines=1,
            runtime=0.0,
            preprocessing_seconds=0.0,
            iterations=0,
        )
        assert result.aggregate_bandwidth == 0.0

    def test_summary_mentions_algorithm(self):
        result = JobResult(
            algorithm="PR",
            machines=4,
            runtime=1.0,
            preprocessing_seconds=0.1,
            iterations=5,
        )
        assert "PR" in result.summary()

"""Tests for the k-core extension algorithm."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import KCore, run_kcore_decomposition
from repro.core.runtime import run_algorithm
from repro.graph import rmat_graph, to_undirected
from repro.graph.edgelist import EdgeList

from tests.conftest import fast_config


def _reference_coreness(edges: EdgeList) -> np.ndarray:
    graph = nx.Graph()
    graph.add_nodes_from(range(edges.num_vertices))
    graph.add_edges_from(zip(edges.src, edges.dst))
    core = nx.core_number(graph)
    return np.array([core[v] for v in range(edges.num_vertices)])


@pytest.fixture(scope="module")
def graph():
    return to_undirected(rmat_graph(8, seed=17, weighted=True))


class TestSingleKCore:
    def test_two_core_matches_networkx(self, graph):
        result = run_algorithm(KCore(k=2), graph, fast_config(2))
        expected = _reference_coreness(graph) >= 2
        assert np.array_equal(result.values["alive"], expected)

    def test_one_core_drops_only_isolated(self, graph):
        result = run_algorithm(KCore(k=1), graph, fast_config(2))
        degrees = np.bincount(graph.src, minlength=graph.num_vertices)
        assert np.array_equal(result.values["alive"], degrees >= 1)

    def test_huge_k_empties_graph(self, graph):
        result = run_algorithm(KCore(k=10**6), graph, fast_config(2))
        assert not result.values["alive"].any()

    def test_surviving_degrees_at_least_k(self, graph):
        k = 3
        result = run_algorithm(KCore(k=k), graph, fast_config(2))
        alive = result.values["alive"]
        # Recompute induced degrees directly.
        inside = alive[graph.src] & alive[graph.dst]
        induced = np.bincount(
            graph.src[inside], minlength=graph.num_vertices
        )
        assert (induced[alive] >= k).all()
        assert np.array_equal(result.values["degree"][alive], induced[alive])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KCore(k=0)


class TestDecomposition:
    def test_matches_networkx_core_number(self, graph):
        result = run_kcore_decomposition(graph, fast_config(2))
        assert np.array_equal(result["coreness"], _reference_coreness(graph))

    def test_degeneracy_and_runtime(self, graph):
        result = run_kcore_decomposition(graph, fast_config(2))
        assert result["degeneracy"] == result["coreness"].max()
        assert result["runtime"] > 0

    def test_across_machine_counts(self, graph):
        a = run_kcore_decomposition(graph, fast_config(1))
        b = run_kcore_decomposition(graph, fast_config(4))
        assert np.array_equal(a["coreness"], b["coreness"])

    def test_warm_start_equals_cold(self, graph):
        """Sweeping with warm starts equals computing each k from
        scratch (peeling is monotone in k)."""
        swept = run_kcore_decomposition(graph, fast_config(2))
        k = max(2, swept["degeneracy"])
        cold = run_algorithm(KCore(k=k), graph, fast_config(2))
        assert np.array_equal(
            cold.values["alive"], swept["coreness"] >= k
        )

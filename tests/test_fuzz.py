"""Tests for the chaos-schedule fuzzer (:mod:`repro.faults.fuzz`).

Three layers: the seeded schedule generator (deterministic, always
emits runnable plans), the campaign driver (hardened runs survive every
sampled schedule; unhardened runs produce shrunk, replayable
reproducers), and the ``fuzz`` / ``run --inject-fault <file>`` CLI
surface.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import PageRank
from repro.cli import main
from repro.core.runtime import ChaosCluster
from repro.faults import FaultKind, FaultPlan, parse_fault_spec
from repro.faults.fuzz import (
    OUTCOME_MISMATCH,
    OUTCOME_OK,
    VIOLATION_OUTCOMES,
    ChaosFuzzer,
    ScheduleGenerator,
    write_reproducer,
)

from tests.conftest import fast_config


def _fuzz_config(**overrides):
    defaults = dict(checkpointing=True, seed=7)
    defaults.update(overrides)
    return fast_config(4, **defaults)


def _fuzzer(small_graph, **overrides):
    config_kw = overrides.pop("config_kw", {})
    defaults = dict(seed=3, max_specs=2, max_iteration=2)
    defaults.update(overrides)
    return ChaosFuzzer(
        lambda: PageRank(iterations=3),
        small_graph,
        _fuzz_config(**config_kw),
        **defaults,
    )


# ---------------------------------------------------------------------------
# Schedule generator
# ---------------------------------------------------------------------------


class TestScheduleGenerator:
    def _generator(self, seed, **config_kw):
        return ScheduleGenerator(
            _fuzz_config(**config_kw),
            max_iteration=2,
            baseline_runtime=0.05,
            seed=seed,
        )

    def test_same_seed_same_schedules(self):
        first = self._generator(11)
        second = self._generator(11)
        plans_a = [first.sample_plan() for _ in range(20)]
        plans_b = [second.sample_plan() for _ in range(20)]
        describe = lambda plan: [s.describe() for s in plan.specs]
        assert [describe(p) for p in plans_a] == [describe(p) for p in plans_b]

    def test_different_seeds_differ(self):
        describe = lambda plan: [s.describe() for s in plan.specs]
        plans_a = [self._generator(1).sample_plan() for _ in range(10)]
        plans_b = [self._generator(2).sample_plan() for _ in range(10)]
        assert [describe(p) for p in plans_a] != [describe(p) for p in plans_b]

    def test_every_sampled_plan_validates(self):
        generator = self._generator(5)
        config = _fuzz_config()
        for _ in range(50):
            plan = generator.sample_plan()
            assert plan.specs
            plan.validate(config)  # must not raise

    def test_ckpt_corrupt_excluded_without_checkpointing(self):
        generator = self._generator(5, checkpointing=False)
        assert FaultKind.CKPT_CORRUPT not in generator.kinds

    def test_partition_excluded_on_single_machine(self):
        generator = ScheduleGenerator(
            fast_config(1, checkpointing=True, seed=7),
            max_iteration=2,
            baseline_runtime=0.05,
            seed=5,
        )
        assert FaultKind.PARTITION not in generator.kinds


# ---------------------------------------------------------------------------
# Campaign: hardened stack survives sampled schedules
# ---------------------------------------------------------------------------


class TestHardenedCampaign:
    def test_small_campaign_is_all_ok(self, small_graph):
        fuzzer = _fuzzer(small_graph)
        report = fuzzer.run_campaign(episodes=4)
        assert len(report.episodes) == 4
        assert report.ok
        assert report.violations == []
        assert report.outcome_counts() == {OUTCOME_OK: 4}
        assert "4 episode(s)" in report.summary()

    def test_report_to_dict_round_trips_through_json(self, small_graph):
        fuzzer = _fuzzer(small_graph)
        report = fuzzer.run_campaign(episodes=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["seed"] == 3
        assert len(payload["episodes"]) == 2
        assert payload["episodes"][0]["outcome"] == OUTCOME_OK


# ---------------------------------------------------------------------------
# Violations: find, shrink, write, replay
# ---------------------------------------------------------------------------


class TestViolationShrinking:
    #: A two-spec plan where only the torn write matters: shrinking must
    #: drop the benign crash-restart and the count option.
    SPECS = ["crash-restart:0@iter=2", "torn-write:1@iter=1,count=2"]

    def _unhardened_fuzzer(self, small_graph):
        return _fuzzer(
            small_graph, config_kw=dict(integrity_checks=False)
        )

    def test_classify_flags_the_mismatch(self, small_graph):
        fuzzer = self._unhardened_fuzzer(small_graph)
        plan = FaultPlan([parse_fault_spec(s) for s in self.SPECS])
        outcome, detail, _ = fuzzer.classify(plan)
        assert outcome == OUTCOME_MISMATCH
        assert outcome in VIOLATION_OUTCOMES
        assert "differ" in detail

    def test_shrink_reduces_to_the_corrupting_spec(self, small_graph):
        fuzzer = self._unhardened_fuzzer(small_graph)
        plan = FaultPlan([parse_fault_spec(s) for s in self.SPECS])
        shrunk, outcome, runs = fuzzer.shrink(plan)
        assert outcome in VIOLATION_OUTCOMES
        assert 0 < runs <= fuzzer.max_shrink_runs
        assert len(shrunk.specs) == 1
        assert shrunk.specs[0].kind is FaultKind.TORN_WRITE

    def test_reproducer_file_replays_the_violation(self, small_graph, tmp_path):
        fuzzer = self._unhardened_fuzzer(small_graph)
        plan = FaultPlan([parse_fault_spec(s) for s in self.SPECS])
        shrunk, outcome, _ = fuzzer.shrink(plan)

        from repro.faults.fuzz import EpisodeResult, Violation

        violation = Violation(
            episode=EpisodeResult(
                index=0, plan=plan, outcome=OUTCOME_MISMATCH,
                detail="", recoveries=0,
            ),
            shrunk=shrunk,
            shrunk_outcome=outcome,
            shrink_runs=1,
        )
        path = tmp_path / "repro.faults"
        write_reproducer(str(path), violation, seed=3, config=fuzzer.config)
        text = path.read_text()
        assert text.startswith("# chaos fuzz reproducer")
        assert "replay: repro run --inject-fault" in text

        # The dumped plan replays to the same violation class.
        loaded = FaultPlan.load(str(path))
        assert [s.describe() for s in loaded.specs] == [
            s.describe() for s in shrunk.specs
        ]
        replay_outcome, _, _ = fuzzer.classify(loaded)
        assert replay_outcome in VIOLATION_OUTCOMES

    def test_hardened_stack_neutralizes_the_same_plan(self, small_graph):
        fuzzer = _fuzzer(small_graph)
        plan = FaultPlan([parse_fault_spec(s) for s in self.SPECS])
        outcome, _, _ = fuzzer.classify(plan)
        assert outcome == OUTCOME_OK


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestFuzzCLI:
    def test_fuzz_smoke_exits_zero(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "fuzz",
                "--episodes", "2",
                "--seed", "7",
                "--scale", "8",
                "--machines", "2",
                "--iterations", "2",
                "--out-dir", str(tmp_path),
                "--json", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz campaign (seed 7)" in out
        payload = json.loads(report_path.read_text())
        assert len(payload["episodes"]) == 2

    def test_run_accepts_plan_file_and_inline_spec(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.faults"
        plan_path.write_text(
            "# mixed-source plan\n"
            "torn-write:1@iter=1,count=2\n"
        )
        code = main(
            [
                "run",
                "--algorithm", "PR",
                "--scale", "8",
                "--machines", "4",
                "--iterations", "3",
                "--checkpoint",
                "--seed", "7",
                "--inject-fault", str(plan_path),
                "--inject-fault", "crash:0@iter=2",
                "--verify-recovery",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "final values identical to undisturbed run" in out

    def test_run_rejects_unreadable_plan_file(self):
        with pytest.raises(SystemExit, match="bad --inject-fault"):
            main(
                [
                    "run",
                    "--algorithm", "PR",
                    "--scale", "8",
                    "--checkpoint",
                    "--inject-fault", "not-a-file-and-not-a-spec",
                ]
            )

    def test_run_reports_unrecoverable_job_as_exit_3(self, tmp_path, capsys):
        plan_path = tmp_path / "rot.faults"
        plan_path.write_text(
            "ckpt-corrupt:1@iter=1,count=64\n"
            "crash:0@iter=1\n"
        )
        code = main(
            [
                "run",
                "--algorithm", "PR",
                "--scale", "8",
                "--machines", "4",
                "--iterations", "3",
                "--checkpoint",
                "--seed", "7",
                "--inject-fault", str(plan_path),
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "unrecoverable job" in err
        assert "checkpoint-unreadable" in err

"""Protocol state-machine extraction, model checking, conformance.

Four layers of :mod:`repro.analysis.protocol` plus its rule/CLI
surface:

* the extractor lifts per-role machines from fixture packages (mailbox
  bindings, dispatch loops, epoch fences, sends, barriers, waits, and
  ``PROTOCOL_TRANSITIONS`` annotations) and from ``src/`` itself;
* the bounded model checker proves the self-hosted model deadlock-free
  at m=2 and reports counterexamples when override knobs plant
  violations (lost wakeup, skipped arrive, premature release, dropped
  epoch guard);
* the conformance checker replays causal DAGs — real traced runs and
  synthetic event lists — against the model;
* rules CHX019-CHX023 fire exactly on planted fixture sites, honor
  suppressions, and the ``check --protocol`` / ``trace conform`` CLI
  verbs exit and export correctly.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import PageRank
from repro.analysis.flow import DeepEngine, ProjectIndex
from repro.analysis.flow.rules import ANALYZER_VERSION, DEEP_RULE_TABLE
from repro.analysis.protocol import (
    BarrierOp,
    ProtocolModel,
    ReceiveLoop,
    SendOp,
    check_protocol,
    conform,
    conform_trace,
    extract_model,
)
from repro.cli import main
from repro.core.runtime import run_algorithm
from repro.faults.fuzz import ChaosFuzzer
from repro.obs import Tracer, write_chrome_trace
from repro.obs.causal import causal_events_from_trace
from repro.obs.export import chrome_trace_dict

from tests.conftest import fast_config
from tests.test_flow import build_pkg, deep_check, findings_of


@pytest.fixture(scope="module")
def src_index():
    return ProjectIndex.build(["src"])


@pytest.fixture(scope="module")
def src_model(src_index):
    return extract_model(src_index)


# ---------------------------------------------------------------------------
# Extraction on a fixture package
# ---------------------------------------------------------------------------


PROTOCOL_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/wire.py": """\
        SERVICE_ALPHA = "alpha"
        KIND_PING = "ping"

        PROTOCOL_TRANSITIONS = {
            "send": "msg.send",
            "patient_sleep": "timeout.backoff",
        }


        class Message:
            def __init__(self, src, dst, service, kind, size):
                self.kind = kind
        """,
    "proj/sim/node.py": """\
        from proj.sim import wire


        class Server:
            def __init__(self, network, machine):
                self.epoch = 0
                self._mailbox = network.register(
                    machine, wire.SERVICE_ALPHA
                )

            def _serve(self):
                while True:
                    message = yield self._mailbox.get()
                    if message.epoch != self.epoch:
                        continue
                    kind = message.kind
                    if kind == "ping":
                        self._count = 1
                    elif kind in ("share", "accept"):
                        self._count = 2


        class Client:
            def __init__(self, network, host):
                self.network = network
                self.host = host

            def ping(self, src, dst, epoch):
                delivered = self.network.send(
                    src=src, dst=dst, service="alpha",
                    kind=wire.KIND_PING, size=8, epoch=epoch,
                )
                yield delivered

            def offer(self, src, dst, big):
                kind = "share" if big else "accept"
                self.network.send(
                    src=src, dst=dst, service="alpha", kind=kind, size=8,
                )

            def patient_ping(self, src, dst):
                delivered = self.network.send(
                    src=src, dst=dst, service="alpha", kind="ping",
                    size=8,
                )
                wire.patient_sleep(0.1)
                yield delivered

            def local_ping(self, src):
                delivered = self.network.send(
                    src=src, dst=src, service="alpha", kind="ping",
                    size=8,
                )
                yield delivered

            def loop(self):
                self.host.barrier_arrive("step")
                self.host.barrier.wait()


        class Bystander:
            def quiet(self):
                return 1
        """,
}


def _fixture_model(tmp_path, files=PROTOCOL_FIXTURE):
    build_pkg(tmp_path, files)
    return extract_model(ProjectIndex.build([str(tmp_path)]))


class TestExtraction:
    def test_roles_pruned_to_protocol_participants(self, tmp_path):
        model = _fixture_model(tmp_path)
        assert set(model.roles) == {"Server", "Client"}

    def test_mailbox_binding_names_the_service(self, tmp_path):
        model = _fixture_model(tmp_path)
        assert model.roles["Server"].services == ("alpha",)
        assert model.service_owner("alpha") == "Server"

    def test_receive_loop_kinds_and_epoch_guard(self, tmp_path):
        model = _fixture_model(tmp_path)
        (loop,) = model.roles["Server"].receives
        assert loop.service == "alpha"
        assert loop.kinds == ("accept", "ping", "share")
        assert not loop.wildcard
        assert loop.epoch_guard
        assert loop.epoch_aware
        assert loop.handles("ping") and not loop.handles("nudge")

    def test_send_kind_resolution_paths(self, tmp_path):
        model = _fixture_model(tmp_path)
        sends = {op.qualname.rsplit(".", 1)[-1]: op
                 for op in model.roles["Client"].sends}
        # Imported-constant kind + epoch stamp.
        assert sends["ping"].kinds == ("ping",)
        assert sends["ping"].kinds_complete
        assert sends["ping"].has_epoch
        assert sends["ping"].remote
        assert sends["ping"].service == "alpha"
        # Conditional-expression kind resolves both arms.
        assert sends["offer"].kinds == ("accept", "share")
        assert sends["offer"].kinds_complete
        # Same src and dst expression: not remote.
        assert not sends["local_ping"].remote

    def test_waits_remote_and_timeout_flags(self, tmp_path):
        model = _fixture_model(tmp_path)
        waits = {w.qualname.rsplit(".", 1)[-1]: w
                 for w in model.all_waits()}
        assert set(waits) == {"ping", "patient_ping", "local_ping"}
        assert waits["ping"].remote and not waits["ping"].has_timeout
        # Declared timeout helper (PROTOCOL_TRANSITIONS label) counts
        # as a liveness escape.
        assert waits["patient_ping"].has_timeout
        assert not waits["local_ping"].remote

    def test_barrier_ops_extracted(self, tmp_path):
        model = _fixture_model(tmp_path)
        ops = sorted(op.op for op in model.all_barriers())
        assert ops == ["arrive", "wait"]

    def test_declared_annotations_collected(self, tmp_path):
        model = _fixture_model(tmp_path)
        assert model.declared["proj.sim.wire"] == {
            "send": "msg.send",
            "patient_sleep": "timeout.backoff",
        }

    def test_alphabet_and_stats(self, tmp_path):
        model = _fixture_model(tmp_path)
        assert model.alphabet() == {"ping", "share", "accept"}
        stats = model.stats()
        assert stats["roles"] == 2
        assert stats["sends"] == 4
        assert stats["receives"] == 1
        assert stats["barriers"] == 2
        assert stats["waits"] == 3
        assert stats["kinds"] == 3

    def test_to_dict_is_json_serializable(self, tmp_path):
        model = _fixture_model(tmp_path)
        blob = json.loads(json.dumps(model.to_dict(), sort_keys=True))
        assert blob["model_version"] == 1
        assert blob["alphabet"] == ["accept", "ping", "share"]
        assert set(blob["roles"]) == {"Server", "Client"}

    def test_to_dot_draws_the_message_graph(self, tmp_path):
        dot = _fixture_model(tmp_path).to_dot()
        assert dot.startswith("digraph protocol {")
        assert dot.rstrip().endswith("}")
        # Epoch-stamped ping edge from sender to service owner.
        assert '"Client" -> "Server" [label="ping [e]"]' in dot
        assert '"Client" -> "barrier"' in dot
        assert '"barrier" [shape=doublecircle' in dot


class TestSelfHostExtraction:
    def test_every_surviving_role_has_protocol_ops(self, src_model):
        for role in src_model.roles.values():
            assert (
                role.sends or role.receives or role.barriers
                or role.waits or role.services
            ), f"empty role {role.name} survived pruning"

    def test_core_protocol_vocabulary_extracted(self, src_model):
        assert {
            "steal_request", "steal_reply", "read", "read_reply",
            "write", "write_ack", "accum",
        } <= src_model.alphabet()

    def test_engine_services_bound_to_owners(self, src_model):
        assert src_model.service_owner("directory") is not None
        assert src_model.handlers_for("directory")

    def test_transport_and_retry_annotations_declared(self, src_model):
        assert (
            src_model.declared["repro.net.transport"]["send"]
            == "msg.send"
        )
        assert (
            src_model.declared["repro.net.retry"]["jittered_delay"]
            == "timeout.backoff"
        )

    def test_epoch_fences_extracted_from_dispatch_loops(self, src_model):
        guarded = [
            loop for loop in src_model.all_receives()
            if loop.epoch_aware and loop.epoch_guard
        ]
        assert guarded, "no epoch-guarded receive loop extracted"

    def test_steal_sends_carry_liveness_escape(self, src_model):
        steal_sends = [
            op for op in src_model.all_sends()
            if "steal_request" in op.kinds
        ]
        assert steal_sends
        assert all(op.liveness for op in steal_sends)


# ---------------------------------------------------------------------------
# Bounded model checker
# ---------------------------------------------------------------------------


def _mc_model(liveness=True, guard=True, steal=True, barrier=True):
    """A hand-built minimal model with the Chaos protocol features."""
    model = ProtocolModel()
    role = model.role("Compute")
    role.services = ("compute",)
    kinds = ("steal_request", "steal_reply") if steal else ()
    for kind in kinds:
        role.sends.append(SendOp(
            role="Compute", qualname=f"Compute.send_{kind}", file="x.py",
            line=1, service="compute", kinds=(kind,), kinds_complete=True,
            has_epoch=True, remote=True, liveness=liveness,
        ))
    role.receives.append(ReceiveLoop(
        role="Compute", qualname="Compute._serve", file="x.py", line=2,
        service="compute", kinds=kinds, wildcard=not kinds,
        epoch_guard=guard, epoch_aware=True,
    ))
    if barrier:
        role.barriers.append(BarrierOp(
            role="Compute", qualname="Compute.loop", file="x.py",
            line=3, op="arrive",
        ))
    return model


def _prop(result, name):
    (prop,) = [p for p in result.properties if p.name == name]
    return prop


class TestModelChecker:
    def test_minimal_model_passes_all_properties(self):
        result = check_protocol(_mc_model(), machines=2)
        assert result.ok
        assert result.states > 10
        assert result.transitions > result.states
        assert [p.ok for p in result.properties] == [True] * 5
        assert result.features == {
            "steal_stage": True,
            "steal_timeout": True,
            "barrier": True,
            "stale_injection": True,
        }

    def test_barrier_only_model_passes(self):
        result = check_protocol(_mc_model(steal=False), machines=2)
        assert result.ok
        assert not result.features["steal_stage"]
        assert not result.features["stale_injection"]

    def test_missing_timeout_loses_wakeups_and_deadlocks(self):
        result = check_protocol(
            _mc_model(), machines=2, override={"steal_timeout": False}
        )
        assert not result.ok
        wakeup = _prop(result, "no_lost_wakeup")
        assert not wakeup.ok
        assert wakeup.counterexample  # a concrete interleaving
        assert any("lose" in step for step in wakeup.counterexample)
        assert not _prop(result, "deadlock_freedom").ok

    def test_skipped_arrive_deadlocks_the_barrier(self):
        result = check_protocol(
            _mc_model(), machines=2, override={"skip_arrive": True}
        )
        deadlock = _prop(result, "deadlock_freedom")
        assert not deadlock.ok
        assert any(
            "WITHOUT arrive" in step for step in deadlock.counterexample
        )

    def test_premature_release_breaks_consensus(self):
        result = check_protocol(
            _mc_model(), machines=2, override={"premature_release": True}
        )
        assert not _prop(result, "barrier_consensus").ok

    def test_dropped_epoch_guard_admits_stale_traffic(self):
        result = check_protocol(
            _mc_model(), machines=2, override={"drop_epoch_guard": True}
        )
        fencing = _prop(result, "epoch_fencing")
        assert not fencing.ok
        assert any("ACCEPTED" in step for step in fencing.counterexample)

    def test_unguarded_model_fails_fencing_without_override(self):
        result = check_protocol(_mc_model(guard=False), machines=2)
        assert not _prop(result, "epoch_fencing").ok

    def test_state_budget_enforced(self):
        with pytest.raises(RuntimeError, match="state space exceeded"):
            check_protocol(_mc_model(), machines=3, max_states=20)

    def test_format_text_and_to_dict(self):
        result = check_protocol(_mc_model(), machines=2)
        text = result.format_text()
        assert "model check: m=2" in text
        assert "verdict: PASS" in text
        blob = json.loads(json.dumps(result.to_dict()))
        assert blob["ok"] is True
        assert len(blob["properties"]) == 5

        bad = check_protocol(
            _mc_model(), machines=2, override={"premature_release": True}
        )
        assert "verdict: FAIL" in bad.format_text()
        assert "[FAIL]" in bad.format_text()

    def test_self_hosted_model_is_deadlock_free_at_m2(self, src_model):
        result = check_protocol(src_model, machines=2)
        assert result.ok, result.format_text()
        assert result.states > 100
        assert result.features["steal_stage"]
        assert result.features["steal_timeout"]
        assert result.features["barrier"]


# ---------------------------------------------------------------------------
# Conformance
# ---------------------------------------------------------------------------


def _msg(cat, src=0, dst=1, t1=1.0, ident=0):
    return {
        "kind": "msg", "cat": cat, "src": src, "dst": dst,
        "size": 8, "t0": 0.0, "t1": t1, "id": ident,
    }


def _arrive(machine, ident, barrier="e0/loop/0", t0=0.5):
    return {
        "kind": "arrive", "cat": "barrier", "machine": machine,
        "barrier": barrier, "id": ident, "t0": t0,
    }


def _release(parents, barrier="e0/loop/0", t0=1.0, ident=99):
    return {
        "kind": "release", "cat": "barrier", "barrier": barrier,
        "parents": list(parents), "id": ident, "t0": t0,
    }


class TestConformance:
    def test_modeled_traffic_conforms(self):
        report = conform(
            [_msg("steal_request"), _msg("steal_reply", src=1, dst=0)],
            _mc_model(),
        )
        assert report.ok
        assert not report.stuck
        assert report.unmodeled == []
        assert report.observed == {"steal_request": 1, "steal_reply": 1}
        assert report.unobserved == []

    def test_unmodeled_kind_fails(self):
        report = conform([_msg("mystery")], _mc_model())
        assert not report.ok
        assert report.unmodeled == ["mystery"]
        assert "UNMODELED" in report.format_text()

    def test_unobserved_kinds_are_coverage_not_failure(self):
        report = conform([_msg("steal_request")], _mc_model())
        assert report.ok
        assert report.unobserved == ["steal_reply"]
        assert "never observed" in report.format_text()

    def test_release_missing_arrival_parent_is_violation(self):
        events = [_arrive(0, 1), _arrive(1, 2), _release([1])]
        report = conform(events, _mc_model())
        assert not report.ok
        (violation,) = report.barrier_violations
        assert "machine 1" in violation
        assert "missing from release parents" in violation

    def test_arrival_after_release_is_violation(self):
        events = [
            _arrive(0, 1),
            _arrive(1, 2, t0=2.0),  # arrives after the release stamp
            _release([1, 2], t0=1.0),
        ]
        report = conform(events, _mc_model())
        assert not report.ok
        (violation,) = report.barrier_violations
        assert "after release" in violation

    def test_consistent_barrier_round_passes(self):
        events = [_arrive(0, 1), _arrive(1, 2), _release([1, 2])]
        report = conform(events, _mc_model())
        assert report.ok and not report.barrier_violations

    def test_stuck_message_named_for_deadlock_capture(self):
        report = conform([_msg("steal_request", t1=None)], _mc_model())
        assert report.ok  # incomplete, not nonconforming
        assert report.stuck
        assert report.stuck_messages == ["steal_request m0->m1"]
        assert "never delivered" in report.format_text()

    def test_stuck_barrier_names_the_waiters(self):
        report = conform([_arrive(0, 1), _arrive(1, 2)], _mc_model())
        assert report.stuck
        (stuck,) = report.stuck_barriers
        assert stuck == "e0/loop/0 waited on by m0, m1"

    def test_conform_trace_skips_causal_less_traces(self):
        assert conform_trace({"traceEvents": []}, _mc_model()) is None

    def test_real_traced_run_conforms_to_self_host_model(
        self, small_graph, src_model
    ):
        tracer = Tracer(sample_interval=None)
        config = fast_config(2, seed=11)
        run_algorithm(
            PageRank(iterations=2), small_graph, config, tracer=tracer
        )
        report = conform_trace(chrome_trace_dict(tracer), src_model)
        assert report is not None
        assert report.ok, report.format_text()
        assert report.unmodeled == []
        assert not report.barrier_violations
        assert report.observed  # messages actually flowed


# ---------------------------------------------------------------------------
# Deep rules CHX019-CHX023
# ---------------------------------------------------------------------------


CHX019_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/node.py": """\
        class Server:
            SERVICE = "alpha"

            def __init__(self, network, machine):
                self._mailbox = network.register(machine, self.SERVICE)

            def _serve(self):
                while True:
                    message = yield self._mailbox.get()
                    if message.kind == "ping":
                        self._count = 1


        class Client:
            def __init__(self, network):
                self.network = network

            def good(self, src, dst):
                self.network.send(
                    src=src, dst=dst, service="alpha", kind="ping",
                    size=8,
                )

            def bad(self, src, dst):
                self.network.send(
                    src=src, dst=dst, service="alpha", kind="pong",
                    size=8,
                )

            def opaque(self, src, dst, kind):
                self.network.send(
                    src=src, dst=dst, service="alpha", kind=kind,
                    size=8,
                )
        """,
}


class TestCHX019:
    def test_exactly_the_unhandled_kind_reports(self, tmp_path):
        build_pkg(tmp_path, CHX019_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX019"})
        (found,) = findings_of(result, "CHX019")
        assert "Client.bad" in found.message
        assert "'pong'" in found.message
        assert found.severity == "error"

    def test_send_to_unregistered_service_reports(self, tmp_path):
        files = dict(CHX019_FIXTURE)
        files["proj/sim/lost.py"] = (
            "class Stray:\n"
            "    def __init__(self, network):\n"
            "        self.network = network\n"
            "\n"
            "    def shout(self, src, dst):\n"
            "        self.network.send(\n"
            "            src=src, dst=dst, service='void', kind='ping',\n"
            "            size=8,\n"
            "        )\n"
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX019"})
        messages = [f.message for f in findings_of(result, "CHX019")]
        assert any("no receive loop drains" in m for m in messages)

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX019_FIXTURE)
        files["proj/sim/node.py"] = files["proj/sim/node.py"].replace(
            '            def bad(self, src, dst):\n'
            '                self.network.send(\n',
            '            def bad(self, src, dst):\n'
            '                self.network.send('
            '  # chaos: ignore[CHX019] fixture\n',
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX019"})
        assert findings_of(result, "CHX019") == []
        assert len(result.result.suppressed) == 1


CHX020_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/node.py": """\
        class Fenced:
            def __init__(self, network, machine):
                self.epoch = 0
                self._mailbox = network.register(machine, "work")

            def _serve(self):
                while True:
                    message = yield self._mailbox.get()
                    if message.epoch < self.epoch:
                        continue
                    if message.kind == "task":
                        self.epoch += 1


        class Unfenced:
            def __init__(self, network, machine):
                self.epoch = 0
                self._box = network.register(machine, "jobs")

            def _serve(self):
                while True:
                    message = yield self._box.get()
                    if message.kind == "task":
                        self.epoch += 1


        class Carefree:
            def __init__(self, network, machine):
                self._box = network.register(machine, "beat")

            def _serve(self):
                while True:
                    message = yield self._box.get()
                    self._last = message
        """,
}


class TestCHX020:
    def test_only_the_unfenced_epoch_aware_loop_reports(self, tmp_path):
        build_pkg(tmp_path, CHX020_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX020"})
        (found,) = findings_of(result, "CHX020")
        assert "Unfenced._serve" in found.message
        assert "message.epoch" in found.message
        assert found.severity == "error"

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX020_FIXTURE)
        files["proj/sim/node.py"] = files["proj/sim/node.py"].replace(
            "                    message = yield self._box.get()\n"
            "                    if message.kind == \"task\":",
            "                    message = yield self._box.get()"
            "  # chaos: ignore[CHX020] fixture\n"
            "                    if message.kind == \"task\":",
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX020"})
        assert findings_of(result, "CHX020") == []


CHX021_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/node.py": """\
        class Requester:
            def __init__(self, network, env):
                self.network = network
                self.env = env

            def fetch(self, src, dst):
                delivered = self.network.send(
                    src=src, dst=dst, service="w", kind="read", size=8,
                )
                yield delivered

            def fetch_guarded(self, src, dst):
                delivered = self.network.send(
                    src=src, dst=dst, service="w", kind="read", size=8,
                )
                yield self.env.any_of(
                    delivered, self.env.timeout(1.0)
                )
                yield delivered

            def fetch_local(self, src):
                delivered = self.network.send(
                    src=src, dst=src, service="w", kind="read", size=8,
                )
                yield delivered
        """,
}


class TestCHX021:
    def test_only_the_untimed_remote_wait_reports(self, tmp_path):
        build_pkg(tmp_path, CHX021_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX021"})
        (found,) = findings_of(result, "CHX021")
        assert ".fetch yields" in found.message
        assert "'delivered'" in found.message
        assert found.severity == "warning"

    def test_declared_timeout_helper_exempts_the_wait(self, tmp_path):
        # patient_ping in the extraction fixture waits behind a helper
        # declared ``timeout.backoff`` in PROTOCOL_TRANSITIONS; only the
        # bare ping wait fires.
        build_pkg(tmp_path, PROTOCOL_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX021"})
        (found,) = findings_of(result, "CHX021")
        assert "Client.ping" in found.message

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX021_FIXTURE)
        files["proj/sim/node.py"] = files["proj/sim/node.py"].replace(
            "                yield delivered\n\n"
            "            def fetch_guarded",
            "                yield delivered"
            "  # chaos: ignore[CHX021] fixture\n\n"
            "            def fetch_guarded",
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX021"})
        assert findings_of(result, "CHX021") == []


CHX022_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/eng.py": """\
        class Engine:
            def __init__(self, barrier):
                self.barrier = barrier

            def lopsided(self, flag):
                if flag:
                    self.barrier.wait()
                return 1

            def uneven_counts(self, flag):
                if flag:
                    self.barrier.wait()
                    self.barrier.wait()
                else:
                    self.barrier.wait()
                return 1
        """,
}


class TestCHX022:
    def test_fires_only_on_presence_vs_absence(self, tmp_path):
        build_pkg(tmp_path, CHX022_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX022"})
        (found,) = findings_of(result, "CHX022")
        assert found.line == 6  # lopsided's if; uneven_counts exempt
        assert "never arrive" in found.message
        assert found.severity == "error"

    def test_chx010_still_sees_the_sequence_mismatch(self, tmp_path):
        # The count divergence CHX022 ignores stays a CHX010 finding:
        # the rules partition by shape, not by site.
        build_pkg(tmp_path, CHX022_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX010"})
        assert [f.line for f in findings_of(result, "CHX010")] == [6, 11]

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX022_FIXTURE)
        files["proj/sim/eng.py"] = files["proj/sim/eng.py"].replace(
            "                if flag:\n"
            "                    self.barrier.wait()\n"
            "                return 1",
            "                if flag:  # chaos: ignore[CHX022] fixture\n"
            "                    self.barrier.wait()\n"
            "                return 1",
            1,
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX022"})
        assert findings_of(result, "CHX022") == []


CHX023_FIXTURE = {
    "proj/__init__.py": "",
    "proj/sim/__init__.py": "",
    "proj/sim/wire.py": """\
        class Message:
            def __init__(self, src, dst, service, kind, size):
                self.kind = kind
        """,
    "proj/sim/node.py": """\
        from proj.sim.wire import Message


        class Server:
            def __init__(self, network, machine):
                self._mailbox = network.register(machine, "alpha")

            def _serve(self):
                while True:
                    message = yield self._mailbox.get()
                    if message.kind == "ping":
                        self._count = 1


        class Forge:
            def craft_ok(self):
                return Message(0, 1, "alpha", "ping", 8)

            def craft_ghost(self):
                return Message(0, 1, "alpha", "phantom", 8)

            def craft_kw(self):
                return Message(0, 1, "alpha", kind="wraith", size=8)
        """,
}


class TestCHX023:
    def test_ghost_kinds_report_modeled_kind_does_not(self, tmp_path):
        build_pkg(tmp_path, CHX023_FIXTURE)
        result = deep_check(tmp_path, rules={"CHX023"})
        found = findings_of(result, "CHX023")
        kinds = sorted(
            m.split("'")[1] for m in (f.message for f in found)
        )
        assert kinds == ["phantom", "wraith"]
        assert all(f.severity == "warning" for f in found)
        assert all("bypasses the extracted protocol" in f.message
                   for f in found)

    def test_suppression_honored(self, tmp_path):
        files = dict(CHX023_FIXTURE)
        files["proj/sim/node.py"] = files["proj/sim/node.py"].replace(
            '                return Message(0, 1, "alpha", "phantom", 8)',
            '                return Message(0, 1, "alpha", "phantom", 8)'
            "  # chaos: ignore[CHX023] fixture",
        )
        build_pkg(tmp_path, files)
        result = deep_check(tmp_path, rules={"CHX023"})
        found = findings_of(result, "CHX023")
        assert ["wraith" in f.message for f in found] == [True]


class TestRuleRegistration:
    def test_protocol_rules_in_table_with_titles(self):
        assert DEEP_RULE_TABLE["CHX019"] == (
            "send with no matching receive handler"
        )
        assert DEEP_RULE_TABLE["CHX020"] == (
            "receive loop missing epoch guard"
        )
        assert DEEP_RULE_TABLE["CHX021"] == (
            "blocking wait with no timeout/liveness path"
        )
        assert DEEP_RULE_TABLE["CHX022"] == (
            "barrier arrive reachable on one branch but not its sibling"
        )
        assert DEEP_RULE_TABLE["CHX023"] == (
            "message kind constructed but absent from the extracted model"
        )


class TestAnalyzerVersionCache:
    def test_analyzer_version_bumped_for_protocol_rules(self):
        assert ANALYZER_VERSION == 4

    def test_version_bump_invalidates_pickled_deep_index(
        self, tmp_path, monkeypatch
    ):
        """A cache written by the previous analyzer revision must not
        be served once ANALYZER_VERSION moves (the protocol model rides
        in DeepContext, so stale caches would hide CHX019-023)."""
        pkg = tmp_path / "pkg"
        build_pkg(pkg, CHX020_FIXTURE)
        cache = tmp_path / "cache"

        engine = DeepEngine()
        monkeypatch.setattr(
            "repro.analysis.flow.engine.ANALYZER_VERSION",
            ANALYZER_VERSION - 1,
        )
        first = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert first.cache_hit is False
        assert engine.check_paths(
            [str(pkg)], cache_dir=str(cache)
        ).cache_hit is True

        monkeypatch.setattr(
            "repro.analysis.flow.engine.ANALYZER_VERSION",
            ANALYZER_VERSION,
        )
        bumped = engine.check_paths([str(pkg)], cache_dir=str(cache))
        assert bumped.cache_hit is False
        assert findings_of(bumped, "CHX020")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestProtocolCLI:
    def test_check_protocol_exits_zero_and_exports(
        self, tmp_path, capsys
    ):
        build_pkg(tmp_path / "pkg", PROTOCOL_FIXTURE)
        dot = tmp_path / "model.dot"
        blob = tmp_path / "model.json"
        code = main([
            "check", str(tmp_path / "pkg"), "--protocol",
            "--machines", "2",
            "--model-dot", str(dot), "--model-json", str(blob),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol model:" in out
        assert "model check: m=2" in out
        assert "states=" in out
        assert "verdict: PASS" in out
        assert dot.read_text().startswith("digraph protocol {")
        exported = json.loads(blob.read_text())
        assert exported["alphabet"] == ["accept", "ping", "share"]

    def test_check_protocol_json_format(self, tmp_path, capsys):
        build_pkg(tmp_path / "pkg", PROTOCOL_FIXTURE)
        code = main([
            "check", str(tmp_path / "pkg"), "--protocol",
            "--format", "json",
        ])
        assert code == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["check"]["ok"] is True
        assert blob["check"]["machines"] == 2
        assert blob["model"]["model_version"] == 1

    def test_check_protocol_shares_deep_index_cache(
        self, tmp_path, capsys
    ):
        build_pkg(tmp_path / "pkg", PROTOCOL_FIXTURE)
        cache = tmp_path / "cache"
        argv = ["check", str(tmp_path / "pkg"), "--protocol",
                "--cache-dir", str(cache)]
        assert main(argv) == 0
        (pickled,) = cache.glob("deepindex-*.pkl")
        stamp = pickled.stat().st_mtime_ns
        assert main(argv) == 0  # served from the pickled index
        assert pickled.stat().st_mtime_ns == stamp
        capsys.readouterr()

    def test_check_protocol_rejects_silly_machine_counts(self, capsys):
        assert main(["check", "src", "--protocol",
                     "--machines", "5"]) == 2
        assert main(["check", "src", "--protocol",
                     "--machines", "0"]) == 2
        assert "--machines" in capsys.readouterr().err

    def test_trace_conform_cli_passes_on_real_trace(
        self, tmp_path, small_graph, capsys
    ):
        tracer = Tracer(sample_interval=None)
        run_algorithm(
            PageRank(iterations=2), small_graph, fast_config(2, seed=11),
            tracer=tracer,
        )
        trace_path = tmp_path / "run.trace.json"
        write_chrome_trace(tracer, str(trace_path))

        report_path = tmp_path / "conformance.json"
        model_path = tmp_path / "model.json"
        code = main([
            "trace", "conform", str(trace_path), "--src", "src",
            "--report-json", str(report_path),
            "--model-json", str(model_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace conformance: PASS" in out
        assert "unmodeled transitions: none" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["unmodeled"] == []
        model = json.loads(model_path.read_text())
        assert "steal_request" in model["alphabet"]

    def test_trace_conform_fails_on_unmodeled_traffic(
        self, tmp_path, small_graph, capsys
    ):
        tracer = Tracer(sample_interval=None)
        run_algorithm(
            PageRank(iterations=2), small_graph, fast_config(2, seed=11),
            tracer=tracer,
        )
        trace = chrome_trace_dict(tracer)
        for event in trace["causalEvents"]:
            if event.get("kind") == "msg":
                event["cat"] = "off_the_books"
                break
        trace_path = tmp_path / "doctored.trace.json"
        trace_path.write_text(json.dumps(trace))
        code = main(["trace", "conform", str(trace_path),
                     "--src", "src"])
        out = capsys.readouterr().out
        assert code == 1
        assert "off_the_books" in out

    def test_trace_conform_rejects_causal_less_trace(self, tmp_path):
        stub = tmp_path / "plain.trace.json"
        stub.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(SystemExit, match="causalEvents"):
            main(["trace", "conform", str(stub), "--src", "src"])


# ---------------------------------------------------------------------------
# Fuzz deadlock capture
# ---------------------------------------------------------------------------


class TestFuzzTraceCapture:
    def test_capture_trace_writes_causal_events(
        self, tmp_path, small_graph, src_model
    ):
        fuzzer = ChaosFuzzer(
            lambda: PageRank(iterations=2),
            small_graph,
            fast_config(2, checkpointing=True, seed=7),
            seed=3, max_specs=2, max_iteration=1,
        )
        path = tmp_path / "episode.trace.json"
        outcome = fuzzer.capture_trace(None, str(path))
        assert outcome == "ok"
        trace = json.loads(path.read_text())
        assert trace["causalEvents"]
        report = conform_trace(trace, src_model)
        assert report is not None and report.ok

    def test_fuzz_cli_writes_trace_next_to_deadlock_reproducer(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.faults import FaultPlan, parse_fault_spec
        from repro.faults import fuzz as fuzz_mod

        plan = FaultPlan([parse_fault_spec("crash-restart:0@iter=1")])
        violation = fuzz_mod.Violation(
            episode=fuzz_mod.EpisodeResult(
                index=4, plan=plan, outcome=fuzz_mod.OUTCOME_DEADLOCK,
                detail="wedged", recoveries=0,
            ),
            shrunk=plan,
            shrunk_outcome=fuzz_mod.OUTCOME_DEADLOCK,
            shrink_runs=1,
        )
        report = fuzz_mod.FuzzReport(
            seed=3, episodes=[violation.episode],
            violations=[violation],
        )
        monkeypatch.setattr(
            fuzz_mod.ChaosFuzzer, "run_campaign",
            lambda self, episodes: report,
        )
        captured = {}

        def fake_capture(self, shrunk_plan, path):
            captured["plan"] = shrunk_plan
            captured["path"] = path
            return fuzz_mod.OUTCOME_DEADLOCK

        monkeypatch.setattr(
            fuzz_mod.ChaosFuzzer, "capture_trace", fake_capture
        )
        code = main([
            "fuzz", "--episodes", "1", "--scale", "6", "--seed", "3",
            "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 1  # violations fail the campaign
        assert captured["plan"] is plan
        assert captured["path"] == str(
            tmp_path / "fuzz-repro-s3-e4.trace.json"
        )
        assert "deadlock causal trace ->" in out
        # The reproducer itself still lands beside the trace.
        assert (tmp_path / "fuzz-repro-s3-e4.faults").exists()

"""Unit tests for the GAS model base class and algorithm metadata."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    MIS,
    SSSP,
    WCC,
    BeliefPropagation,
    Conductance,
    PageRank,
    SpMV,
)
from repro.core.gas import GasAlgorithm, GraphContext


ALL_SINGLE_JOB = [
    BFS(),
    WCC(),
    MIS(),
    SSSP(),
    PageRank(),
    Conductance(),
    SpMV(),
    BeliefPropagation(),
]


class TestMetadata:
    @pytest.mark.parametrize("algorithm", ALL_SINGLE_JOB, ids=lambda a: a.name)
    def test_wire_sizes_positive(self, algorithm):
        assert algorithm.update_bytes > 0
        assert algorithm.vertex_bytes > 0
        assert algorithm.accum_bytes > 0
        assert algorithm.vertex_state_bytes() >= algorithm.vertex_bytes

    def test_undirected_flags(self):
        assert BFS().needs_undirected
        assert WCC().needs_undirected
        assert MIS().needs_undirected
        assert SSSP().needs_undirected
        assert not PageRank().needs_undirected
        assert not SpMV().needs_undirected

    def test_iteration_modes(self):
        assert BFS().max_iterations is None  # quiescence
        assert PageRank(iterations=7).max_iterations == 7
        assert Conductance().max_iterations == 1
        assert SpMV().max_iterations == 1

    def test_repr_contains_name(self):
        assert "PR" in repr(PageRank())


class TestFinishedDefault:
    class _Stats:
        def __init__(self, updates):
            self.updates_produced = updates
            self.vertices_changed = 0

    def test_fixed_iteration_policy(self):
        algorithm = PageRank(iterations=3)
        assert not algorithm.finished(0, self._Stats(100))
        assert not algorithm.finished(1, self._Stats(100))
        assert algorithm.finished(2, self._Stats(100))

    def test_quiescence_policy(self):
        algorithm = WCC()
        assert not algorithm.finished(0, self._Stats(5))
        assert algorithm.finished(0, self._Stats(0))


class TestConstructorValidation:
    def test_pagerank(self):
        with pytest.raises(ValueError):
            PageRank(iterations=0)
        with pytest.raises(ValueError):
            PageRank(damping=1.0)

    def test_bfs_sssp_roots(self):
        with pytest.raises(ValueError):
            BFS(root=-1)
        with pytest.raises(ValueError):
            SSSP(root=-1)

    def test_conductance_split(self):
        with pytest.raises(ValueError):
            Conductance(split_fraction=0.0)
        with pytest.raises(ValueError):
            Conductance(split_fraction=1.0)

    def test_bp(self):
        with pytest.raises(ValueError):
            BeliefPropagation(iterations=0)

    def test_spmv_wrong_vector_length(self):
        algorithm = SpMV(x=np.ones(3))
        ctx = GraphContext(num_vertices=5, num_edges=0, weighted=False)
        with pytest.raises(ValueError, match="length"):
            algorithm.init_values(ctx)


class TestGatherMergeConsistency:
    """merge(a, b) must equal gathering b's constituents into a —
    the algebraic requirement behind stealer-accumulator merging."""

    @pytest.mark.parametrize(
        "algorithm",
        [BFS(), WCC(), PageRank(), SpMV(), BeliefPropagation()],
        ids=lambda a: a.name,
    )
    def test_merge_equals_combined_gather(self, algorithm):
        ctx = GraphContext(
            num_vertices=8,
            num_edges=0,
            weighted=False,
            out_degrees=np.ones(8, dtype=np.int64),
        )
        algorithm.init_values(ctx)
        rng = np.random.default_rng(0)
        dst_a = rng.integers(0, 8, size=20)
        dst_b = rng.integers(0, 8, size=20)
        if algorithm.name in ("BFS", "WCC"):
            values_a = rng.integers(0, 100, size=20)
            values_b = rng.integers(0, 100, size=20)
        else:
            values_a = rng.random(20)
            values_b = rng.random(20)

        combined = algorithm.make_accumulator(8)
        algorithm.gather(combined, dst_a, values_a)
        algorithm.gather(combined, dst_b, values_b)

        partial_a = algorithm.make_accumulator(8)
        algorithm.gather(partial_a, dst_a, values_a)
        partial_b = algorithm.make_accumulator(8)
        algorithm.gather(partial_b, dst_b, values_b)
        algorithm.merge(partial_a, partial_b)

        assert np.allclose(
            np.asarray(partial_a, dtype=np.float64),
            np.asarray(combined, dtype=np.float64),
        )

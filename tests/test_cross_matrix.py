"""Cross-engine, cross-dataset consistency matrix.

The same algorithm must produce the same answer on every engine (Chaos
at any cluster size, X-Stream, Giraph) and every backend — the systems
differ only in how data moves.  Exercised on the synthetic web graph
(a different degree profile than RMAT) and odd machine counts.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    MIS,
    SSSP,
    WCC,
    BeliefPropagation,
    Conductance,
    PageRank,
    SpMV,
    run_mcst,
    run_scc,
)
from repro.baselines import run_giraph, run_xstream
from repro.core.runtime import ChaosCluster, run_algorithm
from repro.graph import data_commons_like, to_undirected
from repro.store import FileChunkStore

from tests.conftest import fast_config
from tests.references import (
    reference_bfs_distances,
    reference_component_labels,
    reference_mst_weight,
    reference_pagerank,
    reference_scc_ids,
    reference_spmv,
    reference_sssp_distances,
)


@pytest.fixture(scope="module")
def web():
    return data_commons_like(600, avg_degree=6.0, seed=33)


@pytest.fixture(scope="module")
def web_undirected(web):
    graph = to_undirected(web)
    # Attach weights for the weighted algorithms.
    rng = np.random.default_rng(5)
    # Symmetric weights: derive from the unordered pair.
    lo = np.minimum(graph.src, graph.dst)
    hi = np.maximum(graph.src, graph.dst)
    mix = (lo * 1_000_003 + hi) % 9973
    from repro.graph.edgelist import EdgeList

    return EdgeList(
        num_vertices=graph.num_vertices,
        src=graph.src,
        dst=graph.dst,
        weight=0.01 + (mix / 9973.0),
    )


class TestWebGraphCorrectness:
    """All ten algorithms on the web-profile graph, 3-machine cluster."""

    def test_bfs(self, web_undirected):
        result = run_algorithm(BFS(root=1), web_undirected, fast_config(3))
        assert np.array_equal(
            result.values["distance"],
            reference_bfs_distances(web_undirected, 1),
        )

    def test_wcc(self, web_undirected):
        result = run_algorithm(WCC(), web_undirected, fast_config(3))
        assert np.array_equal(
            result.values["label"], reference_component_labels(web_undirected)
        )

    def test_sssp(self, web_undirected):
        result = run_algorithm(SSSP(root=1), web_undirected, fast_config(3))
        assert np.allclose(
            result.values["distance"],
            reference_sssp_distances(web_undirected, 1),
        )

    def test_mis(self, web_undirected):
        result = run_algorithm(MIS(), web_undirected, fast_config(3))
        status = result.values["status"]
        in_set = status == 1
        assert (status != 0).all()
        assert not (
            in_set[web_undirected.src] & in_set[web_undirected.dst]
        ).any()

    def test_mcst(self, web_undirected):
        result = run_mcst(web_undirected, fast_config(3))
        assert result.values["mst_weight"] == pytest.approx(
            reference_mst_weight(web_undirected)
        )

    def test_scc(self, web):
        result = run_scc(web, fast_config(3))
        assert np.array_equal(result.values["scc"], reference_scc_ids(web))

    def test_pagerank(self, web):
        result = run_algorithm(PageRank(iterations=4), web, fast_config(3))
        assert np.allclose(
            result.values["rank"], reference_pagerank(web, iterations=4)
        )

    def test_spmv(self, web):
        x = np.random.default_rng(0).random(web.num_vertices)
        result = run_algorithm(SpMV(x=x), web, fast_config(3))
        assert np.allclose(result.values["y"], reference_spmv(web, x))

    def test_conductance_runs(self, web):
        algorithm = Conductance()
        result = run_algorithm(algorithm, web, fast_config(3))
        value = algorithm.conductance_from_values(result.values)
        assert value >= 0.0

    def test_bp_runs(self, web):
        result = run_algorithm(
            BeliefPropagation(iterations=3), web, fast_config(3)
        )
        assert np.isfinite(result.values["belief"]).all()


class TestEngineAgreement:
    """Chaos == X-Stream == Giraph, record for record."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: PageRank(iterations=3),
            lambda: SpMV(seed=4),
            lambda: BeliefPropagation(iterations=3),
        ],
        ids=["PR", "SpMV", "BP"],
    )
    def test_directed_algorithms(self, web, make):
        chaos = run_algorithm(make(), web, fast_config(3))
        xstream = run_xstream(make(), web)
        giraph = run_giraph(make(), web, machines=3)
        for key in chaos.values:
            assert np.allclose(chaos.values[key], xstream.values[key])
            assert np.allclose(chaos.values[key], giraph.values[key])

    @pytest.mark.parametrize(
        "make",
        [lambda: BFS(root=1), lambda: WCC()],
        ids=["BFS", "WCC"],
    )
    def test_undirected_algorithms(self, web_undirected, make):
        chaos = run_algorithm(make(), web_undirected, fast_config(3))
        xstream = run_xstream(make(), web_undirected)
        giraph = run_giraph(make(), web_undirected, machines=3)
        for key in chaos.values:
            assert np.array_equal(chaos.values[key], xstream.values[key])
            assert np.array_equal(chaos.values[key], giraph.values[key])


class TestFileBackendMatrix:
    @pytest.mark.parametrize(
        "make",
        [lambda: BFS(root=1), lambda: SpMV(seed=2)],
        ids=["BFS", "SpMV"],
    )
    def test_file_backend_agrees_with_memory(
        self, tmp_path, web, web_undirected, make
    ):
        algorithm = make()
        graph = web_undirected if algorithm.needs_undirected else web
        config = fast_config(2)
        memory = ChaosCluster(config).run(make(), graph)
        files = ChaosCluster(
            config,
            backend_factory=lambda m: FileChunkStore(str(tmp_path / f"m{m}")),
        ).run(make(), graph)
        for key in memory.values:
            assert np.allclose(memory.values[key], files.values[key])

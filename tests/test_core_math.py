"""Unit tests for the analytic building blocks: batching math (Eq. 3-5)
and the steal criterion (Eq. 1-2)."""

import math

import pytest

from repro.core.batching import (
    amplification_factor,
    request_window,
    utilization,
    utilization_limit,
)
from repro.core.stealing import (
    estimate_cluster_remaining,
    should_accept_steal,
)


class TestBatchingMath:
    def test_phi_equals_two_when_latencies_match(self):
        """The paper's measured case: SSD latency == 40 GigE round trip."""
        assert amplification_factor(100e-6, 100e-6) == pytest.approx(2.0)

    def test_phi_grows_with_network_latency(self):
        assert amplification_factor(300e-6, 100e-6) == pytest.approx(4.0)

    def test_window_is_phi_k(self):
        assert request_window(5, 100e-6, 100e-6) == 10  # the Fig 16 sweet spot

    def test_window_rounds_up(self):
        assert request_window(3, 50e-6, 100e-6) == 5  # ceil(4.5)

    def test_utilization_matches_formula(self):
        # Spot-check Eq. 4 directly.
        assert utilization(10, 2) == pytest.approx(1 - (1 - 0.2) ** 10)

    def test_utilization_k_ge_m_is_full(self):
        assert utilization(4, 4) == 1.0
        assert utilization(4, 10) == 1.0

    def test_utilization_decreases_with_machines(self):
        values = [utilization(m, 3) for m in (5, 10, 20, 30)]
        assert values == sorted(values, reverse=True)

    def test_utilization_increases_with_k(self):
        values = [utilization(30, k) for k in (1, 2, 3, 5)]
        assert values == sorted(values)

    def test_limit_bounds_utilization_below(self):
        """Eq. 5: the m→∞ limit lower-bounds ρ for every finite m."""
        for k in (1, 2, 3, 5):
            for m in (5, 10, 100, 1000):
                assert utilization(m, k) >= utilization_limit(k) - 1e-12

    def test_paper_headline_number(self):
        """k = 5 keeps utilization above 99.3% for any cluster size."""
        assert utilization_limit(5) > 0.993
        assert utilization(32, 5) > 0.995  # the Fig 16 discussion: 99.56%

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            utilization(0, 1)
        with pytest.raises(ValueError):
            utilization(5, 0)
        with pytest.raises(ValueError):
            utilization_limit(0)
        with pytest.raises(ValueError):
            amplification_factor(-1, 1)
        with pytest.raises(ValueError):
            amplification_factor(1, 0)
        with pytest.raises(ValueError):
            request_window(0, 1, 1)


class TestStealCriterion:
    def test_accepts_when_data_dwarfs_vertices(self):
        assert should_accept_steal(
            vertex_bytes=100, remaining_bytes=1_000_000, workers=1
        )

    def test_rejects_when_vertex_cost_dominates(self):
        assert not should_accept_steal(
            vertex_bytes=1_000_000, remaining_bytes=1_000, workers=1
        )

    def test_exact_boundary(self):
        """V + D/(H+1) < D/H with H=1: accept iff V < D/2."""
        assert should_accept_steal(vertex_bytes=499, remaining_bytes=1000, workers=1)
        assert not should_accept_steal(
            vertex_bytes=500, remaining_bytes=1000, workers=1
        )

    def test_more_workers_make_acceptance_harder(self):
        kwargs = dict(vertex_bytes=100, remaining_bytes=10_000)
        accepted = [
            should_accept_steal(workers=h, **kwargs).accept for h in range(1, 60)
        ]
        # Monotone: once rejected, stays rejected as H grows.
        first_reject = accepted.index(False)
        assert not any(accepted[first_reject:])

    def test_monotone_in_remaining_data(self):
        """Once D has shrunk below the acceptance point it never recovers
        (the property that justifies the single steal pass per phase)."""
        results = [
            should_accept_steal(
                vertex_bytes=100, remaining_bytes=d, workers=2
            ).accept
            for d in range(0, 10_000, 100)
        ]
        # Sorted: False ... False True ... True as D increases.
        assert results == sorted(results)

    def test_alpha_zero_never_steals(self):
        assert not should_accept_steal(
            vertex_bytes=0, remaining_bytes=10**12, workers=1, alpha=0.0
        )

    def test_alpha_inf_always_steals(self):
        assert should_accept_steal(
            vertex_bytes=10**12, remaining_bytes=0, workers=99, alpha=math.inf
        )

    def test_alpha_scales_aggressiveness(self):
        kwargs = dict(vertex_bytes=400, remaining_bytes=1000, workers=1)
        assert not should_accept_steal(alpha=0.8, **kwargs)
        assert should_accept_steal(alpha=1.2, **kwargs)

    def test_workers_clamped_to_one(self):
        decision = should_accept_steal(
            vertex_bytes=1, remaining_bytes=1000, workers=0
        )
        assert decision.workers == 1

    def test_estimate_scales_by_machines(self):
        assert estimate_cluster_remaining(100, 32) == 3200.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            should_accept_steal(-1, 0, 1)
        with pytest.raises(ValueError):
            should_accept_steal(0, -1, 1)
        with pytest.raises(ValueError):
            should_accept_steal(0, 0, 1, alpha=-0.1)
        with pytest.raises(ValueError):
            estimate_cluster_remaining(-1, 2)
        with pytest.raises(ValueError):
            estimate_cluster_remaining(1, 0)

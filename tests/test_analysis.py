"""Tests for the determinism lint engine (CHX rules).

Each rule gets positive fixtures (violating code that must be flagged)
and negative fixtures (idiomatic code that must pass), plus suppression
handling, output formats, the CLI entry point and the self-host check:
the repository's own source tree must be clean.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Finding,
    LintEngine,
    default_rules,
    format_github,
    format_json,
    format_text,
)
from repro.analysis.rules import RULE_TABLE
from repro.cli import main

SIM_PATH = "src/repro/sim/fixture.py"
COMPUTE_PATH = "src/repro/core/fixture.py"
OUTSIDE_PATH = "src/repro/graph/fixture.py"


def lint(source, path=SIM_PATH):
    return LintEngine().check_source(source, path=path)


def rule_ids(result):
    return [f.rule_id for f in result.findings]


# ---------------------------------------------------------------------------
# CHX001: wall clock in simulated-clock packages


class TestWallClock:
    def test_flags_time_time_in_sim_package(self):
        result = lint("t0 = time.time()\n")
        assert rule_ids(result) == ["CHX001"]
        assert result.findings[0].line == 1

    def test_flags_bare_import_time(self):
        # The import alone is a finding: a module object in scope would
        # let wall-clock reads sidestep the call check.
        result = lint("import time\n")
        assert rule_ids(result) == ["CHX001"]
        assert "repro.obs.hostclock" in result.findings[0].message

    def test_import_and_call_are_two_findings(self):
        result = lint("import time\nt0 = time.time()\n")
        assert rule_ids(result) == ["CHX001", "CHX001"]
        assert [f.line for f in result.findings] == [1, 2]

    def test_hostclock_module_is_exempt(self):
        # repro/obs/hostclock.py is the single sanctioned host-clock
        # entry point; CHX001 skips it by module path.
        result = lint(
            "import time\nt0 = time.perf_counter_ns()\n",
            path="src/repro/obs/hostclock.py",
        )
        assert result.clean

    @pytest.mark.parametrize(
        "call", ["time.sleep(1)", "time.perf_counter()", "time.monotonic()",
                 "time.perf_counter_ns()", "time.process_time_ns()"]
    )
    def test_flags_other_wall_clock_calls(self, call):
        result = lint(f"{call}\n")
        assert rule_ids(result) == ["CHX001"]

    def test_flags_datetime_now(self):
        result = lint("import datetime\nstamp = datetime.now()\n")
        assert rule_ids(result) == ["CHX001"]

    def test_flags_from_time_import(self):
        result = lint("from time import perf_counter\n")
        assert rule_ids(result) == ["CHX001"]

    def test_ignores_outside_sim_packages(self):
        result = lint("import time\nt0 = time.time()\n", path=OUTSIDE_PATH)
        assert result.clean

    def test_ignores_simulated_clock_use(self):
        result = lint("def f(sim):\n    return sim.now\n")
        assert result.clean


# ---------------------------------------------------------------------------
# CHX002: global-state randomness


class TestGlobalRandom:
    def test_flags_random_module_call(self):
        result = lint("import random\nx = random.randint(0, 9)\n")
        assert rule_ids(result) == ["CHX002"]

    def test_flags_np_random_legacy_call(self):
        result = lint("import numpy as np\nx = np.random.rand(4)\n")
        assert rule_ids(result) == ["CHX002"]

    def test_flags_from_random_import(self):
        result = lint("from random import shuffle\n")
        assert rule_ids(result) == ["CHX002"]

    def test_applies_everywhere_not_just_sim_packages(self):
        result = lint("import random\nrandom.random()\n", path=OUTSIDE_PATH)
        assert rule_ids(result) == ["CHX002"]

    def test_allows_seeded_constructors(self):
        result = lint(
            "import random\nimport numpy as np\n"
            "rng = random.Random(7)\ngen = np.random.default_rng(7)\n"
        )
        assert result.clean

    def test_allows_generator_methods(self):
        result = lint("def f(rng):\n    return rng.integers(0, 9)\n")
        assert result.clean


# ---------------------------------------------------------------------------
# CHX003: StorageEngine mediation


class TestStorageMediation:
    def test_flags_device_reach_through(self):
        result = lint(
            "def f(store):\n    return store.device.service(100)\n",
            path=COMPUTE_PATH,
        )
        assert rule_ids(result) == ["CHX003"]

    def test_flags_backend_reach_through(self):
        result = lint(
            "def f(store):\n    return store.backend.fetch_any(0, kind)\n",
            path=COMPUTE_PATH,
        )
        assert rule_ids(result) == ["CHX003"]

    def test_flags_device_alias(self):
        result = lint(
            "def f(store):\n    dev = store.device\n    return dev\n",
            path=COMPUTE_PATH,
        )
        assert rule_ids(result) == ["CHX003"]

    def test_allows_device_spec_reads(self):
        result = lint(
            "def f(config):\n    return config.device.bandwidth\n",
            path=COMPUTE_PATH,
        )
        assert result.clean

    def test_allows_storage_engine_methods(self):
        result = lint(
            "def f(store):\n    return store.local_input_read(100)\n",
            path=COMPUTE_PATH,
        )
        assert result.clean

    def test_ignores_outside_compute_packages(self):
        result = lint(
            "def f(store):\n    return store.device.service(100)\n",
            path=OUTSIDE_PATH,
        )
        assert result.clean


# ---------------------------------------------------------------------------
# CHX004: simulator-process hygiene


class TestProcessHygiene:
    def test_flags_discarded_wait(self):
        result = lint("def f(barrier):\n    barrier.wait()\n")
        assert rule_ids(result) == ["CHX004"]

    def test_flags_unscheduled_generator_call(self):
        source = (
            "def worker(sim):\n"
            "    yield sim.timeout(1)\n"
            "\n"
            "def start(sim):\n"
            "    worker(sim)\n"
        )
        result = lint(source)
        assert rule_ids(result) == ["CHX004"]
        assert result.findings[0].line == 5

    def test_allows_yielded_wait(self):
        result = lint("def f(barrier):\n    yield barrier.wait()\n")
        assert result.clean

    def test_allows_scheduled_generator(self):
        source = (
            "def worker(sim):\n"
            "    yield sim.timeout(1)\n"
            "\n"
            "def start(sim):\n"
            "    sim.process(worker(sim))\n"
        )
        result = lint(source)
        assert result.clean

    def test_plain_function_call_statement_is_fine(self):
        source = (
            "def note(x):\n"
            "    return x\n"
            "\n"
            "def start():\n"
            "    note(1)\n"
        )
        result = lint(source)
        assert result.clean


# ---------------------------------------------------------------------------
# CHX005: nondeterministic ordering hazards


class TestNondetOrder:
    def test_flags_mutable_default(self):
        result = lint("def f(items=[]):\n    return items\n")
        assert rule_ids(result) == ["CHX005"]

    def test_flags_dict_call_default(self):
        result = lint("def f(table=dict()):\n    return table\n")
        assert rule_ids(result) == ["CHX005"]

    def test_flags_direct_set_iteration(self):
        result = lint(
            "def f():\n    for x in {3, 1, 2}:\n        consume(x)\n"
        )
        assert rule_ids(result) == ["CHX005"]

    def test_flags_set_call_comprehension(self):
        result = lint("def f(xs):\n    return [x for x in set(xs)]\n")
        assert rule_ids(result) == ["CHX005"]

    def test_flags_set_assigned_then_iterated(self):
        source = (
            "def f(xs):\n"
            "    pending = set(xs)\n"
            "    for x in pending:\n"
            "        consume(x)\n"
        )
        result = lint(source)
        assert rule_ids(result) == ["CHX005"]

    def test_allows_sorted_set_iteration(self):
        source = (
            "def f(xs):\n"
            "    pending = set(xs)\n"
            "    for x in sorted(pending):\n"
            "        consume(x)\n"
        )
        result = lint(source)
        assert result.clean

    def test_allows_none_default(self):
        result = lint("def f(items=None):\n    return items or []\n")
        assert result.clean

    def test_ignores_outside_sim_packages(self):
        result = lint("def f(items=[]):\n    return items\n",
                      path=OUTSIDE_PATH)
        assert result.clean


# ---------------------------------------------------------------------------
# CHX006: broad exception handlers that can swallow Interrupt


class TestBroadExcept:
    def test_flags_bare_except(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        )
        result = lint(source)
        assert rule_ids(result) == ["CHX006"]
        assert result.findings[0].line == 4

    @pytest.mark.parametrize("exc", ["Exception", "BaseException"])
    def test_flags_broad_catch(self, exc):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            f"    except {exc}:\n"
            "        log()\n"
        )
        result = lint(source)
        assert rule_ids(result) == ["CHX006"]

    def test_flags_broad_catch_in_tuple(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, Exception) as error:\n"
            "        log(error)\n"
        )
        result = lint(source)
        assert rule_ids(result) == ["CHX006"]

    def test_flags_in_faults_package(self):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    pass\n"
        )
        result = lint(source, path="src/repro/faults/fixture.py")
        assert rule_ids(result) == ["CHX006"]

    def test_allows_reraise(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "        raise\n"
        )
        result = lint(source)
        assert result.clean

    def test_allows_specific_exceptions(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, KeyError):\n"
            "        pass\n"
        )
        result = lint(source)
        assert result.clean

    def test_ignores_outside_engine_packages(self):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    pass\n"
        )
        result = lint(source, path=OUTSIDE_PATH)
        assert result.clean


# ---------------------------------------------------------------------------
# CHX007: ad-hoc telemetry in engine packages


class TestAdHocTelemetry:
    def test_flags_print_in_engine_package(self):
        result = lint("print('scatter done')\n", path=COMPUTE_PATH)
        assert rule_ids(result) == ["CHX007"]
        assert "Tracer" in result.findings[0].message

    def test_flags_logging_import(self):
        result = lint("import logging\n")
        assert rule_ids(result) == ["CHX007"]

    def test_flags_from_logging_import(self):
        result = lint("from logging import getLogger\n")
        assert rule_ids(result) == ["CHX007"]

    def test_flags_logging_calls(self):
        result = lint(
            "import logging\nlogging.info('iteration %d', i)\n"
        )
        assert rule_ids(result) == ["CHX007", "CHX007"]

    def test_flags_stderr_write(self):
        result = lint("import sys\nsys.stderr.write('oops')\n")
        assert rule_ids(result) == ["CHX007"]

    def test_flags_stdout_write_in_obs(self):
        result = lint(
            "import sys\nsys.stdout.write('x')\n",
            path="src/repro/obs/fixture.py",
        )
        assert rule_ids(result) == ["CHX007"]

    def test_ignores_cli_and_benchmark_layers(self):
        # The CLI and graph/analysis layers own the terminal; only the
        # simulated-clock engine packages must stay silent.
        assert lint("print('ok')\n", path="src/repro/cli.py").clean
        assert lint("print('ok')\n", path=OUTSIDE_PATH).clean

    def test_ignores_tracer_and_counter_use(self):
        source = (
            "def f(track, registry, sim):\n"
            "    track.instant('phase.done')\n"
            "    registry.add('m0.bytes', sim.now, 42.0)\n"
        )
        assert lint(source, path=COMPUTE_PATH).clean

    def test_suppression_names_the_rule(self):
        result = lint(
            "print('x')  # chaos: ignore[CHX007] debug aid\n",
            path=COMPUTE_PATH,
        )
        assert result.clean
        assert result.suppressed[0].rule_id == "CHX007"


# ---------------------------------------------------------------------------
# Engine mechanics: suppression, syntax errors, path walking


class TestSuppression:
    def test_matching_id_suppresses(self):
        result = lint(
            "t0 = time.time()  # chaos: ignore[CHX001] profiling shim\n"
        )
        assert result.clean
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule_id == "CHX001"

    def test_wrong_id_does_not_suppress(self):
        result = lint(
            "t0 = time.time()  # chaos: ignore[CHX002]\n"
        )
        assert rule_ids(result) == ["CHX001"]
        assert not result.suppressed

    def test_multiple_ids(self):
        result = lint(
            "x = random.random() + time.time()"
            "  # chaos: ignore[CHX001, CHX002]\n"
        )
        assert result.clean
        assert len(result.suppressed) == 2

    def test_import_needs_its_own_suppression(self):
        # Suppressing the call does not cover the ``import time`` line:
        # the import is a separate finding on a separate statement.
        result = lint(
            "import time\n"
            "t0 = time.time()  # chaos: ignore[CHX001] profiling shim\n"
        )
        assert rule_ids(result) == ["CHX001"]
        assert result.findings[0].line == 1
        assert len(result.suppressed) == 1

    def test_comment_on_closing_paren_of_multiline_call(self):
        # The finding reports at the statement's first line; the comment
        # naturally lands on the closing paren.  Span matching bridges it.
        result = lint(
            "t0 = time.time(\n"
            ")  # chaos: ignore[CHX001] host profiling shim\n"
        )
        assert result.clean, result.findings
        assert len(result.suppressed) == 1
        assert result.suppressed[0].line == 1

    def test_comment_mid_span_of_multiline_statement(self):
        # Finding at the statement's first line, comment two lines down
        # inside the same statement span.
        result = lint(
            "total = time.time() + (\n"
            "    1\n"
            ")  # chaos: ignore[CHX001] fixture\n"
        )
        assert result.clean, result.findings
        assert len(result.suppressed) == 1

    def test_comment_inside_function_body_does_not_cover_def_line(self):
        # A suppression buried in a compound statement's body must not
        # widen to the header: only the header span bridges.
        result = lint(
            "def helper():\n"
            "    x = 1  # chaos: ignore[CHX001] unrelated\n"
            "    return time.time()\n"
        )
        assert rule_ids(result) == ["CHX001"]
        assert result.findings[0].line == 3


class TestEngine:
    def test_syntax_error_reported_as_chx000(self):
        result = lint("def broken(:\n")
        assert rule_ids(result) == ["CHX000"]

    def test_rule_filtering(self):
        rules = [r for r in default_rules() if r.rule_id == "CHX002"]
        engine = LintEngine(rules=rules)
        result = engine.check_source(
            "import time\nimport random\n"
            "time.time()\nrandom.random()\n",
            path=SIM_PATH,
        )
        assert rule_ids(result) == ["CHX002"]

    def test_check_paths_walks_directories(self, tmp_path):
        package = tmp_path / "sim"
        package.mkdir()
        (package / "bad.py").write_text("time.time()\n")
        (package / "good.py").write_text("x = 1\n")
        result = LintEngine().check_paths([str(tmp_path)])
        assert result.files_checked == 2
        assert rule_ids(result) == ["CHX001"]

    def test_rule_table_covers_all_rules(self):
        assert sorted(RULE_TABLE) == [
            "CHX001", "CHX002", "CHX003", "CHX004", "CHX005", "CHX006",
            "CHX007",
        ]


# ---------------------------------------------------------------------------
# Output formats


class TestFormats:
    FINDINGS = [
        Finding(file="src/repro/sim/x.py", line=3, rule_id="CHX001",
                severity="error", message="wall-clock call, bad: really"),
    ]

    def test_text_format(self):
        text = format_text(self.FINDINGS)
        assert text == (
            "src/repro/sim/x.py:3: CHX001 [error] "
            "wall-clock call, bad: really"
        )

    def test_json_format_round_trips(self):
        document = json.loads(format_json(self.FINDINGS, suppressed=2))
        assert document["count"] == 1
        assert document["suppressed"] == 2
        assert document["findings"][0]["rule_id"] == "CHX001"
        assert document["findings"][0]["line"] == 3

    def test_github_format_escapes_properties(self):
        line = format_github(self.FINDINGS)
        assert line.startswith(
            "::error file=src/repro/sim/x.py,line=3,title=CHX001::"
        )
        assert "wall-clock call%2C bad%3A really" in line

    def test_empty_findings_format_empty(self):
        assert format_text([]) == ""
        assert format_github([]) == ""


# ---------------------------------------------------------------------------
# CLI entry point


class TestCheckCommand:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["check", str(tmp_path)]) == 0

    def test_exit_nonzero_on_findings(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("import time\ntime.time()\n")
        assert main(["check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "CHX001" in out

    def test_json_format(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("time.time()\n")
        assert main(["check", str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 1

    def test_github_format(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("import time\ntime.time()\n")
        assert main(["check", str(tmp_path), "--format", "github"]) == 1
        assert capsys.readouterr().out.startswith("::error file=")

    def test_rules_filter(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("import time\ntime.time()\n")
        assert main(["check", str(tmp_path), "--rules", "CHX002"]) == 0

    def test_unknown_rule_id_exits_2(self, tmp_path, capsys):
        assert main(["check", str(tmp_path), "--rules", "CHX999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule ids: CHX999" in err
        assert "CHX012" in err  # deep rule ids are known too

    def test_stats_prints_per_rule_counts(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text(
            "time.time()\n"
            "time.monotonic()  # chaos: ignore[CHX001] fixture\n"
        )
        assert main(["check", str(tmp_path), "--stats"]) == 1
        err = capsys.readouterr().err
        assert "CHX001: 1 finding(s), 1 suppressed" in err

    def test_stats_in_json_document(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("time.time()\n")
        assert main(["check", str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["rule_stats"]["CHX001"]["findings"] == 1

    def test_deep_rule_filter_without_deep_flag_hints(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["check", str(tmp_path), "--rules", "CHX008"]) == 0
        assert "pass --deep" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Self-host: the repository's own source must be clean (tier 1)


class TestSelfHost:
    def test_repro_source_tree_has_no_unsuppressed_findings(self):
        source_root = Path(repro.__file__).parent
        result = LintEngine().check_paths([str(source_root)])
        assert result.findings == [], format_text(result.findings)
        assert result.files_checked > 50

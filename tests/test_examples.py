"""Smoke tests: the runnable examples must stay runnable.

Each example is imported from its file and its ``main()`` executed; the
slow ones (capacity planning, the full k-core sweep) are excluded to
keep the suite fast — they are exercised by their own library-level
tests instead.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "social_network_analysis", "web_graph_pipeline", "fault_tolerance"],
)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_all_have_mains():
    for entry in sorted(os.listdir(EXAMPLES_DIR)):
        if entry.endswith(".py"):
            module = _load(entry[:-3])
            assert hasattr(module, "main"), f"{entry} lacks main()"

"""Causal message-level tracing: recorder, chains, query, CLI.

Covers the four contracts of :mod:`repro.obs.causal`:

* recording is a passive annotation — traced runs are byte-identical to
  untraced runs per (config, seed), and traced runs serialize
  deterministically;
* the slowest-chain analyzer reconciles with critpath's interval
  decomposition: the chain terminates at the barrier-bound machine and
  explains its measured barrier wait within 5% (exactly, in practice —
  both derive from the same simulated events);
* the query language filters the DAG and walks backward chains;
* the Chrome exporter emits ``flow`` arrow pairs that round-trip and a
  lossless ``causalEvents`` document.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.core.config import ClusterConfig
from repro.core.runtime import _check_open_spans, run_algorithm
from repro.graph import rmat_graph
from repro.net.topology import GIGE_40_BENCH
from repro.obs import (
    Tracer,
    analyze_tracer,
    dumps_chrome_trace,
    trace_report_json,
    write_chrome_trace,
    write_counters_csv,
)
from repro.obs import causal as causal_mod
from repro.obs.causal import (
    CausalError,
    CausalRecorder,
    NULL_CAUSAL,
    barrier_chains,
    causal_edges_from_flows,
    causal_events_from_trace,
    chain_of,
    cross_check,
    event_duration,
    filter_events,
    format_chain,
    format_chain_table,
    format_event,
    parse_duration,
    parse_where,
    slowest_chains,
)
from repro.obs.export import chrome_trace_dict
from repro.obs.report import summarize_trace
from repro.store.device import SSD_BENCH

from tests.conftest import fast_config


class _StubTracer:
    """Minimal tracer stand-in: a controllable monotonic clock."""

    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


def _traced_run(graph, config, iterations=3, tracer=None):
    tracer = tracer if tracer is not None else Tracer(sample_interval=None)
    result = run_algorithm(
        PageRank(iterations=iterations), graph, config, tracer=tracer
    )
    return result, tracer


# ---------------------------------------------------------------------------
# Recorder unit tests
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_send_records_edge_and_returns_context(self):
        rec = CausalRecorder(_StubTracer())
        ctx = rec.on_send("read", src=0, dst=1, size=64)
        assert ctx == (0, 0, None)
        (event,) = rec.events
        assert event["kind"] == "msg"
        assert event["cat"] == "read"
        assert (event["src"], event["dst"], event["size"]) == (0, 1, 64)
        assert event["t1"] is None

    def test_deliver_stamps_first_arrival_only(self):
        tracer = _StubTracer()
        rec = CausalRecorder(tracer)
        ctx = rec.on_send("read", 0, 1, 64)
        tracer.t = 1.0
        rec.on_deliver(ctx)
        tracer.t = 2.0
        rec.on_deliver(ctx)  # byzantine duplicate: keeps first arrival
        assert rec.events[0]["t1"] == 1.0
        assert event_duration(rec.events[0]) == 1.0

    def test_sends_default_parent_to_chain_head(self):
        rec = CausalRecorder(_StubTracer())
        first = rec.on_send("read", 0, 1, 64)
        rec.on_dispatch(1, first)
        reply = rec.on_send("read_reply", 1, 0, 128)
        assert reply[2] == first[1]

    def test_explicit_parent_wins_over_head(self):
        rec = CausalRecorder(_StubTracer())
        a = rec.on_send("read", 0, 1, 64)
        b = rec.on_send("write", 0, 2, 64)
        rec.on_dispatch(1, b)
        reply = rec.on_send("read_reply", 1, 0, 32, parent=a)
        assert reply[2] == a[1]

    def test_barrier_release_names_straggler_and_moves_heads(self):
        tracer = _StubTracer()
        rec = CausalRecorder(tracer)
        rec.barrier_arrive(0, epoch=0, label="1", phase="scatter")
        tracer.t = 5.0
        rec.barrier_arrive(1, epoch=0, label="1", phase="scatter")
        release = rec.barrier_release(1, epoch=0, label="1", phase="scatter")
        again = rec.barrier_release(0, epoch=0, label="1", phase="scatter")
        assert release is again  # one release event per round
        assert release["machine"] == 1  # the last arriver
        assert rec.head(0) == release["id"]
        assert rec.head(1) == release["id"]

    def test_attempt_annotation(self):
        rec = CausalRecorder(_StubTracer())
        rec.on_send("read", 0, 1, 64, attempt=2)
        assert rec.events[0]["attempt"] == 2
        rec.on_send("read", 0, 1, 64)
        assert "attempt" not in rec.events[1]

    def test_bind_resets_heads_but_keeps_events(self):
        rec = CausalRecorder(_StubTracer())
        ctx = rec.on_send("read", 0, 1, 64)
        rec.on_dispatch(1, ctx)
        rec.on_bind()
        assert rec.trace_id == 1
        assert rec.head(1) is None
        assert len(rec.events) == 1

    def test_null_recorder_is_inert(self):
        assert NULL_CAUSAL.on_send("read", 0, 1, 64) is None
        assert NULL_CAUSAL.barrier_release(0, 0, "1", "scatter") is None
        assert NULL_CAUSAL.mark("x") is None
        assert not NULL_CAUSAL.enabled
        assert NULL_CAUSAL.events == []


# ---------------------------------------------------------------------------
# Chain analysis on a synthetic DAG
# ---------------------------------------------------------------------------


def _synthetic_dag():
    """msg(0) -> dispatch -> msg(1) -> arrival m1 (straggler) -> release."""
    tracer = _StubTracer()
    rec = CausalRecorder(tracer)
    a = rec.on_send("read", 0, 1, 64)
    tracer.t = 1.0
    rec.on_deliver(a)
    rec.on_dispatch(1, a)
    b = rec.on_send("read_reply", 1, 0, 128)
    tracer.t = 2.0
    rec.on_deliver(b)
    rec.barrier_arrive(0, 0, "0", "scatter")
    tracer.t = 5.0
    rec.on_dispatch(1, b)  # m1 kept working until t=5
    rec.barrier_arrive(1, 0, "0", "scatter")
    rec.barrier_release(1, 0, "0", "scatter")
    rec.barrier_release(0, 0, "0", "scatter")
    return rec.events


class TestChainAnalysis:
    def test_chain_walks_through_straggler_arrival(self):
        events = _synthetic_dag()
        (chain,) = barrier_chains(events)
        assert chain.machine == 1
        kinds = [link["kind"] for link in chain.links]
        assert kinds == ["msg", "msg", "arrive", "release"]
        assert chain.links[0]["cat"] == "read"

    def test_waits_and_explained_wait(self):
        events = _synthetic_dag()
        (chain,) = barrier_chains(events)
        assert chain.waits() == {0: 3.0, 1: 0.0}
        # chain starts at t=0 (the root message), so it fully explains
        # machine 0's wait on [2, 5].
        assert chain.explained_wait(0) == pytest.approx(3.0)
        assert chain.explained_wait(1) == pytest.approx(0.0)
        assert chain.explained_wait(7) is None
        assert chain.duration == pytest.approx(5.0)

    def test_slowest_chains_orders_by_duration(self):
        events = _synthetic_dag()
        assert [c.barrier for c in slowest_chains(events, 3)] == [
            "e0/0/scatter"
        ]

    def test_chain_of_unknown_id_raises(self):
        with pytest.raises(CausalError):
            chain_of(_synthetic_dag(), 999)

    def test_to_dict_is_json_safe(self):
        events = _synthetic_dag()
        (chain,) = barrier_chains(events)
        json.dumps(chain.to_dict())  # must not raise

    def test_formatters_render(self):
        events = _synthetic_dag()
        (chain,) = barrier_chains(events)
        assert "e0/0/scatter" in format_chain(chain)
        assert "barrier" in format_chain_table([chain])
        for event in events:
            assert f"#{event['id']}" in format_event(event)


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class TestQueryLanguage:
    def test_parse_duration_units(self):
        assert parse_duration("5ms") == pytest.approx(5e-3)
        assert parse_duration("2us") == pytest.approx(2e-6)
        assert parse_duration("7ns") == pytest.approx(7e-9)
        assert parse_duration("1.5s") == pytest.approx(1.5)
        assert parse_duration("0.25") == pytest.approx(0.25)

    def test_parse_duration_rejects_garbage(self):
        with pytest.raises(CausalError):
            parse_duration("fastms")
        with pytest.raises(CausalError):
            parse_duration("5 furlongs")

    def test_where_filters_compound_clauses(self):
        events = _synthetic_dag()
        hits = filter_events(events, "kind=msg and src=1")
        assert [e["cat"] for e in hits] == ["read_reply"]

    def test_where_duration_comparison(self):
        events = _synthetic_dag()
        assert len(filter_events(events, "dur>=1s and kind=msg")) == 2
        assert filter_events(events, "dur>1s and kind=msg") == []

    def test_machine_field_means_receiver_for_messages(self):
        events = _synthetic_dag()
        hits = filter_events(events, "machine=1")
        cats = sorted(e["cat"] for e in hits)
        assert cats == ["barrier", "barrier", "read"]

    def test_ordered_comparison_against_none_is_false(self):
        rec = CausalRecorder(_StubTracer())
        rec.on_send("read", 0, 1, 64)  # undelivered: dur is None
        assert filter_events(rec.events, "dur>0") == []
        assert len(filter_events(rec.events, "t1=none")) == 1

    def test_unknown_field_and_missing_operator_raise(self):
        with pytest.raises(CausalError):
            parse_where("bogus=1")
        with pytest.raises(CausalError):
            parse_where("kind is msg")
        with pytest.raises(CausalError):
            parse_where("kind= and src=1")


# ---------------------------------------------------------------------------
# Traced-run invariants (the standing byte-identity guarantee)
# ---------------------------------------------------------------------------


class TestTracedRunInvariants:
    def test_traced_run_byte_identical_to_untraced(self, medium_graph):
        config = fast_config(machines=4, seed=3)
        plain = run_algorithm(PageRank(iterations=3), medium_graph, config)
        traced, tracer = _traced_run(medium_graph, config)
        assert plain.to_json() == traced.to_json()
        assert set(plain.values) == set(traced.values)
        for name in plain.values:
            assert np.array_equal(plain.values[name], traced.values[name])
        assert len(tracer.causal.events) > 0

    def test_trace_serialization_deterministic(self, medium_graph):
        config = fast_config(machines=4, seed=3)
        _, t1 = _traced_run(medium_graph, config)
        _, t2 = _traced_run(medium_graph, config)
        assert dumps_chrome_trace(t1) == dumps_chrome_trace(t2)

    def test_every_protocol_kind_is_traced(self, medium_graph):
        config = fast_config(machines=4, seed=3, checkpointing=True)
        _, tracer = _traced_run(medium_graph, config)
        cats = {e["cat"] for e in tracer.causal.events if e["kind"] == "msg"}
        # Chunk I/O, steal protocol and accumulator shipping all appear.
        assert {"read", "read_reply", "steal_request", "steal_reply"} <= cats
        kinds = {e["kind"] for e in tracer.causal.events}
        assert {"msg", "arrive", "release"} <= kinds

    def test_recovery_path_emits_checkpoint_marks(self, medium_graph):
        from repro.faults import FaultPlan

        tracer = Tracer(sample_interval=None)
        run_algorithm(
            PageRank(iterations=3),
            medium_graph,
            fast_config(machines=4, seed=3, checkpointing=True),
            tracer=tracer,
            fault_plan=FaultPlan.parse(["crash:1@iter=2"]),
        )
        marks = {e["cat"] for e in tracer.causal.events if e["kind"] == "mark"}
        assert {"ckpt_durable", "ckpt_round"} <= marks

    def test_replies_are_parented_to_their_requests(self, medium_graph):
        config = fast_config(machines=4, seed=3)
        _, tracer = _traced_run(medium_graph, config)
        events = tracer.causal.events
        by_id = {e["id"]: e for e in events}
        replies = [
            e for e in events
            if e["kind"] == "msg" and e["cat"] == "read_reply"
        ]
        assert replies
        for reply in replies:
            parent = by_id[reply["parent"]]
            # the reply's parent is the read it answers, cross-machine:
            assert parent["cat"] in ("read", "vread")
            assert parent["dst"] == reply["src"]


# ---------------------------------------------------------------------------
# The acceptance-criterion scenario: pr_m4 cross-check
# ---------------------------------------------------------------------------


class TestCrossCheck:
    @pytest.fixture(scope="class")
    def pr_m4(self):
        """The tracked bench scenario: PageRank x3, RMAT-12, 4 machines."""
        config = ClusterConfig(
            machines=4,
            device=SSD_BENCH,
            network=GIGE_40_BENCH,
            chunk_bytes=4096,
            batch_factor=8,
            seed=1,
        )
        graph = rmat_graph(12, seed=1)
        return _traced_run(graph, config)

    def test_chains_reconcile_with_critpath(self, pr_m4):
        _, tracer = pr_m4
        report = analyze_tracer(tracer)
        records = cross_check(tracer.causal.events, report)
        # one scatter + one gather barrier per iteration
        assert len(records) == 6
        for record in records:
            assert record["straggler_ok"], record
            assert record["wait_ok"], record
            assert record["ok"], record
            assert record["rel_err"] is not None
            assert record["rel_err"] <= 0.05

    def test_slowest_chain_terminates_at_bound_machine(self, pr_m4):
        _, tracer = pr_m4
        report = analyze_tracer(tracer)
        waits = report.barrier_waits
        for chain in barrier_chains(tracer.causal.events):
            if not chain.label.isdigit():
                continue
            crit = {
                m: waits.get((m, chain.label, chain.phase), 0.0)
                for m in chain.waits()
            }
            # the chain terminus is critpath's minimum-wait machine
            assert crit[chain.machine] <= min(crit.values()) + 1e-9

    def test_report_exports_barrier_waits(self, pr_m4):
        _, tracer = pr_m4
        report = analyze_tracer(tracer)
        assert report.barrier_waits
        rows = report.to_dict()["barrier_waits"]
        assert rows == sorted(
            rows, key=lambda r: (r["machine"], r["label"], r["phase"])
        )
        assert all(r["wait"] >= 0.0 for r in rows)


# ---------------------------------------------------------------------------
# Leaked-span detection (satellite: open_span_count at clean-run end)
# ---------------------------------------------------------------------------


class TestOpenSpanWarning:
    def test_clean_run_leaves_no_open_spans(self, medium_graph):
        _, tracer = _traced_run(medium_graph, fast_config(machines=2))
        assert tracer.open_span_count() == 0

    def test_clean_run_emits_no_warning(self, medium_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            _traced_run(medium_graph, fast_config(machines=2))

    def test_deliberately_leaked_span_warns(self, medium_graph):
        tracer = Tracer(sample_interval=None)
        _, tracer = _traced_run(
            medium_graph, fast_config(machines=2), tracer=tracer
        )
        track = tracer.thread(0, 1, "engine0")
        track.begin("leaked", cat="barrier")  # never ended
        assert tracer.open_span_count() == 1
        with pytest.warns(RuntimeWarning, match="still open"):
            _check_open_spans(tracer)


# ---------------------------------------------------------------------------
# Exporter edge cases (satellite: empty CSV, nested args, flow round-trip)
# ---------------------------------------------------------------------------


class TestExporterEdgeCases:
    def test_empty_trace_to_csv(self, tmp_path):
        tracer = Tracer(sample_interval=None)
        path = tmp_path / "empty.csv"
        assert write_counters_csv(tracer, str(path)) == 0
        assert path.read_text() == "series,ts,value\n"

    def test_empty_trace_chrome_document(self):
        tracer = Tracer(sample_interval=None)
        doc = chrome_trace_dict(tracer)
        assert doc["traceEvents"] == []
        assert "causalEvents" not in doc
        summary = summarize_trace(doc)
        assert summary.total_events == 0

    def test_instant_with_nested_args_round_trips(self, tmp_path):
        tracer = Tracer(sample_interval=None)
        tracer.bind_run(lambda: 0.5)
        track = tracer.thread(0, 0, "job")
        nested = {"ckpt": [0, 1, 2], "detail": {"slot": 1, "ok": True}}
        track.instant("job.milestone", args=nested)
        path = tmp_path / "t.json"
        write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        (event,) = [
            e for e in doc["traceEvents"] if e.get("name") == "job.milestone"
        ]
        assert event["args"] == nested
        assert event["s"] == "t"
        summary = summarize_trace(doc)
        assert summary.instants["job.milestone"] == 1

    def test_flow_events_round_trip(self, medium_graph, tmp_path):
        _, tracer = _traced_run(medium_graph, fast_config(machines=2))
        path = tmp_path / "t.json"
        write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        flows = [
            e for e in doc["traceEvents"] if e.get("ph") in ("s", "f")
        ]
        assert flows and len(flows) % 2 == 0
        edges = {e["id"]: e for e in causal_edges_from_flows(doc)}
        delivered = [
            e
            for e in causal_events_from_trace(doc)
            if e["kind"] == "msg" and e["t1"] is not None
        ]
        assert len(edges) == len(delivered)
        for msg in delivered:
            edge = edges[msg["id"]]
            assert edge["src"] == msg["src"]
            assert edge["dst"] == msg["dst"]
            assert edge["name"] == msg["cat"]
            assert edge["t0"] == pytest.approx(msg["t0"], abs=1e-9)
            assert edge["t1"] == pytest.approx(msg["t1"], abs=1e-9)

    def test_causal_events_key_is_lossless(self, medium_graph, tmp_path):
        _, tracer = _traced_run(medium_graph, fast_config(machines=2))
        path = tmp_path / "t.json"
        write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        assert doc["causalEvents"] == json.loads(
            json.dumps(tracer.causal.events)
        )

    def test_pre_causal_trace_raises_causal_error(self):
        with pytest.raises(CausalError, match="causalEvents"):
            causal_events_from_trace({"traceEvents": []})


# ---------------------------------------------------------------------------
# Report integration (satellites: integrity surfacing, JSON report)
# ---------------------------------------------------------------------------


class TestReportIntegration:
    def test_job_result_carries_integrity_counters(self, medium_graph):
        result = run_algorithm(
            PageRank(iterations=2), medium_graph, fast_config(machines=2)
        )
        assert "messages_corrupted" in result.integrity
        assert "write_rejects" in result.integrity
        assert result.to_dict()["integrity"] == result.integrity

    def test_summary_mentions_nonzero_integrity_only(self, medium_graph):
        result = run_algorithm(
            PageRank(iterations=2), medium_graph, fast_config(machines=2)
        )
        assert "integrity[" not in result.summary()  # clean run: all zero
        result.integrity["messages_corrupted"] = 2
        assert "integrity[messages_corrupted=2]" in result.summary()

    def test_trace_carries_integrity_instant(self, medium_graph):
        _, tracer = _traced_run(medium_graph, fast_config(machines=2))
        doc = chrome_trace_dict(tracer)
        summary = summarize_trace(doc)
        assert summary.instants["job.integrity"] == 1
        assert "messages_corrupted" in summary.integrity

    def test_trace_report_json_sections(self, medium_graph):
        _, tracer = _traced_run(medium_graph, fast_config(machines=2))
        doc = trace_report_json(chrome_trace_dict(tracer))
        assert set(doc) == {
            "summary",
            "attribution",
            "slowest_chains",
            "cross_check",
            "host",
            "host_skew",
        }
        assert doc["attribution"] is not None
        assert doc["slowest_chains"]
        assert doc["cross_check"] and all(
            r["ok"] for r in doc["cross_check"]
        )
        assert doc["host"] is None and doc["host_skew"] is None
        assert doc["summary"]["top_spans"]
        json.dumps(doc)  # fully JSON-safe

    def test_trace_report_json_without_causal_events(self, medium_graph):
        _, tracer = _traced_run(medium_graph, fast_config(machines=2))
        doc = chrome_trace_dict(tracer)
        del doc["causalEvents"]
        report = trace_report_json(doc)
        assert report["slowest_chains"] is None
        assert report["cross_check"] is None

    def test_prometheus_integrity_family(self):
        from repro.obs import to_prometheus, validate_prometheus
        from repro.obs.host import HostMetricsRegistry

        doc = HostMetricsRegistry().to_dict()
        text = to_prometheus(
            doc, integrity={"messages_corrupted": 2, "retransmits": 1}
        )
        assert 'chaos_integrity_events_total{kind="messages_corrupted"} 2' \
            in text
        assert 'chaos_integrity_events_total{kind="retransmits"} 1' in text
        assert validate_prometheus(text) == []
        assert "chaos_integrity" not in to_prometheus(doc)


# ---------------------------------------------------------------------------
# CLI: repro trace query / trace-report --format json
# ---------------------------------------------------------------------------


class TestTraceQueryCli:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("causal") / "run.trace.json"
        code = main(
            [
                "run", "--algorithm", "PR", "--scale", "9",
                "--machines", "2", "--iterations", "2", "--chunk-kb", "4",
                "--trace", str(path), "--trace-sample-interval", "0",
            ]
        )
        assert code == 0
        return str(path)

    def test_slowest_chains_text(self, trace_path, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["trace", "query", trace_path,
                     "--slowest-chains", "3"]) == 0
        out = capsys.readouterr().out
        assert out.strip()
        assert "released at" in out
        assert "barrier e0/" in out

    def test_slowest_chains_json(self, trace_path, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["trace", "query", trace_path, "--slowest-chains", "2",
                     "--format", "json"]) == 0
        chains = json.loads(capsys.readouterr().out)
        assert len(chains) == 2
        assert chains[0]["duration"] >= chains[1]["duration"]

    def test_where_filter(self, trace_path, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["trace", "query", trace_path,
                     "--where", "kind=msg and dur>0s"]) == 0
        out = capsys.readouterr().out
        assert "event(s) matched" in out

    def test_chain_of(self, trace_path, capsys):
        from repro.cli import main

        trace = json.load(open(trace_path))
        release = next(
            e for e in trace["causalEvents"] if e["kind"] == "release"
        )
        capsys.readouterr()
        assert main(["trace", "query", trace_path,
                     "--chain-of", str(release["id"])]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[-1].split()[1] == "release"

    def test_bad_where_exits_nonzero(self, trace_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", "query", trace_path, "--where", "bogus=1"])

    def test_requires_exactly_one_mode(self, trace_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", "query", trace_path])

    def test_trace_report_json_format(self, trace_path, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["trace-report", trace_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["slowest_chains"]
        assert all(r["ok"] for r in doc["cross_check"])

    def test_trace_report_text_has_chain_table(self, trace_path, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["trace-report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "slowest barrier chains" in out
        assert "cross-check" in out

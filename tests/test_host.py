"""Host-side profiling (:mod:`repro.obs.host` / :mod:`repro.obs.hostclock`).

Covers the registry accounting and the depth-0 region invariant, the
three exporters (collapsed-stack, Prometheus, JSON schema) round-trip,
the report formatting, the hostclock single-entry-point lint contract,
and the end-to-end properties the ``--host-profile`` flag promises: it
never changes simulation results, and the per-phase host wall times sum
to the profiled region total.
"""

import ast
import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.algorithms import PageRank
from repro.core.gas import GAS_PHASES
from repro.core.runtime import run_algorithm
from repro.graph.rmat import rmat_graph
from repro.obs.host import (
    ENGINE_PHASES,
    GAS_HOST_PHASES,
    NULL_HOST_PROFILER,
    HostMetricsRegistry,
    HostProfiler,
    NullHostProfiler,
    check_host_schema,
    format_host_report,
    parse_collapsed_stack,
    resolve_host_profiler,
    to_collapsed_stack,
    to_prometheus,
    validate_prometheus,
)

SIM_PACKAGES = ("core", "sim", "store", "net", "obs", "faults")


def profiled_run(machines=4, scale=8, iterations=3, **kwargs):
    graph = rmat_graph(scale, seed=7)
    profiler = HostProfiler(**kwargs)
    result = run_algorithm(
        PageRank(iterations=iterations), graph, machines=machines,
        host=profiler,
    )
    return result, profiler.finalize().to_dict()


# ---------------------------------------------------------------------------
# Registry accounting


class TestRegistry:
    def test_record_accumulates_per_key(self):
        registry = HostMetricsRegistry()
        registry.record(0, "scatter", 1, wall_ns=1000, cpu_ns=800,
                        records=10)
        registry.record(0, "scatter", 1, wall_ns=500, cpu_ns=400,
                        records=5)
        registry.record(1, "scatter", 1, wall_ns=200, cpu_ns=100)
        doc = registry.to_dict()
        entries = {
            (p["machine"], p["phase"], p["iteration"]): p
            for p in doc["phases"]
        }
        entry = entries[(0, "scatter", 1)]
        assert entry["wall_seconds"] == pytest.approx(1.5e-6)
        assert entry["cpu_seconds"] == pytest.approx(1.2e-6)
        assert entry["calls"] == 2
        assert entry["records"] == 15
        assert entries[(1, "scatter", 1)]["calls"] == 1

    def test_top_level_intervals_feed_the_region(self):
        registry = HostMetricsRegistry()
        registry.record(0, "scatter", 0, wall_ns=1000, cpu_ns=900)
        registry.record(0, "gather", 0, wall_ns=300, cpu_ns=200,
                        top_level=False)
        doc = registry.to_dict()
        assert doc["region"]["wall_seconds"] == pytest.approx(1e-6)
        assert doc["region"]["intervals"] == 1
        # The nested interval still shows up in its phase entry.
        assert doc["totals"]["by_phase"]["gather"]["calls"] == 1

    def test_nested_measurements_do_not_double_count(self):
        profiler = HostProfiler()
        with profiler.measure(0, "scatter", 0):
            with profiler.measure(0, "gather", 0):
                pass
        doc = profiler.finalize().to_dict()
        scatter = doc["totals"]["by_phase"]["scatter"]["wall_seconds"]
        assert doc["region"]["intervals"] == 1
        assert doc["region"]["wall_seconds"] == pytest.approx(
            scatter, rel=1e-9
        )

    def test_edges_per_sec_from_scatter_records(self):
        registry = HostMetricsRegistry()
        registry.record(0, "scatter", 0, wall_ns=2_000_000_000,
                        cpu_ns=1_000_000_000, records=1000)
        doc = registry.to_dict()
        assert doc["totals"]["edges"] == 1000
        assert doc["totals"]["edges_per_sec"] == pytest.approx(500.0)
        assert doc["iterations"][0]["edges_per_sec"] == pytest.approx(500.0)


# ---------------------------------------------------------------------------
# Profiler plumbing


class TestProfiler:
    def test_null_profiler_is_free_and_disabled(self):
        null = NullHostProfiler()
        assert not null.enabled
        with null.measure(0, "scatter"):
            pass
        null.set_iteration(3)
        assert null.finalize() is None

    def test_resolve_defaults_to_the_null_singleton(self):
        assert resolve_host_profiler(None) is NULL_HOST_PROFILER
        assert resolve_host_profiler(NULL_HOST_PROFILER) is NULL_HOST_PROFILER
        profiler = HostProfiler()
        assert resolve_host_profiler(profiler) is profiler

    def test_measure_defaults_iteration_to_current(self):
        profiler = HostProfiler()
        profiler.set_iteration(5)
        with profiler.measure(2, "deserialize"):
            pass
        doc = profiler.finalize().to_dict()
        assert doc["phases"][0]["iteration"] == 5

    def test_phase_names_cover_the_instrumented_sites(self):
        assert set(GAS_HOST_PHASES) <= set(ENGINE_PHASES)
        assert {"serialize", "deserialize", "msg_copy"} <= set(ENGINE_PHASES)

    def test_gas_phase_table_pins_to_the_kernel(self):
        # repro.core.gas.GAS_PHASES and the profiler's phase names must
        # stay in lockstep: the report maps one onto the other.
        assert GAS_PHASES == GAS_HOST_PHASES


# ---------------------------------------------------------------------------
# Exporters


class TestExporters:
    def test_collapsed_stack_round_trips(self):
        registry = HostMetricsRegistry()
        registry.record(0, "scatter", 0, wall_ns=1_500_000, cpu_ns=1_000)
        registry.record(1, "msg_copy", 2, wall_ns=2_000_000, cpu_ns=500)
        doc = registry.to_dict()
        text = to_collapsed_stack(doc)
        assert text.endswith("\n")
        parsed = parse_collapsed_stack(text)
        assert parsed[(0, "scatter", 0)] == 1500  # integer microseconds
        assert parsed[(1, "msg_copy", 2)] == 2000

    def test_collapsed_stack_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_collapsed_stack("machine0;scatter 12\n")  # missing frame
        with pytest.raises(ValueError):
            parse_collapsed_stack("m0;scatter;iter0 12\n")  # bad prefix

    def test_prometheus_output_validates(self):
        _, doc = profiled_run()
        text = to_prometheus(doc)
        assert validate_prometheus(text) == []
        assert "# TYPE chaos_host_phase_wall_seconds counter" in text
        assert 'phase="scatter"' in text

    def test_prometheus_validator_catches_breakage(self):
        assert validate_prometheus("chaos_host_x{bad-label=\"1\"} 2\n")
        # A sample whose family was never declared with # TYPE.
        errors = validate_prometheus('undeclared_metric{a="1"} 3\n')
        assert any("TYPE" in e for e in errors)

    def test_json_schema_checks_a_real_run(self):
        _, doc = profiled_run()
        assert check_host_schema(doc) == []
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable

    def test_json_schema_rejects_missing_and_mistyped_keys(self):
        _, doc = profiled_run(machines=2, scale=7, iterations=1)
        broken = dict(doc)
        del broken["region"]
        assert check_host_schema(broken)
        mistyped = json.loads(json.dumps(doc))
        mistyped["phases"][0]["machine"] = "zero"
        assert check_host_schema(mistyped)
        wrong_version = dict(doc)
        wrong_version["host_schema_version"] = 999
        assert check_host_schema(wrong_version)


# ---------------------------------------------------------------------------
# Report formatting


class TestReport:
    def test_report_lists_hottest_phases_with_skew(self):
        _, doc = profiled_run()
        report = format_host_report(
            doc,
            sim_spans={"scatter": 0.5, "gather": 0.3, "merge_apply": 0.2},
        )
        assert "hottest host phases by CPU time" in report
        assert "scatter" in report and "msg_copy" in report
        assert "skew" in report
        assert "per-iteration host throughput" in report

    def test_report_top_limits_rows(self):
        _, doc = profiled_run()
        report = format_host_report(doc, top=2)
        assert "top 2" in report
        lines = report.splitlines()
        start = next(
            i for i, line in enumerate(lines) if "hottest" in line
        )
        rows = []
        for line in lines[start + 2:]:  # skip the column header
            if not line.strip() or line.lstrip().startswith("("):
                break
            rows.append(line)
        assert len(rows) == 2

    def test_report_without_sim_spans_dashes_the_columns(self):
        _, doc = profiled_run(machines=2, scale=7, iterations=1)
        report = format_host_report(doc)
        assert "-" in report


# ---------------------------------------------------------------------------
# End-to-end invariants (the acceptance criteria)


class TestEndToEnd:
    def test_phase_walls_sum_to_region_within_5_percent(self):
        # The ISSUE acceptance bar, on the tracked m=4 PR scenario shape:
        # every measured site is a leaf, so the per-phase host wall times
        # must account for the whole profiled region.
        _, doc = profiled_run(machines=4)
        region = doc["region"]["wall_seconds"]
        phase_sum = sum(p["wall_seconds"] for p in doc["phases"])
        assert region > 0
        assert phase_sum == pytest.approx(region, rel=0.05)

    def test_profiling_leaves_results_byte_identical(self):
        graph = rmat_graph(8, seed=7)
        plain = run_algorithm(PageRank(iterations=3), graph, machines=4)
        profiled, _ = profiled_run()
        assert set(plain.values) == set(profiled.values)
        for name in plain.values:
            assert np.array_equal(plain.values[name], profiled.values[name])
        assert plain.runtime == profiled.runtime
        assert plain.iterations == profiled.iterations

    def test_all_machines_and_phases_show_up(self):
        _, doc = profiled_run(machines=4)
        machines = {p["machine"] for p in doc["phases"]}
        phases = {p["phase"] for p in doc["phases"]}
        assert machines == {0, 1, 2, 3}
        assert {"scatter", "gather", "apply", "serialize",
                "deserialize", "msg_copy"} <= phases

    def test_iteration_attribution_matches_run_length(self):
        _, doc = profiled_run(iterations=3)
        scatter_iters = {
            p["iteration"] for p in doc["phases"] if p["phase"] == "scatter"
        }
        assert scatter_iters == {0, 1, 2}

    def test_tracemalloc_mode_records_allocation_deltas(self):
        _, doc = profiled_run(machines=2, scale=7, iterations=1,
                              trace_allocations=True)
        assert doc["tracemalloc"] is True
        assert all("alloc_bytes" in p for p in doc["phases"])
        assert check_host_schema(doc) == []


# ---------------------------------------------------------------------------
# hostclock: the single sanctioned wall-clock entry point


class TestHostclockContract:
    def test_hostclock_is_the_only_sim_module_importing_time(self):
        # The sim packages are ordered by the simulated clock; real
        # clocks live in exactly one module, repro/obs/hostclock.py.
        source_root = Path(repro.__file__).parent
        offenders = []
        for package in SIM_PACKAGES:
            for path in sorted((source_root / package).rglob("*.py")):
                tree = ast.parse(path.read_text())
                for node in ast.walk(tree):
                    imports_time = (
                        isinstance(node, ast.Import)
                        and any(a.name == "time" or
                                a.name.startswith("time.")
                                for a in node.names)
                    ) or (
                        isinstance(node, ast.ImportFrom)
                        and node.module == "time"
                    )
                    if imports_time:
                        offenders.append(str(path))
        assert offenders == [
            str(source_root / "obs" / "hostclock.py")
        ]

    def test_hostclock_reads_monotonic_and_cpu_clocks(self):
        from repro.obs import hostclock

        w0, c0 = hostclock.wall_ns(), hostclock.cpu_ns()
        total = sum(range(10_000))
        w1, c1 = hostclock.wall_ns(), hostclock.cpu_ns()
        assert total == 49995000
        assert w1 >= w0  # perf_counter is monotonic
        assert c1 >= c0

    def test_allocation_tracing_toggles(self):
        from repro.obs import hostclock

        assert hostclock.allocated_bytes() == 0  # inactive -> 0
        hostclock.start_allocation_tracing()
        try:
            assert hostclock.allocation_tracing_active()
            blob = [0] * 1000
            assert hostclock.allocated_bytes() > 0
            del blob
        finally:
            hostclock.stop_allocation_tracing()
        assert not hostclock.allocation_tracing_active()

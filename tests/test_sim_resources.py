"""Unit tests for queueing resources (FIFO servers, core banks, mailboxes)."""

import pytest

from repro.sim import CoreBank, FifoServer, Mailbox, Semaphore, Simulator
from repro.sim.engine import SimulationError


class TestFifoServer:
    def test_single_request_time(self):
        sim = Simulator()
        server = FifoServer(sim, bandwidth=100.0, latency=0.5)
        done = server.service(50)  # 0.5 + 50/100 = 1.0
        times = []
        done.subscribe(lambda e: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0)]

    def test_requests_serialize_fifo(self):
        sim = Simulator()
        server = FifoServer(sim, bandwidth=100.0, latency=0.0)
        finish_times = []
        for _ in range(3):
            server.service(100).subscribe(lambda e: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_idle_gap_not_counted(self):
        sim = Simulator()
        server = FifoServer(sim, bandwidth=100.0)

        def late_request():
            yield sim.timeout(10.0)
            yield server.service(100)
            return sim.now

        process = sim.process(late_request())
        assert sim.run_until(process.finished) == pytest.approx(11.0)
        # Busy for only 1 second out of 11.
        assert server.meter.utilization(sim.now) == pytest.approx(1.0 / 11.0)

    def test_meter_counts_bytes_and_requests(self):
        sim = Simulator()
        server = FifoServer(sim, bandwidth=10.0)
        server.service(5)
        server.service(15)
        sim.run()
        assert server.meter.bytes_served == 20
        assert server.meter.requests == 2

    def test_queue_delay_reflects_backlog(self):
        sim = Simulator()
        server = FifoServer(sim, bandwidth=1.0)
        server.service(10)
        assert server.queue_delay() == pytest.approx(10.0)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FifoServer(sim, bandwidth=0)
        with pytest.raises(ValueError):
            FifoServer(sim, bandwidth=1.0, latency=-1)
        server = FifoServer(sim, bandwidth=1.0)
        with pytest.raises(ValueError):
            server.service(-1)


class TestCoreBank:
    def test_jobs_run_in_parallel_up_to_core_count(self):
        sim = Simulator()
        bank = CoreBank(sim, cores=2)
        finish = []
        for _ in range(4):
            bank.execute(1.0).subscribe(lambda e: finish.append(sim.now))
        sim.run()
        assert finish == [1.0, 1.0, 2.0, 2.0]

    def test_single_core_serializes(self):
        sim = Simulator()
        bank = CoreBank(sim, cores=1)
        finish = []
        bank.execute(1.0).subscribe(lambda e: finish.append(sim.now))
        bank.execute(2.0).subscribe(lambda e: finish.append(sim.now))
        sim.run()
        assert finish == [1.0, 3.0]

    def test_zero_duration_completes_now(self):
        sim = Simulator()
        bank = CoreBank(sim, cores=1)
        finish = []
        bank.execute(0.0).subscribe(lambda e: finish.append(sim.now))
        sim.run()
        assert finish == [0.0]

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            CoreBank(Simulator(), cores=0)


class TestSemaphore:
    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        semaphore = Semaphore(sim, capacity=2)
        assert semaphore.acquire().triggered
        assert semaphore.acquire().triggered
        assert not semaphore.acquire().triggered

    def test_release_wakes_waiter(self):
        sim = Simulator()
        semaphore = Semaphore(sim, capacity=1)
        semaphore.acquire()
        waiter = semaphore.acquire()
        assert not waiter.triggered
        semaphore.release()
        assert waiter.triggered

    def test_over_release_detected(self):
        sim = Simulator()
        semaphore = Semaphore(sim, capacity=1)
        with pytest.raises(SimulationError):
            semaphore.release()


class TestMailbox:
    def test_put_then_get(self):
        sim = Simulator()
        mailbox = Mailbox(sim)
        mailbox.put("hello")
        event = mailbox.get()
        assert event.triggered and event.value == "hello"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        mailbox = Mailbox(sim)
        event = mailbox.get()
        assert not event.triggered
        mailbox.put("late")
        assert event.value == "late"

    def test_fifo_order(self):
        sim = Simulator()
        mailbox = Mailbox(sim)
        mailbox.put(1)
        mailbox.put(2)
        assert mailbox.get().value == 1
        assert mailbox.get().value == 2

    def test_try_get(self):
        sim = Simulator()
        mailbox = Mailbox(sim)
        assert mailbox.try_get() == (False, None)
        mailbox.put("x")
        assert mailbox.try_get() == (True, "x")

    def test_len_counts_queued_items(self):
        sim = Simulator()
        mailbox = Mailbox(sim)
        assert len(mailbox) == 0
        mailbox.put(1)
        mailbox.put(2)
        assert len(mailbox) == 2

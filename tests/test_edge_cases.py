"""Degenerate-shape edge cases: tiny graphs, empty partitions, more
machines than vertices, single-vertex graphs."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, WCC, run_mcst, run_scc
from repro.core.runtime import run_algorithm
from repro.graph.edgelist import EdgeList

from tests.conftest import fast_config


def _tiny(num_vertices, src, dst, weight=None):
    return EdgeList(
        num_vertices=num_vertices,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        weight=weight,
    )


class TestTinyGraphs:
    def test_more_machines_than_vertices(self):
        graph = _tiny(3, [0, 1, 2, 1, 2, 0], [1, 0, 1, 2, 0, 2])
        result = run_algorithm(WCC(), graph, fast_config(4))
        assert (result.values["label"] == 0).all()

    def test_single_vertex_graph(self):
        graph = _tiny(1, [], [])
        result = run_algorithm(PageRank(iterations=2), graph, fast_config(2))
        assert result.values["rank"][0] == pytest.approx(0.15)

    def test_single_edge(self):
        graph = _tiny(2, [0], [1])
        result = run_algorithm(BFS(root=0), _tiny(2, [0, 1], [1, 0]), fast_config(2))
        assert list(result.values["distance"]) == [0, 1]

    def test_self_loops_only(self):
        graph = _tiny(3, [0, 1, 2], [0, 1, 2])
        result = run_algorithm(PageRank(iterations=3), graph, fast_config(2))
        # Self-loops feed rank back: r = 0.15 + 0.85 r -> r = 1.
        assert np.allclose(result.values["rank"], 1.0)

    def test_two_vertex_cycle_scc(self):
        graph = _tiny(2, [0, 1], [1, 0])
        result = run_scc(graph, fast_config(2))
        assert (result.values["scc"] == 1).all()

    def test_mcst_single_edge(self):
        graph = _tiny(2, [0, 1], [1, 0], weight=np.array([3.0, 3.0]))
        result = run_mcst(graph, fast_config(2))
        assert result.values["mst_weight"] == pytest.approx(3.0)
        assert result.values["tree_edges"] == 1

    def test_star_bfs_distances(self):
        n = 9
        spokes = np.arange(1, n)
        src = np.concatenate([np.zeros(n - 1, dtype=np.int64), spokes])
        dst = np.concatenate([spokes, np.zeros(n - 1, dtype=np.int64)])
        graph = _tiny(n, src, dst)
        result = run_algorithm(BFS(root=0), graph, fast_config(3))
        assert result.values["distance"][0] == 0
        assert (result.values["distance"][1:] == 1).all()

    def test_long_chain_many_iterations(self):
        """A path graph forces one BFS level per iteration — exercises
        many short phases and the quiescence path."""
        n = 40
        forward = np.arange(n - 1)
        src = np.concatenate([forward, forward + 1])
        dst = np.concatenate([forward + 1, forward])
        graph = _tiny(n, src, dst)
        result = run_algorithm(BFS(root=0), graph, fast_config(2))
        assert np.array_equal(result.values["distance"], np.arange(n))
        # n-1 discovery rounds, one round where the tail's update is
        # absorbed, and one final empty scatter.
        assert result.iterations == n + 1


class TestConfigPlumbing:
    def test_run_algorithm_with_kwargs_only(self, small_graph):
        result = run_algorithm(
            PageRank(iterations=1),
            small_graph,
            machines=2,
            chunk_bytes=4096,
        )
        assert result.machines == 2

    def test_run_algorithm_config_plus_overrides(self, small_graph):
        config = fast_config(2)
        result = run_algorithm(
            PageRank(iterations=1), small_graph, config, machines=3
        )
        assert result.machines == 3

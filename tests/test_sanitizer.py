"""Tests for the happens-before sanitizer (``repro run --sanitize``).

Unit tests pin down the vector-clock algebra (message edges, barrier
joins, conflict detection, dedup); the end-to-end tests prove the two
acceptance properties: a clean 2-machine PageRank reports zero races,
and a planted unsynchronized cross-machine write is reported exactly
once, with the race visible on the tracer timeline.
"""

import numpy as np

from repro.algorithms import PageRank
from repro.analysis import Sanitizer
from repro.analysis.sanitizer import SYNC_MESSAGE_KINDS
from repro.cli import main
from repro.core.compute import ComputationEngine
from repro.core.runtime import run_algorithm
from repro.graph import rmat_graph

from tests.conftest import fast_config
from tests.references import reference_pagerank


def make(machines=2):
    sanitizer = Sanitizer()
    sanitizer.bind_run(machines)
    return sanitizer


# ---------------------------------------------------------------------------
# Vector-clock unit tests


class TestVectorClocks:
    def test_unsynchronized_writes_race(self):
        san = make()
        san.access("x", 0, write=True, label="a")
        san.access("x", 1, write=True, label="b")
        assert len(san.races) == 1
        race = san.races[0]
        assert race.key == "x"
        assert {race.first.machine, race.second.machine} == {0, 1}

    def test_write_read_conflict_races(self):
        san = make()
        san.access("x", 0, write=True)
        san.access("x", 1, write=False)
        assert len(san.races) == 1

    def test_read_read_never_races(self):
        san = make()
        san.access("x", 0, write=False)
        san.access("x", 1, write=False)
        assert san.races == []

    def test_same_machine_never_races(self):
        san = make()
        san.access("x", 0, write=True)
        san.access("x", 0, write=True)
        assert san.races == []

    def test_message_edge_orders_accesses(self):
        san = make()
        san.access("x", 0, write=True)
        clock = san.on_send(0, "steal_reply")
        san.on_receive(1, clock)
        san.access("x", 1, write=True)
        assert san.races == []

    def test_non_sync_message_carries_no_clock(self):
        san = make()
        san.access("x", 0, write=True)
        assert san.on_send(0, "read") is None  # data-plane: no edge
        san.access("x", 1, write=True)
        assert len(san.races) == 1

    def test_barrier_orders_all_parties(self):
        san = make()
        san.access("x", 0, write=True)
        san.on_barrier([0, 1])
        san.access("x", 1, write=True)
        assert san.races == []

    def test_race_pair_deduplicated(self):
        san = make()
        san.access("x", 0, write=True)
        san.access("x", 1, write=True)
        san.access("x", 1, write=True)
        san.access("x", 0, write=True)
        assert len(san.races) == 1

    def test_distinct_keys_report_separately(self):
        san = make()
        for key in ("x", "y"):
            san.access(key, 0, write=True)
            san.access(key, 1, write=True)
        assert len(san.races) == 2

    def test_clock_snapshot_and_edge_counters(self):
        san = make()
        clock = san.on_send(0, "accum")
        san.on_receive(1, clock)
        assert san.clock_of(1)[0] == clock[0]
        assert san.sync_edges == 1

    def test_sync_kinds_cover_the_protocol(self):
        assert SYNC_MESSAGE_KINDS == {"steal_request", "steal_reply", "accum"}

    def test_bind_run_resets_state_keeps_races(self):
        san = make()
        san.access("x", 0, write=True)
        san.access("x", 1, write=True)
        san.bind_run(2)
        assert san.clock_of(0) == (0, 0)
        san.access("x", 0, write=True)  # fresh history: no stale conflict
        assert len(san.races) == 1


# ---------------------------------------------------------------------------
# End-to-end: clean runs


class TestCleanRuns:
    def test_two_machine_pagerank_zero_races(self, small_graph):
        san = Sanitizer()
        result = run_algorithm(
            PageRank(iterations=3), small_graph, fast_config(2), sanitizer=san
        )
        assert san.races == []
        assert san.accesses > 0 and san.sync_edges > 0
        expected = reference_pagerank(small_graph, iterations=3)
        assert np.allclose(result.values["rank"], expected)

    def test_forced_stealing_still_zero_races(self, small_graph):
        san = Sanitizer()
        config = fast_config(2, steal_alpha=float("inf"))
        result = run_algorithm(
            PageRank(iterations=3), small_graph, config, sanitizer=san
        )
        assert san.races == []
        assert result.steals_accepted > 0  # the protocol was exercised

    def test_sanitized_run_matches_unsanitized(self, small_graph):
        config = fast_config(2)
        plain = run_algorithm(PageRank(iterations=2), small_graph, config)
        checked = run_algorithm(
            PageRank(iterations=2), small_graph, config, sanitizer=Sanitizer()
        )
        assert plain.runtime == checked.runtime  # observation, not perturbation
        assert np.array_equal(plain.values["rank"], checked.values["rank"])


# ---------------------------------------------------------------------------
# End-to-end: a planted race is caught


def plant_cross_machine_write(monkeypatch):
    """Make machine 1 mutate partition 0's vertex state with no protocol
    edge — the bug class the sanitizer exists to catch."""
    original = ComputationEngine._process_chunk

    def planted(self, state, chunk, iteration):
        if self._san is not None and self.machine == 1:
            self._san.access(
                ("vertex", 0), 1, write=True, label="injected.write"
            )
        return original(self, state, chunk, iteration)

    monkeypatch.setattr(ComputationEngine, "_process_chunk", planted)


class TestInjectedRace:
    def test_exactly_the_planted_race_is_reported(
        self, small_graph, monkeypatch
    ):
        plant_cross_machine_write(monkeypatch)
        san = Sanitizer()
        config = fast_config(2, partitions_per_machine=1)
        run_algorithm(
            PageRank(iterations=2), small_graph, config, sanitizer=san
        )
        assert len(san.races) == 1
        race = san.races[0]
        assert race.key == ("vertex", 0)
        assert {race.first.machine, race.second.machine} == {0, 1}
        assert "injected.write" in (race.first.label, race.second.label)
        assert "injected.write" in san.summary()

    def test_race_lands_on_the_tracer_timeline(
        self, small_graph, monkeypatch
    ):
        from repro.obs import Tracer

        plant_cross_machine_write(monkeypatch)
        san = Sanitizer()
        tracer = Tracer(sample_interval=None)
        config = fast_config(2, partitions_per_machine=1)
        run_algorithm(
            PageRank(iterations=2), small_graph, config,
            tracer=tracer, sanitizer=san,
        )
        race_events = [
            e for e in tracer.events if e.get("cat") == "race"
        ]
        assert len(race_events) == len(san.races) == 1
        assert race_events[0]["name"].startswith("race:")
        assert "injected.write" in race_events[0]["name"]


# ---------------------------------------------------------------------------
# CLI integration


class TestSanitizeFlag:
    def test_clean_run_exits_zero_and_reports(self, capsys):
        code = main([
            "run", "--algorithm", "PR", "--machines", "2", "--scale", "7",
            "--iterations", "1", "--sanitize",
        ])
        assert code == 0
        assert "sanitizer: 0 race(s)" in capsys.readouterr().out

    def test_racy_run_exits_nonzero(self, monkeypatch, capsys):
        plant_cross_machine_write(monkeypatch)
        code = main([
            "run", "--algorithm", "PR", "--machines", "2", "--scale", "7",
            "--iterations", "1", "--partitions-per-machine", "1",
            "--sanitize",
        ])
        assert code == 1
        assert "race on ('vertex', 0)" in capsys.readouterr().out

"""Functional correctness of all ten algorithms on the Chaos runtime,
validated against independent reference implementations (networkx,
scipy, plain numpy) across cluster sizes."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    MIS,
    SSSP,
    WCC,
    BeliefPropagation,
    Conductance,
    PageRank,
    SpMV,
    run_mcst,
    run_scc,
)
from repro.core.runtime import run_algorithm
from repro.graph import rmat_graph, to_undirected

from tests.conftest import fast_config
from tests.references import (
    reference_bfs_distances,
    reference_bp_beliefs,
    reference_component_labels,
    reference_conductance,
    reference_mst_weight,
    reference_pagerank,
    reference_scc_ids,
    reference_spmv,
    reference_sssp_distances,
)

MACHINE_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def directed():
    return rmat_graph(8, seed=11)


@pytest.fixture(scope="module")
def weighted_directed():
    return rmat_graph(8, seed=11, weighted=True)


@pytest.fixture(scope="module")
def undirected(weighted_directed):
    return to_undirected(weighted_directed)


@pytest.mark.parametrize("machines", MACHINE_COUNTS)
class TestAcrossClusterSizes:
    """Every algorithm must produce identical results on any cluster size."""

    def test_bfs(self, undirected, machines):
        result = run_algorithm(BFS(root=0), undirected, fast_config(machines))
        expected = reference_bfs_distances(undirected, root=0)
        assert np.array_equal(result.values["distance"], expected)

    def test_bfs_parents_are_valid(self, undirected, machines):
        result = run_algorithm(BFS(root=0), undirected, fast_config(machines))
        distance = result.values["distance"]
        parent = result.values["parent"]
        edge_set = set(zip(undirected.src, undirected.dst))
        for vertex in range(undirected.num_vertices):
            if distance[vertex] > 0:
                assert (parent[vertex], vertex) in edge_set
                assert distance[parent[vertex]] == distance[vertex] - 1

    def test_wcc(self, undirected, machines):
        result = run_algorithm(WCC(), undirected, fast_config(machines))
        expected = reference_component_labels(undirected)
        assert np.array_equal(result.values["label"], expected)

    def test_sssp(self, undirected, machines):
        result = run_algorithm(SSSP(root=0), undirected, fast_config(machines))
        expected = reference_sssp_distances(undirected, root=0)
        assert np.allclose(result.values["distance"], expected)

    def test_mis_is_independent_and_maximal(self, undirected, machines):
        result = run_algorithm(MIS(), undirected, fast_config(machines))
        status = result.values["status"]
        in_set = status == 1
        assert (status != 0).all(), "every vertex must be decided"
        # Independence: no edge inside the set.
        assert not (in_set[undirected.src] & in_set[undirected.dst]).any()
        # Maximality: every excluded vertex has an in-set neighbour.
        neighbour_in_set = np.zeros(undirected.num_vertices, dtype=bool)
        neighbour_in_set[undirected.dst[in_set[undirected.src]]] = True
        excluded = status == 2
        assert (neighbour_in_set[excluded]).all()

    def test_pagerank(self, directed, machines):
        result = run_algorithm(
            PageRank(iterations=5), directed, fast_config(machines)
        )
        expected = reference_pagerank(directed, iterations=5)
        assert np.allclose(result.values["rank"], expected)

    def test_mcst(self, undirected, machines):
        result = run_mcst(undirected, fast_config(machines))
        assert result.values["mst_weight"] == pytest.approx(
            reference_mst_weight(undirected)
        )

    def test_scc(self, directed, machines):
        result = run_scc(directed, fast_config(machines))
        assert np.array_equal(result.values["scc"], reference_scc_ids(directed))

    def test_conductance(self, directed, machines):
        algorithm = Conductance()
        result = run_algorithm(algorithm, directed, fast_config(machines))
        measured = algorithm.conductance_from_values(result.values)
        assert measured == pytest.approx(reference_conductance(directed))

    def test_spmv(self, weighted_directed, machines):
        x = np.random.default_rng(3).random(weighted_directed.num_vertices)
        result = run_algorithm(SpMV(x=x), weighted_directed, fast_config(machines))
        assert np.allclose(
            result.values["y"], reference_spmv(weighted_directed, x)
        )

    def test_bp(self, weighted_directed, machines):
        result = run_algorithm(
            BeliefPropagation(iterations=4), weighted_directed, fast_config(machines)
        )
        expected = reference_bp_beliefs(weighted_directed, iterations=4)
        assert np.allclose(result.values["belief"], expected)


class TestAlgorithmEdgeCases:
    def test_bfs_from_isolated_root(self):
        graph = rmat_graph(6, seed=1)
        undirected = to_undirected(graph)
        degree = np.bincount(undirected.src, minlength=undirected.num_vertices)
        isolated = int(np.argmin(degree))
        if degree[isolated] > 0:
            pytest.skip("no isolated vertex in this graph")
        result = run_algorithm(BFS(root=isolated), undirected, fast_config(2))
        distance = result.values["distance"]
        assert distance[isolated] == 0
        assert (distance[np.arange(len(distance)) != isolated] == -1).all()

    def test_bfs_invalid_root_rejected(self, undirected):
        with pytest.raises(ValueError):
            run_algorithm(BFS(root=10**9), undirected, fast_config(1))

    def test_sssp_requires_weights(self, directed):
        with pytest.raises(ValueError, match="weight"):
            run_algorithm(SSSP(root=0), directed, fast_config(1))

    def test_mcst_requires_weights(self, directed):
        with pytest.raises(ValueError, match="weight"):
            run_mcst(directed, fast_config(1))

    def test_pagerank_ranks_hub_highest(self):
        """A star graph's centre must dominate the ranking."""
        from repro.graph.edgelist import EdgeList

        n = 50
        spokes = np.arange(1, n)
        graph = EdgeList(
            num_vertices=n,
            src=np.concatenate([spokes, np.zeros(0, dtype=np.int64)]),
            dst=np.concatenate([np.zeros(n - 1, dtype=np.int64)]),
        )
        result = run_algorithm(PageRank(iterations=10), graph, fast_config(2))
        rank = result.values["rank"]
        assert rank[0] == rank.max()

    def test_wcc_on_disconnected_pairs(self):
        from repro.graph.edgelist import EdgeList

        graph = EdgeList(
            num_vertices=6, src=[0, 1, 2, 3, 4, 5], dst=[1, 0, 3, 2, 5, 4]
        )
        result = run_algorithm(WCC(), graph, fast_config(2))
        assert list(result.values["label"]) == [0, 0, 2, 2, 4, 4]

    def test_scc_on_a_cycle(self):
        from repro.graph.edgelist import EdgeList

        n = 7
        graph = EdgeList(
            num_vertices=n,
            src=np.arange(n),
            dst=(np.arange(n) + 1) % n,
        )
        result = run_scc(graph, fast_config(2))
        assert (result.values["scc"] == n - 1).all()

    def test_scc_on_a_dag_is_singletons(self):
        from repro.graph.edgelist import EdgeList

        graph = EdgeList(num_vertices=5, src=[0, 1, 2, 3], dst=[1, 2, 3, 4])
        result = run_scc(graph, fast_config(2))
        assert list(result.values["scc"]) == [0, 1, 2, 3, 4]

    def test_mcst_on_known_graph(self):
        """Hand-checked MST: square with diagonal."""
        from repro.graph.edgelist import EdgeList

        src = [0, 1, 2, 3, 0]
        dst = [1, 2, 3, 0, 2]
        weight = [1.0, 2.0, 3.0, 4.0, 2.5]
        graph = to_undirected(
            EdgeList(num_vertices=4, src=src, dst=dst, weight=weight)
        )
        result = run_mcst(graph, fast_config(2))
        # MST = {0-1 (1), 1-2 (2), 2-3 (3)}: the 2.5 diagonal cannot
        # replace the only cheap connection to vertex 3.
        assert result.values["mst_weight"] == pytest.approx(1.0 + 2.0 + 3.0)
        assert result.values["tree_edges"] == 3

    def test_spmv_unweighted_uses_adjacency(self, directed):
        x = np.ones(directed.num_vertices)
        result = run_algorithm(SpMV(x=x), directed, fast_config(1))
        in_degree = np.bincount(directed.dst, minlength=directed.num_vertices)
        assert np.allclose(result.values["y"], in_degree)

    def test_empty_graph_terminates(self):
        from repro.graph.edgelist import EdgeList

        graph = EdgeList(
            num_vertices=8,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
        )
        result = run_algorithm(WCC(), graph, fast_config(2))
        assert np.array_equal(result.values["label"], np.arange(8))

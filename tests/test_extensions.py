"""Tests for the optional extensions: update aggregation (Section 11.1)
and vertex-set replication (Section 6.6)."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, WCC
from repro.algorithms.combiners import combine_by_max, combine_by_min, combine_by_sum
from repro.core.runtime import run_algorithm
from repro.graph import rmat_graph, to_undirected

from tests.conftest import fast_config
from tests.references import reference_pagerank


class TestCombiners:
    def test_combine_by_sum(self):
        dst = np.array([3, 1, 3, 1, 2])
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out_dst, out_values = combine_by_sum(dst, values)
        assert list(out_dst) == [1, 2, 3]
        assert list(out_values) == [6.0, 5.0, 4.0]

    def test_combine_by_min(self):
        dst = np.array([3, 1, 3, 1])
        values = np.array([7.0, 2.0, 3.0, 4.0])
        out_dst, out_values = combine_by_min(dst, values)
        assert list(out_dst) == [1, 3]
        assert list(out_values) == [2.0, 3.0]

    def test_combine_by_max(self):
        dst = np.array([0, 0, 1])
        values = np.array([1.0, 9.0, 5.0])
        out_dst, out_values = combine_by_max(dst, values)
        assert list(out_dst) == [0, 1]
        assert list(out_values) == [9.0, 5.0]

    def test_combine_preserves_singletons(self):
        dst = np.array([5])
        values = np.array([1.5])
        out_dst, out_values = combine_by_sum(dst, values)
        assert list(out_dst) == [5] and list(out_values) == [1.5]


class TestUpdateAggregation:
    def test_pagerank_results_unchanged(self, medium_graph):
        plain = run_algorithm(
            PageRank(iterations=3), medium_graph, fast_config(4)
        )
        aggregated = run_algorithm(
            PageRank(iterations=3),
            medium_graph,
            fast_config(4, aggregate_updates=True),
        )
        assert np.allclose(plain.values["rank"], aggregated.values["rank"])

    def test_aggregation_reduces_written_updates(self, medium_graph):
        plain = run_algorithm(
            PageRank(iterations=3), medium_graph, fast_config(4)
        )
        aggregated = run_algorithm(
            PageRank(iterations=3),
            medium_graph,
            fast_config(4, aggregate_updates=True),
        )
        assert (
            aggregated.updates_written_records < plain.updates_written_records
        )
        assert aggregated.updates_written_bytes < plain.updates_written_bytes

    def test_bfs_with_min_combiner_correct(self):
        graph = to_undirected(rmat_graph(9, seed=8, weighted=True))
        plain = run_algorithm(BFS(root=0), graph, fast_config(4))
        aggregated = run_algorithm(
            BFS(root=0), graph, fast_config(4, aggregate_updates=True)
        )
        assert np.array_equal(
            plain.values["distance"], aggregated.values["distance"]
        )

    def test_written_counts_match_produced_without_aggregation(
        self, small_graph
    ):
        result = run_algorithm(
            PageRank(iterations=2), small_graph, fast_config(2)
        )
        produced = sum(s.updates_produced for s in result.iteration_stats)
        assert result.updates_written_records == produced


class TestVertexReplication:
    def test_results_unchanged(self, small_graph):
        plain = run_algorithm(
            PageRank(iterations=2), small_graph, fast_config(4)
        )
        replicated = run_algorithm(
            PageRank(iterations=2),
            small_graph,
            fast_config(4, vertex_replicas=2),
        )
        assert np.allclose(plain.values["rank"], replicated.values["rank"])

    def test_replication_costs_extra_writes(self, small_graph):
        plain = run_algorithm(
            PageRank(iterations=2), small_graph, fast_config(4)
        )
        replicated = run_algorithm(
            PageRank(iterations=2),
            small_graph,
            fast_config(4, vertex_replicas=3),
        )
        assert replicated.storage_bytes > plain.storage_bytes
        assert replicated.runtime >= plain.runtime

    def test_invalid_replica_counts(self):
        with pytest.raises(ValueError):
            fast_config(2, vertex_replicas=0)
        with pytest.raises(ValueError):
            fast_config(2, vertex_replicas=3)

    def test_placement_returns_distinct_machines(self):
        from repro.store.placement import HashedVertexPlacement

        placement = HashedVertexPlacement(8)
        for partition in range(4):
            machines = placement.machines_for(partition, 0, 3)
            assert len(set(machines)) == 3
        with pytest.raises(ValueError):
            placement.machines_for(0, 0, 9)


class TestCombinerGatherConsistency:
    """gather(combine(updates)) must equal gather(updates) — the
    algebraic requirement for safe pre-aggregation."""

    @pytest.mark.parametrize(
        "algorithm_factory",
        [
            lambda: PageRank(),
            lambda: BFS(),
            lambda: WCC(),
        ],
        ids=["PR", "BFS", "WCC"],
    )
    def test_combined_gather_matches_raw(self, algorithm_factory):
        from repro.core.gas import GraphContext

        algorithm = algorithm_factory()
        ctx = GraphContext(
            num_vertices=16,
            num_edges=0,
            weighted=False,
            out_degrees=np.ones(16, dtype=np.int64),
        )
        algorithm.init_values(ctx)
        rng = np.random.default_rng(7)
        dst = rng.integers(0, 16, size=50)
        if algorithm.name in ("BFS", "WCC"):
            values = rng.integers(0, 1000, size=50)
        else:
            values = rng.random(50)

        raw = algorithm.make_accumulator(16)
        algorithm.gather(raw, dst, values)

        combined_dst, combined_values = algorithm.combine_updates(dst, values)
        assert len(combined_dst) <= len(dst)
        combined = algorithm.make_accumulator(16)
        algorithm.gather(combined, combined_dst, combined_values)

        assert np.allclose(
            np.asarray(raw, dtype=np.float64),
            np.asarray(combined, dtype=np.float64),
        )

"""Unit tests for barriers, latches and wait groups."""

import pytest

from repro.sim import Barrier, Latch, Simulator, WaitGroup
from repro.sim.engine import SimulationError


class TestBarrier:
    def test_releases_when_all_arrive(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=3)
        first = barrier.wait()
        second = barrier.wait()
        assert not first.triggered and not second.triggered
        third = barrier.wait()
        assert first.triggered and second.triggered and third.triggered

    def test_generation_increments(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=2)
        a = barrier.wait()
        barrier.wait()  # chaos: ignore[CHX004] release asserted via `a`
        assert a.value == 1
        b = barrier.wait()
        barrier.wait()  # chaos: ignore[CHX004] release asserted via `b`
        assert b.value == 2
        assert barrier.generation == 2

    def test_cyclic_reuse(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=2)
        trace = []

        def party(name, delay):
            for round_number in range(3):
                yield sim.timeout(delay)
                yield barrier.wait()
                trace.append((round_number, name, sim.now))

        sim.process(party("fast", 1.0))
        sim.process(party("slow", 2.0))
        sim.run()
        # Rounds release at the slow party's pace: t = 2, 4, 6.
        release_times = [t for (_r, _n, t) in trace]
        assert release_times == [2.0, 2.0, 4.0, 4.0, 6.0, 6.0]

    def test_wait_time_accumulates(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=2)

        def fast():
            yield barrier.wait()

        def slow():
            yield sim.timeout(5.0)
            yield barrier.wait()

        sim.process(fast())
        sim.process(slow())
        sim.run()
        assert barrier.total_wait_time == pytest.approx(5.0)

    def test_single_party_releases_immediately(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=1)
        assert barrier.wait().triggered

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            Barrier(Simulator(), parties=0)


class TestLatch:
    def test_counts_down_to_release(self):
        sim = Simulator()
        latch = Latch(sim, count=2)
        assert not latch.done.triggered
        latch.count_down()
        assert not latch.done.triggered
        latch.count_down()
        assert latch.done.triggered

    def test_zero_count_released_at_start(self):
        sim = Simulator()
        assert Latch(sim, count=0).done.triggered

    def test_extra_count_down_rejected(self):
        sim = Simulator()
        latch = Latch(sim, count=1)
        latch.count_down()
        with pytest.raises(SimulationError):
            latch.count_down()


class TestWaitGroup:
    def test_wait_with_nothing_outstanding_is_immediate(self):
        sim = Simulator()
        group = WaitGroup(sim)
        assert group.wait().triggered

    def test_wait_blocks_until_all_done(self):
        sim = Simulator()
        group = WaitGroup(sim)
        group.add(2)
        waiter = group.wait()
        group.done_one()
        assert not waiter.triggered
        group.done_one()
        assert waiter.triggered

    def test_add_after_done_reblocks_new_waiters(self):
        sim = Simulator()
        group = WaitGroup(sim)
        group.add(1)
        group.done_one()
        group.add(1)
        waiter = group.wait()
        assert not waiter.triggered
        group.done_one()
        assert waiter.triggered

    def test_done_without_add_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            WaitGroup(sim).done_one()

"""Unit tests for the storage substrate: chunks, backends, engines, placement."""

import numpy as np
import pytest

from repro.net import GIGE_40, Network
from repro.sim import Simulator
from repro.store import (
    CentralizedDirectory,
    Chunk,
    ChunkKind,
    FileChunkStore,
    HashedVertexPlacement,
    MemoryChunkStore,
    RandomPlacement,
    SSD_480GB,
    StorageEngine,
)
from repro.store.chunk import split_into_chunks
from repro.store.device import HDD_RAID0, DeviceSpec


class TestChunk:
    def test_phantom_detection(self):
        chunk = Chunk(partition=0, kind=ChunkKind.EDGES, size=10)
        assert chunk.is_phantom
        chunk = Chunk(partition=0, kind=ChunkKind.EDGES, size=10, payload={})
        assert not chunk.is_phantom

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Chunk(partition=0, kind=ChunkKind.EDGES, size=-1)

    def test_split_into_chunks(self):
        assert split_into_chunks(10, 4) == [4, 4, 2]
        assert split_into_chunks(8, 4) == [4, 4]
        assert split_into_chunks(0, 4) == []
        assert split_into_chunks(3, 4) == [3]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            split_into_chunks(10, 0)
        with pytest.raises(ValueError):
            split_into_chunks(-1, 4)


class TestDeviceSpec:
    def test_chunk_time(self):
        device = DeviceSpec("d", bandwidth=100.0, latency=0.5, capacity=10)
        assert device.chunk_time(50) == pytest.approx(1.0)

    def test_presets_ordering(self):
        assert SSD_480GB.bandwidth == 2 * HDD_RAID0.bandwidth
        assert HDD_RAID0.latency > SSD_480GB.latency

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", bandwidth=0, latency=0, capacity=1)


def _edge_chunk(partition=0, size=100, seq=0):
    return Chunk(partition=partition, kind=ChunkKind.EDGES, size=size, records=seq)


class TestMemoryChunkStore:
    def test_read_once_semantics(self):
        store = MemoryChunkStore()
        store.append_chunk(_edge_chunk(seq=1))
        store.append_chunk(_edge_chunk(seq=2))
        assert store.fetch_any(0, ChunkKind.EDGES).records == 1
        assert store.fetch_any(0, ChunkKind.EDGES).records == 2
        assert store.fetch_any(0, ChunkKind.EDGES) is None

    def test_reset_cursors_makes_rereadable(self):
        store = MemoryChunkStore()
        store.append_chunk(_edge_chunk())
        store.fetch_any(0, ChunkKind.EDGES)
        assert store.fetch_any(0, ChunkKind.EDGES) is None
        store.reset_cursors(ChunkKind.EDGES)
        assert store.fetch_any(0, ChunkKind.EDGES) is not None

    def test_remaining_bytes(self):
        store = MemoryChunkStore()
        store.append_chunk(_edge_chunk(size=100))
        store.append_chunk(_edge_chunk(size=50))
        assert store.remaining_bytes(0, ChunkKind.EDGES) == 150
        store.fetch_any(0, ChunkKind.EDGES)
        assert store.remaining_bytes(0, ChunkKind.EDGES) == 50

    def test_partitions_are_independent(self):
        store = MemoryChunkStore()
        store.append_chunk(_edge_chunk(partition=0))
        store.append_chunk(_edge_chunk(partition=1))
        assert store.fetch_any(0, ChunkKind.EDGES) is not None
        assert store.fetch_any(0, ChunkKind.EDGES) is None
        assert store.fetch_any(1, ChunkKind.EDGES) is not None

    def test_delete_clears_set(self):
        store = MemoryChunkStore()
        chunk = Chunk(partition=0, kind=ChunkKind.UPDATES, size=10)
        store.append_chunk(chunk)
        store.delete(0, ChunkKind.UPDATES)
        assert store.fetch_any(0, ChunkKind.UPDATES) is None
        assert store.remaining_bytes(0, ChunkKind.UPDATES) == 0

    def test_vertex_chunks_keyed_by_index(self):
        store = MemoryChunkStore()
        for index in range(3):
            store.put_vertex_chunk(
                Chunk(
                    partition=0,
                    kind=ChunkKind.VERTICES,
                    size=10,
                    index=index,
                    records=index,
                )
            )
        assert store.get_vertex_chunk(0, 1).records == 1
        assert store.get_vertex_chunk(0, 5) is None
        assert store.vertex_chunk_count(0) == 3

    def test_vertex_chunk_overwrite(self):
        store = MemoryChunkStore()
        for records in (1, 2):
            store.put_vertex_chunk(
                Chunk(
                    partition=0,
                    kind=ChunkKind.VERTICES,
                    size=10,
                    index=0,
                    records=records,
                )
            )
        assert store.get_vertex_chunk(0, 0).records == 2
        assert store.vertex_chunk_count(0) == 1

    def test_vertex_chunk_wrong_method_rejected(self):
        store = MemoryChunkStore()
        with pytest.raises(ValueError):
            store.append_chunk(
                Chunk(partition=0, kind=ChunkKind.VERTICES, size=1)
            )
        with pytest.raises(ValueError):
            store.put_vertex_chunk(_edge_chunk())


class TestFileChunkStore:
    def _payload_chunk(self, partition=0, values=(1, 2, 3)):
        array = np.array(values, dtype=np.int64)
        return Chunk(
            partition=partition,
            kind=ChunkKind.EDGES,
            size=array.nbytes,
            payload={"dst": array, "src": array * 2},
            records=len(values),
        )

    def test_payload_roundtrip_through_disk(self, tmp_path):
        store = FileChunkStore(str(tmp_path))
        chunk = self._payload_chunk()
        store.append_chunk(chunk)
        loaded = store.fetch_any(0, ChunkKind.EDGES)
        assert np.array_equal(loaded.payload["dst"], chunk.payload["dst"])
        assert np.array_equal(loaded.payload["src"], chunk.payload["src"])

    def test_files_created_on_disk(self, tmp_path):
        store = FileChunkStore(str(tmp_path))
        store.append_chunk(self._payload_chunk(partition=3))
        assert (tmp_path / "p3.edges").exists()

    def test_read_once_and_reset(self, tmp_path):
        store = FileChunkStore(str(tmp_path))
        store.append_chunk(self._payload_chunk())
        assert store.fetch_any(0, ChunkKind.EDGES) is not None
        assert store.fetch_any(0, ChunkKind.EDGES) is None
        store.reset_cursors(ChunkKind.EDGES)
        loaded = store.fetch_any(0, ChunkKind.EDGES)
        assert loaded is not None and loaded.payload is not None

    def test_delete_removes_file(self, tmp_path):
        store = FileChunkStore(str(tmp_path))
        store.append_chunk(self._payload_chunk(partition=1))
        store.delete(1, ChunkKind.EDGES)
        assert not (tmp_path / "p1.edges").exists()
        assert store.fetch_any(1, ChunkKind.EDGES) is None

    def test_structured_dtype_payload(self, tmp_path):
        store = FileChunkStore(str(tmp_path))
        dtype = np.dtype([("weight", np.float64), ("src", np.int64)])
        payload = np.zeros(4, dtype=dtype)
        payload["weight"] = [1.0, 2.0, 3.0, 4.0]
        chunk = Chunk(
            partition=0,
            kind=ChunkKind.UPDATES,
            size=payload.nbytes,
            payload={"value": payload, "dst": np.arange(4)},
            records=4,
        )
        store.append_chunk(chunk)
        loaded = store.fetch_any(0, ChunkKind.UPDATES)
        assert np.array_equal(loaded.payload["value"]["weight"], payload["weight"])

    def test_vertex_chunk_roundtrip(self, tmp_path):
        store = FileChunkStore(str(tmp_path))
        array = np.arange(5, dtype=np.float64)
        store.put_vertex_chunk(
            Chunk(
                partition=0,
                kind=ChunkKind.VERTICES,
                size=array.nbytes,
                payload={"rank": array},
                index=0,
            )
        )
        loaded = store.get_vertex_chunk(0, 0)
        assert np.array_equal(loaded.payload["rank"], array)


class TestRandomPlacement:
    def test_write_targets_in_range(self):
        placement = RandomPlacement(4, seed=1)
        targets = {placement.choose_write() for _ in range(100)}
        assert targets <= {0, 1, 2, 3}
        assert len(targets) == 4  # all machines eventually used

    def test_read_respects_exclusions(self):
        placement = RandomPlacement(4, seed=1)
        for _ in range(50):
            choice = placement.choose_read({0, 2})
            assert choice in (1, 3)

    def test_all_excluded_returns_none(self):
        placement = RandomPlacement(2, seed=0)
        assert placement.choose_read({0, 1}) is None

    def test_uniformity(self):
        placement = RandomPlacement(4, seed=9)
        counts = np.bincount(
            [placement.choose_write() for _ in range(4000)], minlength=4
        )
        assert counts.min() > 800  # roughly uniform


class TestHashedVertexPlacement:
    def test_deterministic(self):
        a = HashedVertexPlacement(8)
        b = HashedVertexPlacement(8)
        for partition in range(10):
            for index in range(10):
                assert a.machine_for(partition, index) == b.machine_for(
                    partition, index
                )

    def test_spreads_across_machines(self):
        placement = HashedVertexPlacement(8)
        machines = {
            placement.machine_for(p, i) for p in range(16) for i in range(16)
        }
        assert machines == set(range(8))


class TestStorageEngineProtocol:
    def _cluster(self, machines=2):
        sim = Simulator()
        network = Network(sim, machines, GIGE_40)
        engines = [
            StorageEngine(sim, network, m, SSD_480GB, MemoryChunkStore())
            for m in range(machines)
        ]
        return sim, network, engines

    def _request(self, sim, network, kind, payload):
        mailbox = network.register(0, "client")
        network.send(0, 1, "storage", kind, 32, payload=payload)
        replies = []

        def collect():
            message = yield mailbox.get()
            replies.append(message)

        sim.process(collect())
        sim.run()
        return replies[0]

    def test_read_returns_chunk_then_exhausted(self):
        sim, network, engines = self._cluster()
        engines[1].preload_chunk(_edge_chunk(size=4096))
        reply = self._request(
            sim, network, "read", (1, 0, "client", 0, ChunkKind.EDGES)
        )
        assert reply.payload[1].size == 4096
        reply = self._request(
            sim, network, "read", (2, 0, "client", 0, ChunkKind.EDGES)
        )
        assert reply.payload[1] is None
        assert engines[1].exhausted_replies == 1

    def test_write_then_read_back(self):
        sim, network, engines = self._cluster()
        chunk = Chunk(partition=2, kind=ChunkKind.UPDATES, size=1000)
        reply = self._request(sim, network, "write", (5, 0, "client", chunk))
        assert reply.kind == "write_ack"
        reply = self._request(
            sim, network, "read", (6, 0, "client", 2, ChunkKind.UPDATES)
        )
        assert reply.payload[1].size == 1000

    def test_vread_vwrite_roundtrip(self):
        sim, network, engines = self._cluster()
        chunk = Chunk(
            partition=0, kind=ChunkKind.VERTICES, size=64, index=3
        )
        self._request(sim, network, "vwrite", (7, 0, "client", chunk))
        reply = self._request(sim, network, "vread", (8, 0, "client", 0, 3))
        assert reply.payload[1].index == 3

    def test_device_time_charged(self):
        sim, network, engines = self._cluster()
        size = 4 * 1024 * 1024
        engines[1].preload_chunk(_edge_chunk(size=size))
        self._request(sim, network, "read", (1, 0, "client", 0, ChunkKind.EDGES))
        expected_device = SSD_480GB.latency + size / SSD_480GB.bandwidth
        assert sim.now > expected_device  # device + network time elapsed
        assert engines[1].bytes_served() == size

    def test_remaining_bytes_local_query(self):
        sim, network, engines = self._cluster()
        engines[0].preload_chunk(_edge_chunk(size=100))
        assert engines[0].remaining_bytes(0, ChunkKind.EDGES) == 100
        assert engines[0].remaining_bytes(0, ChunkKind.UPDATES) == 0


class TestCentralizedDirectory:
    def test_lookup_roundtrip(self):
        sim = Simulator()
        network = Network(sim, 4, GIGE_40)
        directory = CentralizedDirectory(sim, network, home=0)
        mailbox = network.register(2, "client")
        directory.lookup_from(2, "client", request_id=42)
        replies = []

        def collect():
            message = yield mailbox.get()
            replies.append(message)

        sim.process(collect())
        sim.run()
        request_id, location = replies[0].payload
        assert request_id == 42
        assert 0 <= location < 4
        assert directory.lookups == 1

    def test_lookups_serialize(self):
        """Concurrent lookups queue at the single directory server."""
        sim = Simulator()
        network = Network(sim, 2, GIGE_40)
        directory = CentralizedDirectory(
            sim, network, home=0, lookups_per_second=10.0
        )
        mailbox = network.register(1, "client")
        for request_id in range(3):
            directory.lookup_from(1, "client", request_id)
        arrival_times = []

        def collect():
            for _ in range(3):
                yield mailbox.get()
                arrival_times.append(sim.now)

        sim.process(collect())
        sim.run()
        gaps = np.diff(arrival_times)
        assert (gaps > 0.09).all()  # ~0.1 s service time each


class TestFio:
    def test_measured_matches_closed_form(self):
        from repro.store.fio import effective_bandwidth, measure_sequential_bandwidth

        result = measure_sequential_bandwidth(
            SSD_480GB, chunk_bytes=4 * 1024 * 1024, total_bytes=10**9
        )
        assert result.bandwidth == pytest.approx(
            effective_bandwidth(SSD_480GB, 4 * 1024 * 1024), rel=1e-6
        )

    def test_latency_degrades_small_chunks(self):
        from repro.store.fio import measure_sequential_bandwidth

        big = measure_sequential_bandwidth(
            SSD_480GB, chunk_bytes=4 * 1024 * 1024, total_bytes=10**8
        )
        small = measure_sequential_bandwidth(
            SSD_480GB, chunk_bytes=16 * 1024, total_bytes=10**7
        )
        assert small.bandwidth < big.bandwidth
        # 4 MB chunks get within 2% of the line rate (the paper's point
        # about the chunk size being "large enough to appear sequential").
        assert big.bandwidth > 0.98 * SSD_480GB.bandwidth

    def test_summary_mentions_device(self):
        from repro.store.fio import measure_sequential_bandwidth

        result = measure_sequential_bandwidth(
            HDD_RAID0, chunk_bytes=1 << 20, total_bytes=10**8
        )
        assert "HDD" in result.summary()

    def test_invalid_parameters(self):
        from repro.store.fio import measure_sequential_bandwidth

        with pytest.raises(ValueError):
            measure_sequential_bandwidth(SSD_480GB, chunk_bytes=0)
        with pytest.raises(ValueError):
            measure_sequential_bandwidth(
                SSD_480GB, chunk_bytes=1024, total_bytes=10
            )

"""Tests for the multi-phase driver machinery (MCST/SCC structure)."""

import numpy as np
import pytest

from repro.algorithms import run_mcst, run_scc
from repro.algorithms.drivers import DriverResult
from repro.core.metrics import Breakdown, JobResult
from repro.graph import rmat_graph, to_undirected

from tests.conftest import fast_config


def _job(runtime=1.0, storage=100, machines=2):
    breakdown = Breakdown()
    breakdown.add("gp_master", runtime / 2)
    return JobResult(
        algorithm="stub",
        machines=machines,
        runtime=runtime,
        preprocessing_seconds=0.1,
        iterations=2,
        storage_bytes=storage,
        network_bytes=10,
        steals_accepted=1,
        steals_rejected=2,
        breakdowns=[breakdown, Breakdown()],
    )


class TestDriverResult:
    def test_aggregates_sum_over_jobs(self):
        result = DriverResult(
            algorithm="X",
            machines=2,
            runtime=3.0,
            rounds=2,
            jobs=[_job(1.0), _job(2.0, storage=200)],
        )
        assert result.iterations == 4
        assert result.storage_bytes == 300
        assert result.network_bytes == 20
        assert result.steals_accepted == 2
        assert result.steals_rejected == 4
        assert result.preprocessing_seconds == pytest.approx(0.2)
        assert result.aggregate_bandwidth == pytest.approx(100.0)
        assert result.checkpoints == 0

    def test_breakdowns_merge_per_engine(self):
        result = DriverResult(
            algorithm="X",
            machines=2,
            runtime=3.0,
            rounds=1,
            jobs=[_job(1.0), _job(2.0)],
        )
        per_engine = result.breakdowns
        assert len(per_engine) == 2
        assert per_engine[0].gp_master == pytest.approx(0.5 + 1.0)
        assert per_engine[1].total() == 0.0
        assert result.total_breakdown().gp_master == pytest.approx(1.5)

    def test_summary(self):
        result = DriverResult(
            algorithm="MCST", machines=4, runtime=1.0, rounds=3, jobs=[]
        )
        assert "MCST" in result.summary()
        assert "rounds=3" in result.summary()


class TestDriverStructure:
    def test_mcst_two_jobs_per_round(self):
        graph = to_undirected(rmat_graph(7, seed=3, weighted=True))
        result = run_mcst(graph, fast_config(2))
        assert len(result.jobs) == 2 * result.rounds
        assert result.rounds >= 1
        assert result.runtime == pytest.approx(
            sum(job.runtime for job in result.jobs)
        )

    def test_scc_two_jobs_per_round(self):
        graph = rmat_graph(7, seed=3)
        result = run_scc(graph, fast_config(2))
        assert len(result.jobs) == 2 * result.rounds
        assert result.runtime == pytest.approx(
            sum(job.runtime for job in result.jobs)
        )

    def test_mcst_contraction_terminates_quickly(self):
        """Borůvka halves component count per round: rounds = O(log V)."""
        graph = to_undirected(rmat_graph(9, seed=1, weighted=True))
        result = run_mcst(graph, fast_config(2))
        assert result.rounds <= 10

    def test_mcst_component_labels_match_wcc(self):
        from repro.algorithms import WCC
        from repro.core.runtime import run_algorithm

        graph = to_undirected(rmat_graph(8, seed=5, weighted=True))
        mcst = run_mcst(graph, fast_config(2))
        wcc = run_algorithm(WCC(), graph, fast_config(2))
        # The forest's components are the graph's connected components:
        # the label partition must coincide (label values may differ).
        forest = mcst.values["component"]
        reference = wcc.values["label"]
        mapping = {}
        for mine, theirs in zip(forest, reference):
            assert mapping.setdefault(mine, theirs) == theirs

    def test_mcst_tree_edge_count(self):
        """|forest edges| = |V| - #components."""
        from repro.algorithms import WCC
        from repro.core.runtime import run_algorithm

        graph = to_undirected(rmat_graph(8, seed=5, weighted=True))
        mcst = run_mcst(graph, fast_config(2))
        wcc = run_algorithm(WCC(), graph, fast_config(2))
        components = len(np.unique(wcc.values["label"]))
        assert mcst.values["tree_edges"] == graph.num_vertices - components

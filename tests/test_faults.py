"""Tests for in-simulation fault injection (:mod:`repro.faults`).

The acceptance invariant of the subsystem: for a fixed
``(config, seed)``, a fault-injected run's final vertex values are
**byte-identical** to the undisturbed run's — across algorithms and
fault kinds — and the recovery timeline decomposes into
useful/lost/restore time that reconciles with the tracer's category
totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import SSSP, WCC, PageRank
from repro.core.runtime import ChaosCluster
from repro.faults import (
    CheckpointRegistry,
    FaultKind,
    FaultPlan,
    parse_fault_spec,
)
from repro.faults.registry import SLOT_BASES

from tests.conftest import fast_config


def _fault_config(**overrides):
    defaults = dict(checkpointing=True, seed=7)
    defaults.update(overrides)
    return fast_config(4, **defaults)


def _assert_byte_identical(faulted, baseline):
    assert set(faulted.values) == set(baseline.values)
    for name in baseline.values:
        a, b = faulted.values[name], baseline.values[name]
        assert a.dtype == b.dtype, name
        assert a.tobytes() == b.tobytes(), name


# ---------------------------------------------------------------------------
# Spec parsing and validation
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_crash_with_iteration_trigger(self):
        spec = parse_fault_spec("crash:1@iter=3")
        assert spec.kind is FaultKind.CRASH
        assert spec.machine == 1
        assert spec.at_iteration == 3
        assert spec.at_time is None
        assert spec.describe() == "crash:1@iter=3"

    def test_crash_restart_with_time_and_down(self):
        spec = parse_fault_spec("crash-restart:0@t=0.02,down=0.01")
        assert spec.kind is FaultKind.CRASH_RESTART
        assert spec.at_time == pytest.approx(0.02)
        assert spec.down == pytest.approx(0.01)

    def test_partition_with_duration(self):
        spec = parse_fault_spec("partition:2@iter=2,for=0.05")
        assert spec.kind is FaultKind.PARTITION
        assert spec.duration == pytest.approx(0.05)

    def test_slow_device(self):
        spec = parse_fault_spec("slow-device:1@t=0.01,factor=8,for=0.02")
        assert spec.kind is FaultKind.SLOW_DEVICE
        assert spec.factor == pytest.approx(8.0)

    @pytest.mark.parametrize(
        "text, match",
        [
            ("bogus:1@iter=3", "unknown kind"),
            ("crash:1", "missing @trigger"),
            ("crash:x@iter=3", "bad machine id"),
            ("crash:1@when=3", "trigger must be"),
            ("crash:1@iter=oops", "bad iter="),
            ("crash:1@t=soon", "bad t="),
            ("crash:1@iter=3,color=red", "unknown option"),
        ],
    )
    def test_parse_errors(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_fault_spec(text)

    @pytest.mark.parametrize(
        "text, match",
        [
            ("crash:9@iter=3", "outside"),
            ("crash:1@iter=3,for=0.05", "down="),
            ("partition:1@iter=3,for=0.000001", "shorter than two leases"),
            ("partition:1@iter=3,down=0.01", "only applies to crashes"),
            ("slow-device:1@t=0.01,for=0.02", "factor="),
            ("slow-device:1@t=0.01,factor=0.5,for=0.02", "factor="),
            ("crash:1@t=-1", "t= must be"),
        ],
    )
    def test_validation_errors(self, text, match):
        config = _fault_config()
        with pytest.raises(ValueError, match=match):
            parse_fault_spec(text).validate(config)

    def test_partition_needs_two_machines(self):
        config = fast_config(1, checkpointing=True)
        with pytest.raises(ValueError, match="two machines"):
            parse_fault_spec("partition:0@iter=1").validate(config)

    def test_plan_parse_and_bool(self):
        plan = FaultPlan.parse(["crash:1@iter=3", "partition:0@t=0.1"])
        assert len(plan.specs) == 2
        assert bool(plan)
        assert not FaultPlan()


# ---------------------------------------------------------------------------
# Checkpoint registry (two-phase double buffer)
# ---------------------------------------------------------------------------


class TestCheckpointRegistry:
    def test_first_round_uses_slot_zero(self):
        registry = CheckpointRegistry(num_partitions=2)
        assert registry.round_slot((0, 0, 0), 0) == 0
        # Same round, second caller: same slot.
        assert registry.round_slot((0, 0, 0), 0) == 0

    def test_round_durable_after_all_partitions(self):
        registry = CheckpointRegistry(num_partitions=2)
        key = (0, 0, 1)
        registry.round_slot(key, 1)
        registry.note_durable(key, 0, now=1.0)
        assert registry.latest_durable() is None
        registry.note_durable(key, 1, now=2.0)
        generation = registry.latest_durable()
        assert generation is not None
        assert generation.key == key
        assert generation.resume_iteration == 1
        assert generation.durable_at == pytest.approx(2.0)

    def test_next_round_never_reuses_durable_slot(self):
        registry = CheckpointRegistry(num_partitions=1)
        registry.round_slot((0, 0, 0), 0)
        registry.note_durable((0, 0, 0), 0, now=1.0)
        assert registry.latest_durable().slot == 0
        # The in-progress round must write to the *other* slot so a
        # crash mid-round can still restore the durable generation.
        assert registry.round_slot((0, 1, 0), 1) == 1
        registry.note_durable((0, 1, 0), 0, now=2.0)
        assert registry.latest_durable().slot == 1
        assert registry.round_slot((0, 2, 0), 2) == 0
        assert registry.rounds_completed == 2

    def test_unopened_round_rejected(self):
        registry = CheckpointRegistry(num_partitions=1)
        with pytest.raises(KeyError):
            registry.note_durable((0, 0, 0), 0, now=1.0)

    def test_slot_bases_clear_working_indices(self):
        registry = CheckpointRegistry(num_partitions=1)
        assert registry.base_for_slot(0) == SLOT_BASES[0]
        assert registry.base_for_slot(1) == SLOT_BASES[1]
        assert SLOT_BASES[0] > 100_000 and SLOT_BASES[1] > SLOT_BASES[0]


# ---------------------------------------------------------------------------
# Byte-identity across algorithms x fault kinds (acceptance invariant)
# ---------------------------------------------------------------------------

FAULTS = [
    "crash:1@iter=2",
    "crash-restart:1@iter=2,down=0.01",
    "partition:2@iter=2,for=0.05",
]


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def baselines(self, small_graph, small_undirected_graph):
        config = _fault_config()
        return {
            "PR": ChaosCluster(config).run(
                PageRank(iterations=5), small_graph
            ),
            "WCC": ChaosCluster(config).run(WCC(), small_undirected_graph),
            "SSSP": ChaosCluster(config).run(
                SSSP(root=0), small_undirected_graph
            ),
        }

    @pytest.mark.parametrize("fault", FAULTS)
    def test_pagerank(self, fault, small_graph, baselines):
        config = _fault_config()
        result = ChaosCluster(config).run(
            PageRank(iterations=5), small_graph,
            fault_plan=FaultPlan.parse([fault]),
        )
        _assert_byte_identical(result, baselines["PR"])

    @pytest.mark.parametrize("fault", FAULTS)
    def test_wcc(self, fault, small_undirected_graph, baselines):
        config = _fault_config()
        result = ChaosCluster(config).run(
            WCC(), small_undirected_graph,
            fault_plan=FaultPlan.parse([fault]),
        )
        _assert_byte_identical(result, baselines["WCC"])

    @pytest.mark.parametrize("fault", FAULTS)
    def test_sssp(self, fault, small_undirected_graph, baselines):
        config = _fault_config()
        result = ChaosCluster(config).run(
            SSSP(root=0), small_undirected_graph,
            fault_plan=FaultPlan.parse([fault]),
        )
        _assert_byte_identical(result, baselines["SSSP"])

    def test_crash_without_checkpointing_restarts_from_initial(
        self, small_graph, baselines
    ):
        config = _fault_config(checkpointing=False)
        baseline = ChaosCluster(config).run(
            PageRank(iterations=5), small_graph
        )
        cluster = ChaosCluster(config)
        result = cluster.run(
            PageRank(iterations=5), small_graph,
            fault_plan=FaultPlan.parse(["crash:1@iter=2"]),
        )
        _assert_byte_identical(result, baseline)
        round_ = cluster.last_fault_timeline.rounds[0]
        assert not round_.from_checkpoint
        assert round_.resume_iteration == 0

    def test_replicated_checkpoints(self, small_graph, baselines):
        config = _fault_config(vertex_replicas=2)
        baseline = ChaosCluster(config).run(
            PageRank(iterations=5), small_graph
        )
        result = ChaosCluster(config).run(
            PageRank(iterations=5), small_graph,
            fault_plan=FaultPlan.parse(["crash:1@iter=2"]),
        )
        _assert_byte_identical(result, baseline)

    def test_two_sequential_crashes(self, small_graph, baselines):
        config = _fault_config()
        cluster = ChaosCluster(config)
        result = cluster.run(
            PageRank(iterations=5), small_graph,
            fault_plan=FaultPlan.parse(
                ["crash:1@iter=1", "crash:2@iter=3"]
            ),
        )
        _assert_byte_identical(result, baselines["PR"])
        assert len(cluster.last_fault_timeline.rounds) == 2

    def test_slow_device_triggers_no_recovery(self, small_graph, baselines):
        config = _fault_config()
        cluster = ChaosCluster(config)
        result = cluster.run(
            PageRank(iterations=5), small_graph,
            fault_plan=FaultPlan.parse(
                ["slow-device:1@t=0.002,factor=8,for=0.01"]
            ),
        )
        _assert_byte_identical(result, baselines["PR"])
        timeline = cluster.last_fault_timeline
        assert len(timeline.faults) == 1
        assert timeline.rounds == []
        assert timeline.lost_seconds == 0.0


# ---------------------------------------------------------------------------
# Timeline decomposition and tracer reconciliation
# ---------------------------------------------------------------------------


class TestTimeline:
    @pytest.fixture(scope="class")
    def traced_run(self, small_graph):
        from repro.obs import Tracer, chrome_trace_dict, summarize_trace

        config = _fault_config()
        tracer = Tracer(sample_interval=None)
        cluster = ChaosCluster(config, tracer=tracer)
        result = cluster.run(
            PageRank(iterations=5), small_graph,
            fault_plan=FaultPlan.parse(["crash:1@iter=2"]),
        )
        summary = summarize_trace(chrome_trace_dict(tracer))
        return cluster.last_fault_timeline, result, summary

    def test_decomposition_sums_to_total(self, traced_run):
        timeline, result, _ = traced_run
        assert timeline.total_runtime == pytest.approx(result.runtime)
        assert timeline.useful_seconds > 0
        assert timeline.lost_seconds > 0
        assert timeline.restore_seconds > 0
        assert (
            timeline.useful_seconds
            + timeline.lost_seconds
            + timeline.restore_seconds
        ) == pytest.approx(timeline.total_runtime)

    def test_round_fields(self, traced_run):
        timeline, _, _ = traced_run
        assert len(timeline.faults) == 1
        assert len(timeline.rounds) == 1
        round_ = timeline.rounds[0]
        assert round_.suspects == (1,)
        assert round_.from_checkpoint
        assert round_.detected_at >= timeline.faults[0].fired_at
        assert round_.resumed_at == pytest.approx(
            round_.detected_at + round_.restore_seconds
        )
        assert "useful" in timeline.summary()

    def test_tracer_categories_reconcile(self, traced_run):
        """The lost/restore spans on the cluster job track sum to the
        timeline's decomposition exactly (ISSUE acceptance)."""
        timeline, _, summary = traced_run
        assert summary.category_seconds["lost"] == pytest.approx(
            timeline.lost_seconds
        )
        assert summary.category_seconds["restore"] == pytest.approx(
            timeline.restore_seconds
        )

    def test_trace_report_shows_recovery_rows(self, traced_run):
        from repro.obs import format_trace_report

        _, _, summary = traced_run
        report = format_trace_report(summary)
        assert "recovery decomposition" in report
        assert "lost" in report and "restore" in report

    def test_fault_instants_traced(self, traced_run):
        _, _, summary = traced_run
        assert summary.instants.get("fault.suspect", 0) >= 1


# ---------------------------------------------------------------------------
# Rejected combinations
# ---------------------------------------------------------------------------


class TestRejections:
    def test_sanitizer_mutually_exclusive(self, small_graph):
        from repro.analysis import Sanitizer

        config = _fault_config()
        with pytest.raises(ValueError, match="sanitizer"):
            ChaosCluster(config, sanitizer=Sanitizer()).run(
                PageRank(iterations=2), small_graph,
                fault_plan=FaultPlan.parse(["crash:1@iter=1"]),
            )

    def test_centralized_placement_rejected(self, small_graph):
        config = _fault_config(placement="centralized")
        with pytest.raises(ValueError, match="centralized"):
            ChaosCluster(config).run(
                PageRank(iterations=2), small_graph,
                fault_plan=FaultPlan.parse(["crash:1@iter=1"]),
            )

    def test_invalid_plan_rejected_before_running(self, small_graph):
        config = _fault_config()
        with pytest.raises(ValueError, match="outside"):
            ChaosCluster(config).run(
                PageRank(iterations=2), small_graph,
                fault_plan=FaultPlan.parse(["crash:9@iter=1"]),
            )

    def test_empty_plan_is_a_plain_run(self, small_graph):
        config = _fault_config()
        cluster = ChaosCluster(config)
        result = cluster.run(
            PageRank(iterations=3), small_graph, fault_plan=FaultPlan()
        )
        assert cluster.last_fault_timeline is None
        baseline = ChaosCluster(config).run(
            PageRank(iterations=3), small_graph
        )
        _assert_byte_identical(result, baseline)

"""Tests for the X-Stream, Giraph and PowerGraph baselines."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, WCC
from repro.baselines import (
    GiraphConfig,
    XStreamConfig,
    grid_partition,
    partitioning_time,
    run_giraph,
    run_xstream,
)
from repro.baselines.giraph import vertex_owners
from repro.baselines.powergraph import rebalance_time
from repro.core.runtime import run_algorithm
from repro.graph import rmat_graph, to_undirected

from tests.conftest import fast_config
from tests.references import (
    reference_bfs_distances,
    reference_component_labels,
    reference_pagerank,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, seed=4)


@pytest.fixture(scope="module")
def undirected(graph):
    return to_undirected(graph)


class TestXStream:
    def test_pagerank_matches_reference(self, graph):
        result = run_xstream(PageRank(iterations=4), graph)
        assert np.allclose(
            result.values["rank"], reference_pagerank(graph, iterations=4)
        )

    def test_bfs_matches_reference(self, undirected):
        result = run_xstream(BFS(root=0), undirected)
        assert np.array_equal(
            result.values["distance"], reference_bfs_distances(undirected, 0)
        )

    def test_wcc_matches_reference(self, undirected):
        result = run_xstream(WCC(), undirected)
        assert np.array_equal(
            result.values["label"], reference_component_labels(undirected)
        )

    def test_runtime_scales_with_device_bandwidth(self, graph):
        fast = run_xstream(
            PageRank(iterations=3),
            graph,
            config=XStreamConfig(partitions=4),
        )
        from dataclasses import replace
        from repro.store.device import HDD_RAID0

        slow = run_xstream(
            PageRank(iterations=3),
            graph,
            config=XStreamConfig(device=HDD_RAID0, partitions=4),
        )
        # HDD bandwidth is half the SSD's; an I/O-bound run roughly
        # doubles.
        assert slow.runtime / fast.runtime == pytest.approx(2.0, rel=0.2)

    def test_chaos_single_machine_slower_than_xstream(self):
        """Table 1's architectural point: the client-server I/O path
        costs Chaos some single-machine performance vs direct I/O.
        Needs a streaming-dominated regime (enough chunks per phase)."""
        graph = rmat_graph(13, seed=4)
        algorithm = PageRank(iterations=3)
        config = fast_config(
            1, partitions_per_machine=2, chunk_bytes=16 * 1024
        )
        chaos = run_algorithm(algorithm, graph, config)
        xstream = run_xstream(
            PageRank(iterations=3), graph, XStreamConfig.from_cluster(config)
        )
        assert chaos.runtime > xstream.runtime
        # ... but within the paper's observed band (<= ~2.5x).
        assert chaos.runtime < 3.0 * xstream.runtime

    def test_requires_weights_when_algorithm_demands(self, graph):
        from repro.algorithms import SSSP

        with pytest.raises(ValueError, match="weight"):
            run_xstream(SSSP(root=0), graph)

    def test_iterations_recorded(self, graph):
        result = run_xstream(PageRank(iterations=4), graph)
        assert result.iterations == 4


class TestGiraph:
    def test_functional_correctness(self, graph):
        result = run_giraph(PageRank(iterations=3), graph, machines=4)
        assert np.allclose(
            result.values["rank"], reference_pagerank(graph, iterations=3)
        )

    def test_vertex_owners_deterministic_and_spread(self):
        owners = vertex_owners(10_000, 8)
        assert np.array_equal(owners, vertex_owners(10_000, 8))
        counts = np.bincount(owners, minlength=8)
        assert counts.min() > 1000

    def test_slower_than_chaos_absolute(self, graph):
        """Out-of-core Giraph is an order of magnitude slower (JVM and
        engineering overheads, Section 10.2)."""
        chaos = run_algorithm(
            PageRank(iterations=3), graph, fast_config(4)
        )
        giraph = run_giraph(PageRank(iterations=3), graph, machines=4)
        assert giraph.runtime > 3 * chaos.runtime

    def test_scaling_worse_than_chaos(self):
        """Figure 19: normalized to its own 1-machine runtime, Giraph
        scales far worse than Chaos."""
        graph = rmat_graph(12, seed=6)
        algorithm = lambda: PageRank(iterations=3)

        giraph_1 = run_giraph(algorithm(), graph, machines=1).runtime
        giraph_16 = run_giraph(algorithm(), graph, machines=16).runtime
        chaos_1 = run_algorithm(algorithm(), graph, fast_config(1)).runtime
        chaos_16 = run_algorithm(
            algorithm(), graph, fast_config(16, partitions_per_machine=1)
        ).runtime
        giraph_speedup = giraph_1 / giraph_16
        chaos_speedup = chaos_1 / chaos_16
        assert chaos_speedup > giraph_speedup

    def test_superstep_overhead_counted(self, graph):
        cheap = run_giraph(
            PageRank(iterations=3), graph, machines=2, superstep_overhead=0.0
        )
        costly = run_giraph(
            PageRank(iterations=3), graph, machines=2, superstep_overhead=5.0
        )
        assert costly.runtime - cheap.runtime == pytest.approx(15.0)


class TestPowerGraph:
    def test_grid_shape_near_square(self):
        from repro.baselines.powergraph import _grid_shape

        assert _grid_shape(16) == (4, 4)
        assert _grid_shape(32) == (4, 8)
        assert _grid_shape(7) == (1, 7)

    def test_assignment_within_machines(self, graph):
        result = grid_partition(graph, machines=16)
        assert result.assignment.min() >= 0
        assert result.assignment.max() < 16
        assert len(result.assignment) == graph.num_edges

    def test_replication_factor_reasonable(self, graph):
        """Grid partitioning bounds replicas per vertex by row+col size."""
        result = grid_partition(graph, machines=16)
        assert 1.0 <= result.replication_factor <= 8.0  # 4 + 4

    def test_edge_balance_close_to_one(self, graph):
        result = grid_partition(graph, machines=16)
        assert result.edge_balance < 1.5

    def test_partitioning_time_scales(self):
        assert partitioning_time(10**9, 32) == pytest.approx(
            10**9 / (500_000 * 32)
        )
        with pytest.raises(ValueError):
            partitioning_time(10, 0)

    def test_rebalance_vs_partitioning_ratio(self):
        """Figure 20: dynamic rebalancing costs a fraction of upfront
        partitioning."""
        graph = rmat_graph(12, seed=2)
        result = run_algorithm(
            PageRank(iterations=3),
            graph,
            fast_config(8, partitions_per_machine=1, chunk_bytes=4096),
        )
        rebalance = rebalance_time(result)
        upfront = partitioning_time(graph.num_edges, 8)
        assert rebalance < upfront

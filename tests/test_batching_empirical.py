"""Empirical validation of the batching analysis (Section 6.5).

Eq. 4's utilization ρ(m,k) = 1 − (1 − k/m)^m assumes the m·k outstanding
requests are independently and instantaneously re-placed at random — an
optimistic approximation.  A closed-loop simulation (each engine
re-issues to a fresh random store the moment a request completes, so
requests can queue behind each other at a busy store) sits somewhat
below the formula.  These tests pin down the relationship:

* the formula upper-bounds the closed-loop system;
* both are monotone in k and insensitive to m;
* the gap is bounded (< 0.15 for the paper's parameter range).

This measured gap also partially explains why the Figure 14 benchmark
achieves ~85–90% of device bandwidth where the paper quotes 97%+ —
see EXPERIMENTS.md, "Known deltas".
"""

import random

import pytest

from repro.core.batching import utilization
from repro.sim import FifoServer, Simulator


def closed_loop_utilization(m: int, k: int, horizon: float = 2000.0, seed: int = 1):
    """Mean store utilization with m engines keeping k requests in flight."""
    sim = Simulator()
    stores = [
        FifoServer(sim, bandwidth=1.0, latency=0.0, name=f"s{i}")
        for i in range(m)
    ]
    rng = random.Random(seed)

    def issue(_event=None):
        target = stores[rng.randrange(m)]
        target.service(1.0).subscribe(issue)

    for _engine in range(m):
        for _slot in range(k):
            issue()
    sim.run(until=horizon)
    return sum(s.meter.utilization(horizon) for s in stores) / m


class TestEq4AgainstClosedLoop:
    @pytest.mark.parametrize("m", [8, 32])
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_formula_upper_bounds_simulation(self, m, k):
        simulated = closed_loop_utilization(m, k)
        predicted = utilization(m, k)
        assert simulated <= predicted + 0.01
        assert predicted - simulated < 0.15

    def test_monotone_in_k(self):
        values = [closed_loop_utilization(16, k) for k in (1, 2, 3, 5)]
        assert values == sorted(values)

    def test_k5_keeps_stores_mostly_busy(self):
        """The design point: k = 5 sustains high utilization at any m."""
        for m in (8, 16, 32):
            assert closed_loop_utilization(m, 5) > 0.85

    def test_insensitive_to_cluster_size(self):
        small = closed_loop_utilization(8, 5)
        large = closed_loop_utilization(32, 5)
        assert abs(small - large) < 0.05

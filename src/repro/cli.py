"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Produce a graph (RMAT or web-like) as a binary edge list.
``run``
    Run one of the ten algorithms on a simulated Chaos cluster, from a
    generated graph or a binary edge-list file; prints the result
    summary, runtime breakdown and I/O statistics.
``capacity``
    Paper-scale capacity projection (model mode): hours, terabytes,
    aggregate bandwidth for a trillion-edge-class job.
``utilization``
    The closed-form storage-utilization table of Figure 5.
``trace-report``
    Summarize a ``--trace`` JSON file in the terminal: per-device and
    per-NIC utilization, breakdown categories, integrity counters, top
    spans, counters, the per-iteration bottleneck-attribution table and
    the slowest causal barrier chains (``--format json`` emits the same
    tables machine-readably).
``trace query``
    Query the causal message-level event DAG of a ``--trace`` file:
    ``--where`` filters events with a small expression language,
    ``--chain-of`` walks the backward causal chain of one event, and
    ``--slowest-chains N`` prints the chains that bound the barriers.
``bench``
    Run the tracked benchmark scenarios into a schema-versioned
    ``BENCH_<label>.json`` snapshot (runtime, attribution vector,
    utilization, bytes moved, checkpoint overhead per scenario), or
    diff two snapshots with per-metric tolerances (``--compare``);
    non-zero exit on regression — the CI perf gate.
``check``
    Determinism lint: run the CHX rules (:mod:`repro.analysis`) over
    source trees; non-zero exit on findings.  ``--format github`` emits
    workflow commands that annotate PR diffs.
``fuzz``
    Chaos-schedule fuzzer: sample seeded random fault schedules against
    the tracked PageRank configuration, check the recovery invariants
    (byte-identical final values, graceful degradation, bounded
    recovery), and shrink any violation to a minimal ``--inject-fault``
    reproducer file; non-zero exit on violations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from repro.algorithms import (
    BFS,
    MIS,
    SSSP,
    WCC,
    BeliefPropagation,
    Conductance,
    PageRank,
    SpMV,
    run_mcst,
    run_scc,
)
from repro.core.batching import utilization, utilization_limit
from repro.core.config import ClusterConfig
from repro.core.runtime import run_algorithm
from repro.graph.convert import to_undirected
from repro.graph.datasets import data_commons_like
from repro.graph.edgelist import read_edges, write_edges
from repro.graph.rmat import rmat_graph
from repro.graph.stats import out_degrees
from repro.net.topology import GIGE_1, GIGE_40
from repro.perf.capacity import project_capacity
from repro.perf.profiles import bfs_profile, fixed_profile
from repro.store.device import HDD_RAID0, SSD_480GB

ALGORITHMS = (
    "BFS",
    "WCC",
    "MCST",
    "MIS",
    "SSSP",
    "SCC",
    "PR",
    "Cond",
    "SpMV",
    "BP",
)

UNDIRECTED = {"BFS", "WCC", "MCST", "MIS", "SSSP"}
WEIGHTED = {"MCST", "SSSP"}

DEVICES = {"ssd": SSD_480GB, "hdd": HDD_RAID0}
NETWORKS = {"40g": GIGE_40, "1g": GIGE_1}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chaos (SOSP 2015) reproduction: scale-out graph "
        "processing from secondary storage.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a graph file")
    generate.add_argument("--kind", choices=("rmat", "web"), default="rmat")
    generate.add_argument("--scale", type=int, default=14,
                          help="RMAT scale (2^scale vertices)")
    generate.add_argument("--pages", type=int, default=100_000,
                          help="web graph page count")
    generate.add_argument("--weighted", action="store_true")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output path (binary)")

    run = commands.add_parser("run", help="run an algorithm on a cluster")
    run.add_argument("--algorithm", choices=ALGORITHMS, required=True)
    run.add_argument("--machines", type=int, default=4)
    run.add_argument("--scale", type=int, default=12,
                     help="generate an RMAT graph of this scale")
    run.add_argument("--input", help="binary edge-list file instead")
    run.add_argument("--vertices", type=int,
                     help="vertex count of the --input file")
    run.add_argument("--weighted", action="store_true",
                     help="the --input file has weights")
    run.add_argument("--iterations", type=int, default=5,
                     help="iterations for PR/BP")
    run.add_argument("--root", type=int, default=None,
                     help="BFS/SSSP root (default: highest-degree vertex)")
    run.add_argument("--chunk-kb", type=int, default=64)
    run.add_argument("--device", choices=DEVICES, default="ssd")
    run.add_argument("--network", choices=NETWORKS, default="40g")
    run.add_argument("--cores", type=int, default=16)
    run.add_argument("--alpha", type=float, default=1.0,
                     help="steal bias (0 disables stealing, inf always)")
    run.add_argument("--checkpoint", action="store_true")
    run.add_argument("--aggregate-updates", action="store_true")
    run.add_argument("--partitions-per-machine", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", action="store_true",
                     help="print the result as JSON instead of text")
    run.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace_event JSON file")
    run.add_argument("--trace-sample-interval", type=float, default=0.001,
                     metavar="SECONDS",
                     help="counter sampling period in simulated seconds "
                          "(0 disables time-series sampling)")
    run.add_argument("--trace-csv", metavar="PATH",
                     help="also dump the counter time series as CSV")
    run.add_argument("--sanitize", action="store_true",
                     help="attach the happens-before sanitizer: vector-"
                          "clock race detection over cross-machine shared "
                          "state (non-zero exit if races are found)")
    run.add_argument("--focus-from-check", action="store_true",
                     help="with --sanitize: run the static race-candidate "
                          "pass (CHX012) over src first and instrument only "
                          "the state kinds it flags")
    run.add_argument("--inject-fault", action="append", metavar="SPEC",
                     dest="inject_fault",
                     help="inject a machine fault into the simulation; "
                          "SPEC is kind:machine@trigger[,key=value...] "
                          "e.g. crash:1@iter=3  crash-restart:0@t=0.02,"
                          "down=0.01  partition:2@iter=2,for=0.05  "
                          "slow-device:1@t=0.01,factor=8,for=0.02  "
                          "msg-corrupt:1@iter=2,count=2  "
                          "chunk-bitflip:0@iter=1 — or a path to a "
                          "fault-plan file (one spec per line, # "
                          "comments), e.g. a fuzz reproducer "
                          "(repeatable; specs and files combine)")
    run.add_argument("--no-integrity", action="store_true",
                     help="disable the integrity hardening (checksums, "
                          "duplicate suppression, freshness checks) — "
                          "test hook for reproducing what byzantine "
                          "faults do to an unprotected cluster")
    run.add_argument("--verify-recovery", action="store_true",
                     help="with --inject-fault: also run an undisturbed "
                          "twin and exit non-zero unless the final vertex "
                          "values are byte-identical")
    run.add_argument("--host-profile", nargs="?", const="on",
                     choices=("on", "tracemalloc"), default=None,
                     help="measure real host wall/CPU time per engine "
                          "phase (scatter/gather/apply, chunk serialize/"
                          "deserialize, message copy); 'tracemalloc' also "
                          "records allocation deltas; prints the "
                          "host-profile report and embeds the metrics in "
                          "--trace files")
    run.add_argument("--host-json", metavar="PATH",
                     help="with --host-profile: write the host metrics "
                          "as JSON")
    run.add_argument("--host-flamegraph", metavar="PATH",
                     help="with --host-profile: write collapsed-stack "
                          "flamegraph text (machine;phase;iteration "
                          "wall-microseconds)")
    run.add_argument("--host-prometheus", metavar="PATH",
                     help="with --host-profile: write Prometheus text "
                          "exposition format")
    run.add_argument("--attribute", action="store_true",
                     help="record a trace (even without --trace) and "
                          "print the bottleneck-attribution report: "
                          "per-category time, binding resource, "
                          "utilization vs the Eq. 4 prediction, "
                          "stragglers")

    capacity = commands.add_parser(
        "capacity", help="paper-scale capacity projection (model mode)"
    )
    capacity.add_argument("--algorithm", choices=("BFS", "PR"), default="BFS")
    capacity.add_argument("--scale", type=int, default=36)
    capacity.add_argument("--machines", type=int, default=32)
    capacity.add_argument("--device", choices=DEVICES, default="hdd")
    capacity.add_argument("--iterations", type=int, default=5,
                          help="PR iterations / BFS passes")
    capacity.add_argument("--chunk-mb", type=int, default=1024,
                          help="macro-chunk size for the projection")

    util = commands.add_parser(
        "utilization", help="theoretical utilization table (Figure 5)"
    )
    util.add_argument("--max-machines", type=int, default=32)

    report = commands.add_parser(
        "trace-report", help="summarize a --trace JSON file"
    )
    report.add_argument("path", help="trace file written by run --trace")
    report.add_argument("--top", type=int, default=None,
                        help="rows to show: top spans (default 12) and, "
                             "for traces recorded with --host-profile, "
                             "hottest host phases (default 10)")
    report.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (json = every table of the "
                             "text report, machine-readable)")

    trace = commands.add_parser(
        "trace", help="query the causal event DAG of a --trace JSON file"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    query = trace_commands.add_parser(
        "query", help="filter causal events / walk causal chains"
    )
    query.add_argument("path", help="trace file written by run --trace")
    query.add_argument("--where", metavar="EXPR",
                       help="filter expression over causal events, e.g. "
                            "'cat=steal_request and machine=3 and dur>5ms' "
                            "(fields: id parent kind cat src dst machine "
                            "size epoch label phase barrier attempt trace "
                            "t t0 t1 dur; time values take s/ms/us/ns)")
    query.add_argument("--chain-of", type=int, metavar="EVENT",
                       dest="chain_of",
                       help="print the backward causal chain ending at "
                            "this event id, root first")
    query.add_argument("--slowest-chains", type=int, nargs="?", const=5,
                       metavar="N", dest="slowest_chains",
                       help="print the N slowest barrier chains "
                            "(default 5), each walked root-first")
    query.add_argument("--limit", type=int, default=50,
                       help="max events to print for --where (default 50)")
    query.add_argument("--format", choices=("text", "json"),
                       default="text", dest="fmt",
                       help="output format")
    conform = trace_commands.add_parser(
        "conform", help="replay a causal trace against the extracted "
                        "protocol model (unmodeled transitions, barrier "
                        "consensus, stuck transitions)"
    )
    conform.add_argument("path", help="trace file written by run --trace "
                                      "(or a fuzz deadlock capture)")
    conform.add_argument("--src", action="append", metavar="PATH",
                         dest="src", default=None,
                         help="source tree(s) to extract the model from "
                              "(default: src)")
    conform.add_argument("--cache-dir", metavar="DIR", default=None,
                         dest="cache_dir",
                         help="reuse the deep lint's pickled project "
                              "index cache (e.g. .chaos-cache)")
    conform.add_argument("--model-json", metavar="FILE", default=None,
                         help="also write the extracted model as JSON")
    conform.add_argument("--report-json", metavar="FILE", default=None,
                         help="also write the conformance report as JSON")
    conform.add_argument("--format", choices=("text", "json"),
                         default="text", dest="fmt",
                         help="output format")

    bench = commands.add_parser(
        "bench", help="benchmark snapshots and the perf regression gate"
    )
    bench.add_argument("--label", default="local",
                       help="snapshot label (file is BENCH_<label>.json)")
    bench.add_argument("--scenario", action="append", metavar="NAME",
                       help="run only this scenario (repeatable; "
                            "see --list)")
    bench.add_argument("--out", metavar="PATH",
                       help="snapshot output path (default: "
                            "BENCH_<label>.json in the current directory)")
    bench.add_argument("--list", action="store_true",
                       help="list the tracked scenarios and exit")
    bench.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"),
                       help="diff two snapshots instead of running; "
                            "exit 1 if NEW regresses vs BASE")
    bench.add_argument("--tolerance", action="append", metavar="METRIC=REL",
                       help="override a metric's relative tolerance for "
                            "--compare, e.g. runtime=0.10 (repeatable)")
    bench.add_argument("--host", action="store_true",
                       help="also record host metrics per scenario "
                            "(host_wall_seconds, host_cpu_seconds, "
                            "edges_per_sec); compared warn-only unless "
                            "the baseline carries host_tolerances")
    bench.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="run each scenario N times and record the "
                            "median host metric (default: 3 with --host, "
                            "1 otherwise)")

    check = commands.add_parser(
        "check", help="determinism lint (CHX rules) over source trees"
    )
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to lint (default: src)")
    check.add_argument("--format", choices=("text", "json", "github"),
                       default="text", dest="fmt",
                       help="output format (github = PR annotations)")
    check.add_argument("--rules", metavar="IDS",
                       help="comma-separated rule ids to run "
                            "(default: all CHX rules)")
    check.add_argument("--deep", action="store_true",
                       help="also run the whole-program rules CHX008-017 "
                            "(call graph, interprocedural dataflow, loop "
                            "dependence + parallel-safety)")
    check.add_argument("--stats", action="store_true",
                       help="print per-rule finding/suppression counts "
                            "(text format only; json always includes them)")
    check.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache the parsed project index for --deep, "
                            "keyed on a source-tree hash (e.g. .chaos-cache)")
    check.add_argument("--baseline", metavar="FILE", default=None,
                       help="finding ratchet: suppress the (file, rule, "
                            "fingerprint) entries recorded in FILE and "
                            "exit non-zero only on NEW findings")
    check.add_argument("--write-baseline", action="store_true",
                       help="with --baseline: (re)write FILE from the "
                            "current findings instead of checking "
                            "against it")
    check.add_argument("--kernel-report", action="store_true",
                       help="print the kernel worklist instead of lint "
                            "findings: per-(algorithm, phase) static "
                            "vectorizability, joined with --host-json "
                            "CPU shares and ranked by share x "
                            "vectorizable")
    check.add_argument("--host-json", metavar="FILE", default=None,
                       help="with --kernel-report: a host metrics JSON "
                            "written by run --host-profile --host-json")
    check.add_argument("--protocol", action="store_true",
                       help="extract the protocol state machines and "
                            "model-check small clusters instead of "
                            "linting (deadlock freedom, barrier "
                            "consensus, steal termination, lost "
                            "wakeups, epoch fencing)")
    check.add_argument("--machines", type=int, default=2,
                       help="with --protocol: cluster size to model-"
                            "check (default 2; 3 is exhaustive but "
                            "slower)")
    check.add_argument("--model-dot", metavar="FILE", default=None,
                       help="with --protocol: write the extracted "
                            "role/message graph as Graphviz DOT")
    check.add_argument("--model-json", metavar="FILE", default=None,
                       help="with --protocol: write the extracted "
                            "model as JSON")

    fuzz = commands.add_parser(
        "fuzz", help="chaos-schedule fuzzer: random fault plans vs the "
                     "recovery invariants, with shrinking"
    )
    fuzz.add_argument("--episodes", type=int, default=25,
                      help="number of random fault schedules to run")
    fuzz.add_argument("--seed", type=int, default=7,
                      help="fuzz seed: the whole campaign (schedules, "
                           "jitter, placement) is reproducible from it")
    fuzz.add_argument("--scale", type=int, default=12,
                      help="RMAT scale of the fuzzed graph")
    fuzz.add_argument("--machines", type=int, default=2)
    fuzz.add_argument("--iterations", type=int, default=3,
                      help="PageRank iterations of the fuzzed job")
    fuzz.add_argument("--max-specs", type=int, default=3,
                      help="max faults per sampled schedule")
    fuzz.add_argument("--no-integrity", action="store_true",
                      help="fuzz the unhardened cluster (checksums, "
                           "dedup, freshness checks off) — the fuzzer "
                           "should then find, shrink and emit "
                           "reproducers for corruption violations")
    fuzz.add_argument("--out-dir", default=".",
                      help="directory for shrunk reproducer plan files")
    fuzz.add_argument("--json", metavar="PATH", default=None,
                      help="write the full campaign report as JSON")

    return parser


def _make_algorithm(name: str, args, graph):
    if name == "BFS" or name == "SSSP":
        root = args.root
        if root is None:
            root = int(np.argmax(out_degrees(graph)))
        return BFS(root=root) if name == "BFS" else SSSP(root=root)
    if name == "WCC":
        return WCC()
    if name == "MIS":
        return MIS()
    if name == "PR":
        return PageRank(iterations=args.iterations)
    if name == "Cond":
        return Conductance()
    if name == "SpMV":
        return SpMV(seed=args.seed)
    if name == "BP":
        return BeliefPropagation(iterations=args.iterations)
    raise ValueError(name)


def _load_graph(args):
    if args.input:
        if args.vertices is None:
            raise SystemExit("--input requires --vertices")
        graph = read_edges(args.input, args.vertices, weighted=args.weighted)
    else:
        weighted = args.weighted or args.algorithm in WEIGHTED
        graph = rmat_graph(args.scale, seed=args.seed, weighted=weighted)
    if args.algorithm in UNDIRECTED:
        graph = to_undirected(graph)
    return graph


def _command_generate(args) -> int:
    if args.kind == "rmat":
        graph = rmat_graph(args.scale, seed=args.seed, weighted=args.weighted)
    else:
        graph = data_commons_like(args.pages, seed=args.seed)
    size = write_edges(graph, args.out)
    print(f"wrote {graph} to {args.out} ({size / 1e6:.1f} MB)")
    return 0


def _command_run(args) -> int:
    graph = _load_graph(args)
    config = ClusterConfig(
        machines=args.machines,
        cores=args.cores,
        device=DEVICES[args.device],
        network=NETWORKS[args.network],
        chunk_bytes=args.chunk_kb * 1024,
        steal_alpha=args.alpha,
        checkpointing=args.checkpoint,
        aggregate_updates=args.aggregate_updates,
        partitions_per_machine=args.partitions_per_machine,
        seed=args.seed,
        integrity_checks=not args.no_integrity,
    )

    tracer = None
    if args.trace or args.trace_csv:
        from repro.obs import Tracer

        interval = args.trace_sample_interval
        tracer = Tracer(sample_interval=interval if interval > 0 else None)
    elif args.attribute:
        from repro.obs import Tracer

        # Attribution only needs spans, not counter time series.
        tracer = Tracer(sample_interval=None)

    host = None
    if args.host_profile:
        if args.algorithm in ("MCST", "SCC"):
            raise SystemExit(
                f"--host-profile does not support {args.algorithm}: it is "
                f"a multi-run driver, not a single GAS job"
            )
        from repro.obs import HostProfiler

        host = HostProfiler(
            trace_allocations=args.host_profile == "tracemalloc"
        )
    elif args.host_json or args.host_flamegraph or args.host_prometheus:
        raise SystemExit(
            "--host-json/--host-flamegraph/--host-prometheus require "
            "--host-profile"
        )

    sanitizer = None
    if args.sanitize:
        from repro.analysis import Sanitizer

        sanitizer = Sanitizer()
        if args.focus_from_check:
            from repro.analysis.flow import collect_focus_kinds

            kinds = collect_focus_kinds(["src"])
            sanitizer.set_focus(kinds)
            if not args.json:
                print(
                    f"sanitizer focus (from CHX012 candidates): "
                    f"{', '.join(kinds) if kinds else '(none)'}"
                )
    elif args.focus_from_check:
        raise SystemExit("--focus-from-check requires --sanitize")

    if not args.json:
        print(f"graph: {graph}")
        print(
            f"cluster: {config.machines} machines, {config.device.name}, "
            f"{config.network.name}, "
            f"window {config.effective_request_window()}"
        )

    fault_plan = None
    if args.inject_fault:
        if args.algorithm in ("MCST", "SCC"):
            raise SystemExit(
                f"--inject-fault does not support {args.algorithm}: it is "
                f"a multi-run driver, not a single GAS job"
            )
        if args.sanitize:
            raise SystemExit(
                "--inject-fault and --sanitize are mutually exclusive"
            )
        import os

        from repro.faults import FaultPlan, parse_fault_spec

        try:
            specs = []
            for item in args.inject_fault:
                if os.path.isfile(item):
                    # A fault-plan file (e.g. a fuzz reproducer): one
                    # spec per line, '#' starts a comment.
                    specs.extend(FaultPlan.load(item).specs)
                else:
                    specs.append(parse_fault_spec(item))
            fault_plan = FaultPlan(specs=tuple(specs))
            fault_plan.validate(config)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bad --inject-fault: {error}")

    timeline = None
    if args.algorithm == "MCST":
        result = run_mcst(graph, config, tracer=tracer, sanitizer=sanitizer)
    elif args.algorithm == "SCC":
        result = run_scc(graph, config, tracer=tracer, sanitizer=sanitizer)
    else:
        algorithm = _make_algorithm(args.algorithm, args, graph)
        from repro.core.runtime import ChaosCluster

        if host is not None:
            # Stable join keys: check --kernel-report joins its static
            # kernel table on job.algorithm + phase names.
            host.registry.job = {
                "algorithm": algorithm.name,
                "cli_name": args.algorithm,
                "machines": args.machines,
                "seed": args.seed,
            }
        cluster = ChaosCluster(
            config, tracer=tracer, sanitizer=sanitizer, host=host
        )
        from repro.faults.diagnosis import UnrecoverableJobError

        try:
            result = cluster.run(algorithm, graph, fault_plan=fault_plan)
        except UnrecoverableJobError as error:
            # Graceful degradation: the cluster refused to resume from
            # damaged state.  Exit 3 so chaos campaigns can tell a clean
            # refusal apart from a crash (1/2) or success (0).
            print(error.diagnosis.render(), file=sys.stderr)
            return 3
        timeline = cluster.last_fault_timeline

    host_doc = None
    if host is not None:
        host_doc = host.finalize().to_dict()

    recovery_mismatch = False
    if args.verify_recovery:
        if fault_plan is None:
            raise SystemExit("--verify-recovery requires --inject-fault")
        twin = run_algorithm(
            _make_algorithm(args.algorithm, args, graph), graph, config
        )
        recovery_mismatch = set(result.values) != set(twin.values) or any(
            not np.array_equal(result.values[name], twin.values[name])
            for name in result.values
        )

    if tracer is not None:
        from repro.obs import write_chrome_trace, write_counters_csv

        if args.trace:
            size = write_chrome_trace(tracer, args.trace, host_metrics=host_doc)
            if not args.json:
                print(f"trace: {len(tracer.events)} events -> "
                      f"{args.trace} ({size / 1e3:.1f} kB)")
        if args.trace_csv:
            write_counters_csv(tracer, args.trace_csv)
            if not args.json:
                print(f"counters: {len(tracer.registry.names())} series -> "
                      f"{args.trace_csv}")

    if host_doc is not None:
        import json as json_module

        from repro.obs import to_collapsed_stack, to_prometheus

        if args.host_json:
            with open(args.host_json, "w") as handle:
                json_module.dump(host_doc, handle, sort_keys=True, indent=2)
                handle.write("\n")
            if not args.json:
                print(f"host metrics: {len(host_doc['phases'])} phase "
                      f"record(s) -> {args.host_json}")
        if args.host_flamegraph:
            with open(args.host_flamegraph, "w") as handle:
                handle.write(to_collapsed_stack(host_doc))
            if not args.json:
                print(f"host flamegraph: -> {args.host_flamegraph}")
        if args.host_prometheus:
            with open(args.host_prometheus, "w") as handle:
                handle.write(
                    to_prometheus(host_doc, integrity=result.integrity)
                )
            if not args.json:
                print(f"host prometheus: -> {args.host_prometheus}")

    attribution = None
    if args.attribute:
        from repro.obs.critpath import analyze_tracer

        attribution = analyze_tracer(tracer)

    sanitize_failed = False
    if sanitizer is not None:
        sanitize_failed = bool(sanitizer.races)
    failed = sanitize_failed or recovery_mismatch

    if args.json:
        if attribution is not None or host_doc is not None:
            import json as json_module

            payload = result.to_dict()
            if attribution is not None:
                payload["attribution"] = attribution.to_dict()
            if host_doc is not None:
                payload["host"] = host_doc
            print(json_module.dumps(payload, sort_keys=True, indent=2))
        else:
            print(result.to_json(indent=2))
        if sanitizer is not None:
            print(sanitizer.summary(), file=sys.stderr)
        if timeline is not None:
            print(timeline.summary(), file=sys.stderr)
        if args.verify_recovery:
            verdict = "MISMATCH" if recovery_mismatch else "identical"
            print(f"recovery verification: {verdict}", file=sys.stderr)
        return 1 if failed else 0

    print()
    print(result.summary())
    print(f"  preprocessing: {result.preprocessing_seconds:.3f}s")
    print(f"  storage I/O:   {result.storage_bytes / 1e6:.1f} MB")
    print(f"  network:       {result.network_bytes / 1e6:.1f} MB")
    print(
        f"  steals:        {result.steals_accepted} accepted, "
        f"{result.steals_rejected} rejected"
    )
    print("  breakdown:")
    for category, fraction in result.total_breakdown().fractions().items():
        print(f"    {category:<11s} {fraction:6.1%}")
    if timeline is not None:
        print()
        print("fault timeline:")
        for line in timeline.summary().splitlines():
            print(f"  {line}")
    if args.verify_recovery:
        verdict = (
            "MISMATCH vs undisturbed run"
            if recovery_mismatch
            else "final values identical to undisturbed run"
        )
        print(f"  recovery verification: {verdict}")
    if sanitizer is not None:
        print()
        print(sanitizer.summary())
    if attribution is not None:
        from repro.obs.critpath import format_attribution_report

        print()
        print(format_attribution_report(attribution))
    if host_doc is not None:
        from repro.obs import format_host_report

        print()
        print(format_host_report(host_doc))
    return 1 if failed else 0


def _command_capacity(args) -> int:
    config = ClusterConfig(
        machines=args.machines,
        device=DEVICES[args.device],
        network=GIGE_40,
        chunk_bytes=args.chunk_mb * 1024 * 1024,
        partitions_per_machine=1,
    )
    if args.algorithm == "BFS":
        projection = project_capacity(
            BFS(), bfs_profile(13), scale=args.scale,
            machines=args.machines, config=config,
        )
    else:
        projection = project_capacity(
            PageRank(iterations=args.iterations),
            fixed_profile(args.iterations),
            scale=args.scale,
            machines=args.machines,
            config=config,
        )
    print(projection.summary())
    return 0


def _command_utilization(args) -> int:
    machine_counts = [m for m in (5, 10, 15, 20, 25, 30, 32)
                      if m <= args.max_machines] or [args.max_machines]
    print("rho(m, k) = 1 - (1 - k/m)^m        (Figure 5)")
    header = "k\\m " + "".join(f"{m:>9d}" for m in machine_counts) + "     limit"
    print(header)
    for k in (1, 2, 3, 5):
        row = f"k={k:<2d}" + "".join(
            f"{utilization(m, k):>9.4f}" for m in machine_counts
        )
        print(row + f"{utilization_limit(k):>10.4f}")
    return 0


def _command_trace_report(args) -> int:
    import json as json_module

    from repro.obs import format_trace_report, summarize_trace
    from repro.obs.critpath import (
        AttributionError,
        analyze_chrome_trace,
        format_iteration_table,
    )
    from repro.obs.report import load_trace, trace_report_json

    span_top = args.top if args.top is not None else 12
    host_top = args.top if args.top is not None else 10
    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read trace {args.path!r}: {error}")
    if args.fmt == "json":
        print(
            json_module.dumps(
                trace_report_json(trace, top=span_top),
                sort_keys=True,
                indent=2,
            )
        )
        return 0
    summary = summarize_trace(trace)
    print(format_trace_report(summary, top=span_top))
    try:
        attribution = analyze_chrome_trace(trace)
    except AttributionError:
        attribution = None  # spanless trace (counters only)
    if attribution is not None:
        print()
        for line in format_iteration_table(attribution):
            print(line)
        print(
            f"binding resource: {attribution.bottleneck} "
            f"(dominant category: {attribution.dominant_category})"
        )
    from repro.obs import causal as causal_mod

    try:
        causal_events = causal_mod.causal_events_from_trace(trace)
    except causal_mod.CausalError:
        causal_events = None  # pre-causal trace
    if causal_events:
        chains = causal_mod.slowest_chains(causal_events, span_top)
        if chains:
            print()
            print(f"slowest barrier chains (top {len(chains)}):")
            for line in causal_mod.format_chain_table(chains).splitlines():
                print(f"  {line}")
        if attribution is not None:
            checks = causal_mod.cross_check(causal_events, attribution)
            bad = [record for record in checks if not record["ok"]]
            if checks:
                print(
                    f"causal x critpath cross-check: "
                    f"{len(checks) - len(bad)}/{len(checks)} barrier(s) "
                    f"reconciled"
                    + ("" if not bad else "  MISMATCH")
                )
    host_doc = trace.get("hostMetrics")
    if host_doc is not None:
        from repro.obs import format_host_report

        # The sim-to-host skew table: simulated span seconds next to the
        # real host cost of the same phase (run --host-profile --trace).
        sim_spans = {
            name: stats.total for name, stats in summary.spans.items()
        }
        print()
        print(format_host_report(host_doc, sim_spans=sim_spans, top=host_top))
    return 0


def _command_trace(args) -> int:
    if args.trace_command == "conform":
        return _command_trace_conform(args)
    return _command_trace_query(args)


def _command_trace_conform(args) -> int:
    import json as json_module

    from repro.analysis.flow import DeepEngine
    from repro.analysis.protocol import conform, extract_model
    from repro.obs import causal as causal_mod
    from repro.obs.report import load_trace

    try:
        trace = load_trace(args.path)
        events = causal_mod.causal_events_from_trace(trace)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read trace {args.path!r}: {error}")
    except causal_mod.CausalError as error:
        raise SystemExit(f"trace conform: {error}")

    sources = args.src if args.src else ["src"]
    # Shares the deep lint's pickled project index (.chaos-cache).
    index, _ = DeepEngine().build_index(
        sources, cache_dir=args.cache_dir
    )
    model = extract_model(index)
    report = conform(events, model)

    if args.model_json:
        with open(args.model_json, "w", encoding="utf-8") as handle:
            json_module.dump(model.to_dict(), handle, indent=2,
                             sort_keys=True)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2,
                             sort_keys=True)
    if args.fmt == "json":
        print(json_module.dumps(report.to_dict(), indent=2,
                                sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def _command_trace_query(args) -> int:
    import json as json_module

    from repro.obs import causal as causal_mod
    from repro.obs.report import load_trace

    try:
        trace = load_trace(args.path)
        events = causal_mod.causal_events_from_trace(trace)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read trace {args.path!r}: {error}")

    wants = [
        bool(args.where),
        args.chain_of is not None,
        args.slowest_chains is not None,
    ]
    if sum(wants) != 1:
        raise SystemExit(
            "trace query: pass exactly one of --where, --chain-of, "
            "--slowest-chains"
        )

    try:
        if args.where:
            matches = causal_mod.filter_events(events, args.where)
            if args.fmt == "json":
                print(causal_mod.dumps_events(matches[: args.limit]))
            else:
                for event in matches[: args.limit]:
                    print(causal_mod.format_event(event))
                tail = len(matches) - args.limit
                if tail > 0:
                    print(f"... {tail} more (raise --limit)")
                print(
                    f"{len(matches)} event(s) matched of {len(events)}"
                )
            return 0
        if args.chain_of is not None:
            chain = causal_mod.chain_of(events, args.chain_of)
            if args.fmt == "json":
                print(causal_mod.dumps_events(chain))
            else:
                for event in chain:
                    print(causal_mod.format_event(event))
            return 0
        chains = causal_mod.slowest_chains(events, args.slowest_chains)
        if args.fmt == "json":
            print(
                json_module.dumps(
                    [chain.to_dict() for chain in chains],
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        else:
            if not chains:
                print("no barrier chains in trace")
            for index, chain in enumerate(chains):
                if index:
                    print()
                print(causal_mod.format_chain(chain))
        return 0
    except causal_mod.CausalError as error:
        raise SystemExit(f"trace query: {error}")


def _parse_tolerances(specs):
    from repro.obs.bench import METRIC_POLICIES

    tolerances = {}
    for spec in specs or ():
        metric, _, value = spec.partition("=")
        if metric not in METRIC_POLICIES:
            raise SystemExit(
                f"unknown metric {metric!r} in --tolerance (known: "
                f"{', '.join(sorted(METRIC_POLICIES))})"
            )
        try:
            tolerances[metric] = float(value)
        except ValueError:
            raise SystemExit(f"bad --tolerance value {spec!r}")
    return tolerances


def _command_bench(args) -> int:
    from repro.obs import bench

    if args.repeats is not None and (args.list or args.compare):
        print(
            "bench: --repeats only applies when running scenarios",
            file=sys.stderr,
        )
        return 2
    if args.repeats is not None and args.repeats < 1:
        print("bench: --repeats must be >= 1", file=sys.stderr)
        return 2

    if args.list:
        for scenario in bench.DEFAULT_SCENARIOS:
            print(f"{scenario.name:<16}{scenario.description}")
        return 0

    if args.compare:
        run_only = [
            flag
            for flag, given in (
                ("--scenario", bool(args.scenario)),
                ("--label", args.label != "local"),
                ("--out", bool(args.out)),
                ("--host", args.host),
            )
            if given
        ]
        if run_only:
            raise SystemExit(
                f"bench: {', '.join(run_only)} only applies when running "
                "scenarios and would be ignored with --compare"
            )
        tolerances = _parse_tolerances(args.tolerance)
        try:
            base = bench.load_snapshot(args.compare[0])
            new = bench.load_snapshot(args.compare[1])
            comparison = bench.compare_snapshots(base, new, tolerances)
        except (OSError, ValueError) as error:
            print(f"bench compare error: {error}", file=sys.stderr)
            return 2
        for line in comparison.lines():
            print(line)
        verdict = "PASS" if comparison.ok else "FAIL"
        print(
            f"{verdict}: {len(comparison.regressions)} regression(s), "
            f"{len(comparison.improvements)} improvement(s)"
        )
        return 0 if comparison.ok else 1

    if args.tolerance:
        raise SystemExit(
            "bench: --tolerance only applies with --compare"
        )
    repeats = args.repeats if args.repeats is not None else (
        3 if args.host else 1
    )
    try:
        snapshot = bench.run_scenarios(
            args.scenario,
            label=args.label,
            progress=print,
            host=args.host,
            repeats=repeats,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    out = args.out or bench.snapshot_path(args.label)
    size = bench.write_snapshot(snapshot, out)
    print(
        f"wrote {len(snapshot['scenarios'])} scenario(s) -> {out} "
        f"({size / 1e3:.1f} kB)"
    )
    return 0


def _rule_stats(result) -> dict:
    """Per-rule finding/suppression counts for --stats and json output."""
    stats: dict = {}
    for finding in result.findings:
        entry = stats.setdefault(finding.rule_id, {"findings": 0, "suppressed": 0})
        entry["findings"] += 1
    for finding in result.suppressed:
        entry = stats.setdefault(finding.rule_id, {"findings": 0, "suppressed": 0})
        entry["suppressed"] += 1
    return dict(sorted(stats.items()))


def _command_check_kernel_report(args) -> int:
    import json as json_module

    from repro.analysis.flow.kernels import (
        build_kernel_report,
        check_kernel_report_schema,
        format_kernel_report,
        load_host_doc,
    )

    host_doc = None
    if args.host_json:
        from repro.obs.host import check_host_schema

        try:
            host_doc = load_host_doc(args.host_json)
        except (OSError, ValueError) as error:
            print(f"--host-json {args.host_json}: {error}", file=sys.stderr)
            return 2
        errors = check_host_schema(host_doc)
        if errors:
            for error in errors:
                print(f"--host-json {args.host_json}: {error}",
                      file=sys.stderr)
            return 2

    doc = build_kernel_report(
        args.paths, host_doc=host_doc, host_source=args.host_json
    )
    errors = check_kernel_report_schema(doc)
    if errors:  # internal invariant: the builder emits its own schema
        for error in errors:
            print(f"kernel report schema: {error}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(json_module.dumps(doc, indent=2))
    else:
        print(format_kernel_report(doc))
    return 0


def _command_check_protocol(args) -> int:
    import json as json_module

    from repro.analysis.flow import DeepEngine
    from repro.analysis.protocol import check_protocol, extract_model

    if not 1 <= args.machines <= 4:
        print("--machines must be in [1, 4] (the state space is "
              "exponential)", file=sys.stderr)
        return 2
    # Shares the deep lint's pickled project index (.chaos-cache).
    index, _ = DeepEngine().build_index(
        args.paths, cache_dir=args.cache_dir
    )
    model = extract_model(index)
    result = check_protocol(model, machines=args.machines)

    if args.model_dot:
        with open(args.model_dot, "w", encoding="utf-8") as handle:
            handle.write(model.to_dot())
    if args.model_json:
        with open(args.model_json, "w", encoding="utf-8") as handle:
            json_module.dump(model.to_dict(), handle, indent=2,
                             sort_keys=True)
    if args.fmt == "json":
        print(json_module.dumps(
            {"model": model.to_dict(), "check": result.to_dict()},
            indent=2, sort_keys=True,
        ))
        return 0 if result.ok else 1
    stats = model.stats()
    print(
        f"protocol model: {stats['roles']} role(s), {stats['sends']} "
        f"send site(s), {stats['receives']} receive loop(s), "
        f"{stats['barriers']} barrier op(s), {stats['kinds']} message "
        f"kind(s)"
    )
    for name in sorted(model.roles):
        role = model.roles[name]
        if not (role.sends or role.receives or role.barriers):
            continue
        services = ",".join(role.services) or "-"
        print(
            f"  role {name} [{services}]: {len(role.sends)} send(s), "
            f"{len(role.receives)} receive loop(s), "
            f"{len(role.barriers)} barrier op(s)"
        )
    print(result.format_text())
    return 0 if result.ok else 1


def _command_check(args) -> int:
    import json as json_module
    import time

    from repro.analysis import (
        LintEngine,
        default_rules,
        format_github,
        format_json,
        format_text,
    )
    from repro.analysis.flow import DeepEngine, default_deep_rules

    if args.protocol:
        return _command_check_protocol(args)
    if args.kernel_report:
        return _command_check_kernel_report(args)
    if args.host_json:
        print("--host-json requires --kernel-report", file=sys.stderr)
        return 2
    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    wall_start = time.perf_counter()
    local_rules = default_rules()
    deep_rules = default_deep_rules() if args.deep else []
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",")
                  if rule_id.strip()}
        known = {rule.rule_id for rule in local_rules} | {
            rule.rule_id for rule in default_deep_rules()
        }
        unknown = wanted - known
        if unknown:
            print(
                f"unknown rule ids: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        local_rules = [r for r in local_rules if r.rule_id in wanted]
        deep_rules = [r for r in deep_rules if r.rule_id in wanted]
        deep_only = {r.rule_id for r in default_deep_rules()}
        if not args.deep and wanted & deep_only:
            print(
                f"note: {', '.join(sorted(wanted & deep_only))} are deep "
                f"rules; pass --deep to run them",
                file=sys.stderr,
            )

    engine = LintEngine(rules=local_rules)
    result = engine.check_paths(args.paths) if local_rules else None

    deep_result = None
    if args.deep and (deep_rules or not args.rules):
        deep_engine = DeepEngine(rules=deep_rules)
        deep_result = deep_engine.check_paths(
            args.paths, cache_dir=args.cache_dir
        )
        if result is None:
            combined = deep_result.result
        else:
            combined = result
            combined.findings.extend(deep_result.result.findings)
            combined.suppressed.extend(deep_result.result.suppressed)
            combined.findings.sort()
            combined.suppressed.sort()
    else:
        combined = result
    if combined is None:  # --rules selected only deep ids without --deep
        from repro.analysis import LintResult

        combined = LintResult()

    baseline_info = None
    if args.baseline and args.write_baseline:
        from repro.analysis.baseline import write_baseline

        count = write_baseline(combined.findings, args.baseline)
        print(
            f"baseline: {count} entr{'y' if count == 1 else 'ies'} "
            f"({len(combined.findings)} finding(s)) -> {args.baseline}",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        from repro.analysis.baseline import (
            baseline_stats,
            load_baseline,
            split_new,
        )

        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"--baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
        baseline_info = baseline_stats(combined.findings, entries)
        new, grandfathered = split_new(combined.findings, entries)
        combined.findings = new
        combined.suppressed.extend(grandfathered)
        combined.suppressed.sort()

    wall_seconds = time.perf_counter() - wall_start

    if args.fmt == "json":
        document = json_module.loads(
            format_json(combined.findings, suppressed=len(combined.suppressed))
        )
        document["rule_stats"] = _rule_stats(combined)
        document["analysis_wall_seconds"] = round(wall_seconds, 4)
        if baseline_info is not None:
            document["baseline"] = dict(baseline_info, file=args.baseline)
        if deep_result is not None:
            document["deep"] = {
                "race_candidates": [
                    c.to_dict() for c in deep_result.candidates
                ],
                "call_graph": deep_result.resolution,
                "cache_hit": deep_result.cache_hit,
            }
        print(json_module.dumps(document, indent=2))
    elif args.fmt == "github":
        output = format_github(combined.findings)
        if output:
            print(output)
    else:
        output = format_text(combined.findings)
        if output:
            print(output)
        tail = (
            f", {baseline_info['matched']} grandfathered "
            f"(baseline: {args.baseline})"
            if baseline_info is not None
            else ""
        )
        print(
            f"{len(combined.findings)} finding(s), "
            f"{len(combined.suppressed)} suppressed, "
            f"{combined.files_checked} file(s) checked{tail}",
            file=sys.stderr,
        )
        if args.stats:
            for rule_id, entry in _rule_stats(combined).items():
                print(
                    f"  {rule_id}: {entry['findings']} finding(s), "
                    f"{entry['suppressed']} suppressed",
                    file=sys.stderr,
                )
            print(
                f"  analysis wall time: {wall_seconds:.2f}s",
                file=sys.stderr,
            )
        if deep_result is not None:
            fraction = deep_result.resolution.get(
                "project_resolution_fraction", 0.0
            )
            print(
                f"deep: {len(deep_result.candidates)} race candidate(s), "
                f"call-graph resolution {fraction:.1%}"
                + (" (cached index)" if deep_result.cache_hit else ""),
                file=sys.stderr,
            )
    return 1 if combined.findings else 0


def _command_fuzz(args) -> int:
    import json as json_module
    import os

    from repro.faults.fuzz import (
        OUTCOME_DEADLOCK,
        VIOLATION_OUTCOMES,
        ChaosFuzzer,
        write_reproducer,
    )
    from repro.net.topology import GIGE_40_BENCH
    from repro.store.device import SSD_BENCH

    # Mirrors the tracked pr_m2 bench scenario, plus checkpointing and
    # replication so every fault kind (including ckpt-corrupt) is in
    # scope for the generator.
    config = ClusterConfig(
        machines=args.machines,
        device=SSD_BENCH,
        network=GIGE_40_BENCH,
        chunk_bytes=4096,
        batch_factor=8,
        partitions_per_machine=1,
        checkpointing=True,
        vertex_replicas=2,
        seed=1,
        integrity_checks=not args.no_integrity,
    )
    graph = rmat_graph(args.scale, seed=1)
    print(
        f"fuzz: PageRank x{args.iterations} on {graph}, "
        f"{config.machines} machines, integrity "
        f"{'OFF' if args.no_integrity else 'on'}, "
        f"{args.episodes} episode(s), seed {args.seed}"
    )

    def progress(episode) -> None:
        marker = "!!" if episode.outcome in VIOLATION_OUTCOMES else "  "
        plan_text = "; ".join(s.describe() for s in episode.plan.specs)
        tail = (
            f" — {episode.detail}"
            if episode.detail and episode.outcome != "ok"
            else ""
        )
        print(
            f"{marker} episode {episode.index:>3}: "
            f"{episode.outcome:<18} {plan_text}{tail}"
        )

    from repro.algorithms import PageRank as _PageRank

    fuzzer = ChaosFuzzer(
        lambda: _PageRank(iterations=args.iterations),
        graph,
        config,
        seed=args.seed,
        max_specs=args.max_specs,
        max_iteration=max(0, args.iterations - 1),
        progress=progress,
    )
    report = fuzzer.run_campaign(args.episodes)
    print()
    print(report.summary())
    if report.violations:
        os.makedirs(args.out_dir, exist_ok=True)
        for violation in report.violations:
            path = os.path.join(
                args.out_dir,
                f"fuzz-repro-s{args.seed}-e{violation.episode.index}.faults",
            )
            write_reproducer(path, violation, args.seed, config)
            print(f"reproducer -> {path}")
            if OUTCOME_DEADLOCK in (
                violation.episode.outcome, violation.shrunk_outcome
            ):
                # The causal trace of the wedged run, written next to
                # the reproducer: `repro trace conform <trace>` names
                # the stuck transition.
                trace_path = path[: -len(".faults")] + ".trace.json"
                fuzzer.capture_trace(violation.shrunk, trace_path)
                print(f"deadlock causal trace -> {trace_path}")
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(
                report.to_dict(), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(f"episode report -> {args.json}")
    return 0 if report.ok else 1


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "run": _command_run,
        "capacity": _command_capacity,
        "utilization": _command_utilization,
        "trace-report": _command_trace_report,
        "trace": _command_trace,
        "bench": _command_bench,
        "check": _command_check,
        "fuzz": _command_fuzz,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved Unix filter.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

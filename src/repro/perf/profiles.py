"""Activity profiles: per-iteration update volumes for model-mode runs.

X-Stream-style engines stream the *entire* edge set every scatter phase;
what varies per iteration is how many updates each streamed edge
produces.  An :class:`ActivityProfile` records exactly that — the
updates-per-edge-streamed factor for each iteration — which is all the
phantom engine needs to reproduce a workload's I/O pattern at any graph
scale.

Profiles come from two sources:

* :func:`extract_profile` runs a workload *functionally* on a small
  graph and reads the factors off the recorded iteration statistics
  (trace-driven scaling);
* analytic constructors (:func:`fixed_profile`, :func:`bfs_profile`)
  for canonical shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class ActivityProfile:
    """Updates produced per edge streamed, for each iteration."""

    update_factors: tuple
    name: str = "profile"

    def __post_init__(self):
        if not self.update_factors:
            raise ValueError("profile needs at least one iteration")
        if any(f < 0 for f in self.update_factors):
            raise ValueError("update factors must be non-negative")

    @property
    def iterations(self) -> int:
        return len(self.update_factors)

    def update_factor(self, iteration: int) -> float:
        if iteration >= self.iterations:
            return 0.0
        return self.update_factors[iteration]

    def total_update_factor(self) -> float:
        """Total updates over the whole run, per edge of the graph."""
        return float(sum(self.update_factors))

    def stretched(self, iterations: int, name: Optional[str] = None) -> "ActivityProfile":
        """Resample the profile to a different iteration count.

        BFS-like frontier curves keep their bell shape but widen with
        graph diameter; stretching a small-graph profile to the expected
        iteration count of a larger graph preserves the total volume.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        old = np.asarray(self.update_factors, dtype=np.float64)
        if iterations == len(old):
            return self
        positions = np.linspace(0, len(old) - 1, iterations)
        resampled = np.interp(positions, np.arange(len(old)), old)
        total_old = old.sum()
        total_new = resampled.sum()
        if total_new > 0:
            resampled *= total_old / total_new
        return ActivityProfile(
            update_factors=tuple(resampled),
            name=name or f"{self.name}-stretched{iterations}",
        )


def fixed_profile(
    iterations: int, update_factor: float = 1.0, name: str = "fixed"
) -> ActivityProfile:
    """Constant activity: PR / SpMV / BP-style full-activity iterations."""
    return ActivityProfile(
        update_factors=tuple([update_factor] * iterations), name=name
    )


def bfs_profile(iterations: int = 13, name: str = "bfs") -> ActivityProfile:
    """Canonical BFS frontier curve on a low-diameter power-law graph.

    The frontier explodes over the first few levels, peaks, and decays
    into a long tail; the total update volume over the run is one update
    per edge (each edge proposes a parent exactly once in a connected
    graph).  The RMAT-36 run of Section 9.3 performed ~13 passes.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    # Log-normal-ish bell over iterations, normalized to sum to 1.
    positions = np.arange(iterations, dtype=np.float64)
    peak = max(1.0, iterations / 3.0)
    curve = np.exp(-0.5 * ((np.log(positions + 1) - np.log(peak)) / 0.6) ** 2)
    curve /= curve.sum()
    return ActivityProfile(update_factors=tuple(curve), name=name)


def extract_profile(result, name: Optional[str] = None) -> ActivityProfile:
    """Derive a profile from a functional run's iteration statistics.

    ``result`` is a :class:`repro.core.metrics.JobResult` from a data-
    mode run.  Factor = updates produced / edges streamed per iteration.
    """
    factors: List[float] = []
    for stats in result.iteration_stats:
        if stats.edges_streamed > 0:
            factors.append(stats.updates_produced / stats.edges_streamed)
        else:
            factors.append(0.0)
    if not factors:
        factors = [0.0]
    return ActivityProfile(
        update_factors=tuple(factors),
        name=name or f"{result.algorithm}-trace",
    )

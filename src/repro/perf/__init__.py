"""Performance models: activity profiles and capacity projections.

Supports the paper-scale experiments that cannot be materialized
(Section 9.3's RMAT-36, a trillion edges / 16 TB of input): workload
*activity profiles* extracted from functional runs on small graphs drive
phantom (model-mode) executions of the full engine at any scale.
"""

from repro.perf.capacity import CapacityProjection, project_capacity
from repro.perf.profiles import (
    ActivityProfile,
    bfs_profile,
    extract_profile,
    fixed_profile,
)

__all__ = [
    "ActivityProfile",
    "CapacityProjection",
    "bfs_profile",
    "extract_profile",
    "fixed_profile",
    "project_capacity",
]

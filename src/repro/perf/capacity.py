"""Capacity-scaling projections (Section 9.3).

The paper's capacity milestone: RMAT-36 — 2^36 ≈ 69 billion vertices
(the paper rounds its vertex accounting to "250 billion" including the
sparse id space) and 1 trillion edges, 16 TB of input on the cluster's
HDDs.  BFS finishes "in a little over 9 hours" reading ~214 TB; 5
iterations of PageRank take ~19 hours and ~395 TB; the Chaos store
sustains ~7 GB/s aggregate from 64 spindles.

These runs are phantom (model-mode) executions of the full engine: the
identical scheduling, batching and stealing code paths run, but chunks
carry sizes only.  To keep the event count tractable the projection uses
macro-chunks (256 MB instead of 4 MB); at HDD service times the per-
chunk latency is negligible either way, so the bandwidth math is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm
from repro.core.metrics import JobResult
from repro.core.runtime import ChaosCluster, GraphSpec
from repro.net.topology import GIGE_40
from repro.perf.profiles import ActivityProfile
from repro.store.device import HDD_RAID0

#: Default macro-chunk size for projections (see module docstring).
MACRO_CHUNK_BYTES = 256 * 1024 * 1024


@dataclass
class CapacityProjection:
    """Summary of a capacity-scale phantom run."""

    algorithm: str
    machines: int
    runtime_hours: float
    total_io_terabytes: float
    aggregate_bandwidth_gbps: float
    iterations: int
    result: JobResult

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.runtime_hours:.2f} h, "
            f"{self.total_io_terabytes:.0f} TB I/O, "
            f"{self.aggregate_bandwidth_gbps:.1f} GB/s aggregate "
            f"({self.iterations} iterations on {self.machines} machines)"
        )


def project_capacity(
    algorithm: GasAlgorithm,
    profile: ActivityProfile,
    scale: int = 36,
    machines: int = 32,
    config: Optional[ClusterConfig] = None,
) -> CapacityProjection:
    """Run a paper-scale phantom job and summarize it in paper units."""
    if config is None:
        config = ClusterConfig(
            machines=machines,
            device=HDD_RAID0,
            network=GIGE_40,
            chunk_bytes=MACRO_CHUNK_BYTES,
            partitions_per_machine=1,
        )
    spec = GraphSpec.rmat(scale)
    if spec.num_vertices >= 2**32:
        # Non-compact format (Section 8): 8-byte ids double every
        # update/vertex record relative to the compact defaults the
        # algorithms declare.  Instance attributes shadow the class
        # declarations without touching other users of the object.
        algorithm.update_bytes = algorithm.update_bytes * 2
        algorithm.vertex_bytes = algorithm.vertex_bytes * 2
        algorithm.accum_bytes = algorithm.accum_bytes * 2
    result = ChaosCluster(config).run_model(algorithm, spec, profile)
    return CapacityProjection(
        algorithm=algorithm.name,
        machines=config.machines,
        runtime_hours=result.runtime / 3600.0,
        total_io_terabytes=result.storage_bytes / 1e12,
        aggregate_bandwidth_gbps=result.aggregate_bandwidth / 1e9,
        iterations=result.iterations,
        result=result,
    )

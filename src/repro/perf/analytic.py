"""Closed-form runtime model: the back-of-envelope the paper reasons with.

Chaos is designed so that the storage devices are the bottleneck and
stay ~100% utilized (batching, Eq. 4) with near-perfect load balance
(stealing).  Under those design goals, runtime has a closed form:

    T = (bytes moved through storage) / (aggregate effective bandwidth)

with the effective per-device bandwidth degraded by per-request latency
at the configured chunk size (:func:`repro.store.fio.effective_bandwidth`)
and the utilization factor ρ(m, k) of Eq. 4.

:func:`predict_runtime` evaluates that form for a workload; the test
suite checks the discrete-event simulator against it in its
streaming-dominated regime — a strong end-to-end validation that the
simulated protocol actually achieves what the paper's design arguments
promise, and a fast planning tool for users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.batching import utilization
from repro.core.config import ClusterConfig
from repro.store.fio import effective_bandwidth


@dataclass(frozen=True)
class WorkloadVolumes:
    """Byte volumes of one job, in storage-traffic terms."""

    input_bytes: int  # unsorted edge list size
    edge_bytes_per_pass: int  # edge set streamed per scatter
    update_bytes_total: int  # updates written over the whole run
    vertex_set_bytes: int  # one full vertex-value image
    iterations: int

    def storage_traffic(self, checkpointing: bool = False) -> int:
        """Total bytes through the storage devices.

        Pre-processing reads the input and writes the partitioned edge
        sets; each iteration streams the edge set once; updates are
        written once and read once; vertex sets are read per phase and
        written back after gather (plus checkpoint copies).
        """
        preprocessing = 2 * self.input_bytes
        edges = self.iterations * self.edge_bytes_per_pass
        updates = 2 * self.update_bytes_total
        vertex_images_per_iteration = 3 + (2 if checkpointing else 0)
        vertices = (
            self.iterations * vertex_images_per_iteration * self.vertex_set_bytes
        )
        return preprocessing + edges + updates + vertices


def aggregate_effective_bandwidth(config: ClusterConfig) -> float:
    """Cluster-wide storage bandwidth the design can actually deliver:
    per-device effective rate at the chunk size, times machines, times
    the utilization the batch factor sustains (Eq. 4)."""
    per_device = effective_bandwidth(config.device, config.chunk_bytes)
    rho = utilization(config.machines, config.batch_factor)
    return per_device * config.machines * rho


def predict_runtime(
    volumes: WorkloadVolumes,
    config: ClusterConfig,
    checkpointing: Optional[bool] = None,
) -> float:
    """Predicted job runtime in seconds (storage-bound closed form)."""
    if checkpointing is None:
        checkpointing = config.checkpointing
    traffic = volumes.storage_traffic(checkpointing=checkpointing)
    return traffic / aggregate_effective_bandwidth(config)


def volumes_for_pagerank(
    num_vertices: int,
    num_edges: int,
    iterations: int,
    edge_bytes: int = 8,
    update_bytes: int = 8,
    vertex_bytes: int = 8,
) -> WorkloadVolumes:
    """PR volumes: every edge emits one update every iteration."""
    return WorkloadVolumes(
        input_bytes=num_edges * edge_bytes,
        edge_bytes_per_pass=num_edges * edge_bytes,
        update_bytes_total=iterations * num_edges * update_bytes,
        vertex_set_bytes=num_vertices * vertex_bytes,
        iterations=iterations,
    )


def volumes_from_result(result, input_bytes: int, vertex_set_bytes: int):
    """Derive volumes from a finished run's statistics (for validating
    the simulator against the closed form on any algorithm)."""
    edge_bytes_total = 0
    update_bytes_total = 0
    for stats in result.iteration_stats:
        update_bytes_total += stats.update_bytes
    iterations = max(1, result.iterations)
    # Edge passes: every iteration streams the full edge set.
    return WorkloadVolumes(
        input_bytes=input_bytes,
        edge_bytes_per_pass=input_bytes,
        update_bytes_total=update_bytes_total,
        vertex_set_bytes=vertex_set_bytes,
        iterations=iterations,
    )

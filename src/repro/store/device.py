"""Secondary-storage device models.

The evaluation cluster's devices (Section 8): a 480 GB SSD at roughly
400 MB/s and two 6 TB magnetic disks in RAID 0 at roughly 200 MB/s.  The
paper further measured the SSD's request latency to be approximately
equal to the 40 GigE round trip (Section 10.1), which fixes the SSD
latency once the network latency is chosen — that relation is what makes
φ = 2 and the φk = 10 sweet spot of Figure 16 come out right.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """A storage device: sequential bandwidth plus per-request latency."""

    name: str
    bandwidth: float  # bytes / second, sequential
    latency: float  # seconds per request (seek + dispatch)
    capacity: int  # bytes

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def chunk_time(self, size: int) -> float:
        """Time to read or write one chunk of ``size`` bytes."""
        return self.latency + size / self.bandwidth

    def track_label(self) -> str:
        """Trace-track name for this device ("device:SSD" etc.)."""
        return f"device:{self.name}"


#: The cluster's SSD: 400 MB/s; latency equal to the 40 GigE round trip
#: (2 x 50 microseconds), as the paper measured.
SSD_480GB = DeviceSpec(
    name="SSD",
    bandwidth=400e6,
    latency=100e-6,
    capacity=480 * 10**9,
)

#: Two 6 TB disks in RAID 0: 200 MB/s sequential ("the HDD bandwidth is
#: 2X less than the SSD bandwidth", Section 9.4), with a millisecond-
#: scale positioning cost amortized over 4 MB chunks.
HDD_RAID0 = DeviceSpec(
    name="HDD-RAID0",
    bandwidth=200e6,
    latency=2e-3,
    capacity=12 * 10**12,
)

# -- dimensionally scaled presets ------------------------------------------
#
# The paper streams ~17 GB/machine in 4 MB chunks, so the per-request
# latency is ~1% of a chunk's service time and fixed costs vanish against
# streaming time.  Laptop-scale functional runs stream megabytes in ~64 KB
# chunks; keeping the paper's absolute latencies would inflate fixed costs
# by ~40x relative to streaming and place the simulation in a regime the
# paper never measured.  The *_SCALED presets keep every bandwidth (and
# hence every bandwidth ratio: SSD/HDD, net/storage) identical and scale
# all latencies by 1/10, restoring the paper's dimensionless ratio of
# streaming time to fixed cost.  phi = 1 + R_net/R_storage is unchanged.

SSD_SCALED = DeviceSpec(
    name="SSD-scaled",
    bandwidth=400e6,
    latency=10e-6,
    capacity=480 * 10**9,
)

HDD_SCALED = DeviceSpec(
    name="HDD-scaled",
    bandwidth=200e6,
    latency=200e-6,
    capacity=12 * 10**12,
)

# 1/100-latency presets for the benchmark suite, whose graphs are ~10^4x
# smaller than the paper's: chunk sizes shrink proportionally (4 KB vs
# 4 MB), so scaling latency by the same proportion keeps the per-chunk
# latency fraction — and hence the utilization regime — at the paper's
# level.  Bandwidths and all bandwidth/latency *ratios* are unchanged.

SSD_BENCH = DeviceSpec(
    name="SSD-bench",
    bandwidth=400e6,
    latency=1e-6,
    capacity=480 * 10**9,
)

HDD_BENCH = DeviceSpec(
    name="HDD-bench",
    bandwidth=200e6,
    latency=2e-6,
    capacity=12 * 10**12,
)


# -- byzantine device faults ------------------------------------------------


@dataclass
class StorageFaultState:
    """Armed byzantine faults on one storage engine's device.

    Each budget counts *upcoming* operations the device will silently
    damage: ``read_corrupt`` perturbs the next served chunks after they
    leave the backend (a media bit-flip surfacing on the read path — the
    stored copy stays intact), ``write_corrupt`` persists a damaged copy
    of the next written chunks (a torn write), and ``stale_reads`` makes
    the next vertex reads return the previously stored version (a lost
    in-place update).  The storage engine decrements budgets as the
    faults fire; hardening (verify-on-read, write-verify, checkpoint
    freshness checks) detects and repairs the damage when
    ``integrity_checks`` is on.
    """

    read_corrupt: int = 0
    write_corrupt: int = 0
    stale_reads: int = 0

    def any_armed(self) -> bool:
        return bool(self.read_corrupt or self.write_corrupt or self.stale_reads)

"""In-memory chunk store: bookkeeping shared by all storage backends.

A storage engine keeps, per (partition, kind), an ordered set of chunks
plus a consumption cursor.  The cursor is the whole of the paper's
read-once machinery: *"a storage engine keeps track of which chunks have
already been consumed during the current iteration"* (Section 6.3) —
implemented in the C++ system as a file pointer that is reset at the end
of each iteration (Section 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.store.chunk import Chunk, ChunkKind


class ChunkSet:
    """Ordered chunks of one (partition, kind) with a read-once cursor."""

    __slots__ = ("chunks", "cursor")

    def __init__(self):
        self.chunks: List[Chunk] = []
        self.cursor = 0

    def add(self, chunk: Chunk) -> None:
        self.chunks.append(chunk)

    def next_unprocessed(self) -> Optional[Chunk]:
        """Return (and consume) any unprocessed chunk, or None if exhausted.

        We hand chunks out in arrival order; the paper allows the engine
        to return *any* unprocessed chunk, and arrival order maximizes
        sequentiality.
        """
        if self.cursor >= len(self.chunks):
            return None
        chunk = self.chunks[self.cursor]
        self.cursor += 1
        return chunk

    def reset_cursor(self) -> None:
        """Start a new iteration: every chunk becomes unprocessed again."""
        self.cursor = 0

    def clear(self) -> None:
        self.chunks.clear()
        self.cursor = 0

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.chunks)

    def remaining_bytes(self) -> int:
        return sum(c.size for c in self.chunks[self.cursor :])

    def total_bytes(self) -> int:
        return sum(c.size for c in self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)


class MemoryChunkStore:
    """Default backend: chunks (and their payloads) live in memory.

    The simulated device model provides the timing; this class provides
    the data plane and the read-once bookkeeping.
    """

    def __init__(self):
        self._sets: Dict[Tuple[int, ChunkKind], ChunkSet] = {}
        self._vertex_chunks: Dict[Tuple[int, int], Chunk] = {}
        # Last overwritten version per vertex-chunk key: the stale-read
        # fault serves this instead of the current version, modelling a
        # lost in-place update (e.g. a cached page surviving a rewrite).
        self._prev_vertex_chunks: Dict[Tuple[int, int], Chunk] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # -- edge / update chunks -----------------------------------------

    def _chunk_set(self, partition: int, kind: ChunkKind) -> ChunkSet:
        key = (partition, kind)
        if key not in self._sets:
            self._sets[key] = ChunkSet()
        return self._sets[key]

    def append_chunk(self, chunk: Chunk) -> None:
        if chunk.kind is ChunkKind.VERTICES:
            raise ValueError("vertex chunks use put_vertex_chunk")
        self._chunk_set(chunk.partition, chunk.kind).add(chunk)
        self.bytes_written += chunk.size

    def fetch_any(self, partition: int, kind: ChunkKind) -> Optional[Chunk]:
        chunk = self._chunk_set(partition, kind).next_unprocessed()
        if chunk is not None:
            self.bytes_read += chunk.size
        return chunk

    def remaining_bytes(self, partition: int, kind: ChunkKind) -> int:
        key = (partition, kind)
        if key not in self._sets:
            return 0
        return self._sets[key].remaining_bytes()

    def stored_bytes(self, partition: int, kind: ChunkKind) -> int:
        key = (partition, kind)
        if key not in self._sets:
            return 0
        return self._sets[key].total_bytes()

    def reset_cursors(self, kind: ChunkKind) -> None:
        for (_partition, k), chunk_set in self._sets.items():
            if k is kind:
                chunk_set.reset_cursor()

    def delete(self, partition: int, kind: ChunkKind) -> None:
        key = (partition, kind)
        if key in self._sets:
            self._sets[key].clear()

    # -- vertex chunks --------------------------------------------------

    def put_vertex_chunk(self, chunk: Chunk) -> None:
        if chunk.kind is not ChunkKind.VERTICES:
            raise ValueError("put_vertex_chunk requires a vertex chunk")
        key = (chunk.partition, chunk.index)
        previous = self._vertex_chunks.get(key)
        if previous is not None:
            self._prev_vertex_chunks[key] = previous
        self._vertex_chunks[key] = chunk
        self.bytes_written += chunk.size

    def get_vertex_chunk(self, partition: int, index: int) -> Optional[Chunk]:
        chunk = self._vertex_chunks.get((partition, index))
        if chunk is not None:
            self.bytes_read += chunk.size
        return chunk

    def get_previous_vertex_chunk(
        self, partition: int, index: int
    ) -> Optional[Chunk]:
        """The version a put overwrote, if any (stale-read fault plane)."""
        return self._prev_vertex_chunks.get((partition, index))

    def replace_vertex_chunk(self, chunk: Chunk) -> None:
        """Overwrite a stored vertex chunk *without* version tracking or
        byte accounting — the fault-injection / integrity-repair plane
        (simulated device time is charged by the storage engine)."""
        if chunk.kind is not ChunkKind.VERTICES:
            raise ValueError("replace_vertex_chunk requires a vertex chunk")
        self._vertex_chunks[(chunk.partition, chunk.index)] = chunk

    def vertex_chunk_keys(self) -> List[Tuple[int, int]]:
        """All stored (partition, index) vertex-chunk keys, sorted."""
        return sorted(self._vertex_chunks)

    def vertex_chunk_count(self, partition: int) -> int:
        return sum(1 for (p, _i) in self._vertex_chunks if p == partition)

    # -- statistics ------------------------------------------------------

    def total_stored_bytes(self) -> int:
        data = sum(s.total_bytes() for s in self._sets.values())
        vertices = sum(c.size for c in self._vertex_chunks.values())
        return data + vertices

"""File-backed chunk store: real secondary-storage I/O.

The production system keeps, per machine and streaming partition, one
ext4 file each for the vertex, edge and update set, accessed through the
page cache in 4 MB blocks (Section 7).  This backend reproduces the data
plane with real files: every chunk payload is written to disk when
stored and read back from disk when fetched, so functional runs really
do stream the graph through secondary storage.

Payloads are dicts of numpy arrays; each array is appended verbatim to
the (machine-local) file for its (partition, kind) stream, and the
in-memory chunk records only offsets and dtypes.  The store therefore
holds O(#chunks) metadata, not the data itself.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.store.chunk import Chunk, ChunkKind
from repro.store.memstore import ChunkSet


@dataclass
class _ArrayRef:
    """Location of one serialized array inside a backing file."""

    offset: int
    dtype: np.dtype
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize


class FileChunkStore:
    """Chunk store whose payloads live in real files under ``root``.

    Implements the same interface as
    :class:`repro.store.memstore.MemoryChunkStore` so the storage engine
    can use either interchangeably.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._sets: Dict[Tuple[int, ChunkKind], ChunkSet] = {}
        self._vertex_chunks: Dict[Tuple[int, int], Chunk] = {}
        self._refs: Dict[int, Dict[str, _ArrayRef]] = {}
        self._next_ref = 0
        self._append_offsets: Dict[str, int] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # -- file plumbing ---------------------------------------------------

    def _path(self, partition: int, kind: ChunkKind) -> str:
        return os.path.join(self.root, f"p{partition}.{kind.value}")

    def _write_payload(
        self, partition: int, kind: ChunkKind, payload: Dict[str, np.ndarray]
    ) -> int:
        """Append payload arrays to the stream file; return a ref handle."""
        path = self._path(partition, kind)
        refs: Dict[str, _ArrayRef] = {}
        offset = self._append_offsets.get(path, 0)
        with open(path, "ab") as stream:
            for name in sorted(payload):
                array = np.ascontiguousarray(payload[name])
                refs[name] = _ArrayRef(
                    offset=offset, dtype=array.dtype, shape=array.shape
                )
                stream.write(array.tobytes())
                offset += array.nbytes
        self._append_offsets[path] = offset
        handle = self._next_ref
        self._next_ref += 1
        self._refs[handle] = refs
        return handle

    def _read_payload(
        self, partition: int, kind: ChunkKind, handle: int
    ) -> Dict[str, np.ndarray]:
        path = self._path(partition, kind)
        refs = self._refs[handle]
        payload: Dict[str, np.ndarray] = {}
        with open(path, "rb") as stream:
            for name, ref in refs.items():
                stream.seek(ref.offset)
                raw = stream.read(ref.nbytes)
                payload[name] = np.frombuffer(raw, dtype=ref.dtype).reshape(
                    ref.shape
                ).copy()
        return payload

    def _spill(self, chunk: Chunk) -> Chunk:
        """Replace a chunk's in-memory payload with a file reference."""
        if chunk.payload is None:
            return chunk
        if not isinstance(chunk.payload, dict):
            raise TypeError(
                "FileChunkStore payloads must be dicts of numpy arrays"
            )
        handle = self._write_payload(chunk.partition, chunk.kind, chunk.payload)
        spilled = Chunk(
            partition=chunk.partition,
            kind=chunk.kind,
            size=chunk.size,
            payload=None,
            index=chunk.index,
            records=chunk.records,
        )
        spilled._file_handle = handle  # type: ignore[attr-defined]
        return spilled

    def _materialize(self, chunk: Optional[Chunk]) -> Optional[Chunk]:
        if chunk is None:
            return None
        handle = getattr(chunk, "_file_handle", None)
        if handle is None:
            return chunk
        payload = self._read_payload(chunk.partition, chunk.kind, handle)
        loaded = Chunk(
            partition=chunk.partition,
            kind=chunk.kind,
            size=chunk.size,
            payload=payload,
            index=chunk.index,
            records=chunk.records,
        )
        return loaded

    # -- MemoryChunkStore-compatible interface ----------------------------

    def _chunk_set(self, partition: int, kind: ChunkKind) -> ChunkSet:
        key = (partition, kind)
        if key not in self._sets:
            self._sets[key] = ChunkSet()
        return self._sets[key]

    def append_chunk(self, chunk: Chunk) -> None:
        if chunk.kind is ChunkKind.VERTICES:
            raise ValueError("vertex chunks use put_vertex_chunk")
        self._chunk_set(chunk.partition, chunk.kind).add(self._spill(chunk))
        self.bytes_written += chunk.size

    def fetch_any(self, partition: int, kind: ChunkKind) -> Optional[Chunk]:
        chunk = self._chunk_set(partition, kind).next_unprocessed()
        if chunk is not None:
            self.bytes_read += chunk.size
        return self._materialize(chunk)

    def remaining_bytes(self, partition: int, kind: ChunkKind) -> int:
        key = (partition, kind)
        if key not in self._sets:
            return 0
        return self._sets[key].remaining_bytes()

    def stored_bytes(self, partition: int, kind: ChunkKind) -> int:
        key = (partition, kind)
        if key not in self._sets:
            return 0
        return self._sets[key].total_bytes()

    def reset_cursors(self, kind: ChunkKind) -> None:
        for (_partition, k), chunk_set in self._sets.items():
            if k is kind:
                chunk_set.reset_cursor()

    def delete(self, partition: int, kind: ChunkKind) -> None:
        key = (partition, kind)
        if key in self._sets:
            for chunk in self._sets[key].chunks:
                handle = getattr(chunk, "_file_handle", None)
                if handle is not None:
                    self._refs.pop(handle, None)
            self._sets[key].clear()
        path = self._path(partition, kind)
        if os.path.exists(path):
            os.remove(path)
            self._append_offsets.pop(path, None)

    def put_vertex_chunk(self, chunk: Chunk) -> None:
        if chunk.kind is not ChunkKind.VERTICES:
            raise ValueError("put_vertex_chunk requires a vertex chunk")
        old = self._vertex_chunks.get((chunk.partition, chunk.index))
        if old is not None:
            handle = getattr(old, "_file_handle", None)
            if handle is not None:
                self._refs.pop(handle, None)
        self._vertex_chunks[(chunk.partition, chunk.index)] = self._spill(chunk)
        self.bytes_written += chunk.size

    def get_vertex_chunk(self, partition: int, index: int) -> Optional[Chunk]:
        chunk = self._vertex_chunks.get((partition, index))
        if chunk is not None:
            self.bytes_read += chunk.size
        return self._materialize(chunk)

    def vertex_chunk_count(self, partition: int) -> int:
        return sum(1 for (p, _i) in self._vertex_chunks if p == partition)

    def total_stored_bytes(self) -> int:
        data = sum(s.total_bytes() for s in self._sets.values())
        vertices = sum(c.size for c in self._vertex_chunks.values())
        return data + vertices

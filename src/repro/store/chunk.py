"""Chunks: the unit of placement, access and stealing.

*"All data structures are maintained and accessed in units called
chunks.  The size of a chunk is chosen large enough so that access to
storage appears sequential, but small enough so that they can serve as
units of distribution ...  Chunks are also the unit of stealing."*
(Section 6.2).  The paper uses 4 MB chunks (Section 7).

A chunk couples a *modelled* wire/storage size (what the hardware model
charges for) with an optional *payload* (real numpy data in functional
runs, ``None`` for phantom chunks in model-mode capacity runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

#: The paper's chunk size: a 4 MB block in the per-partition file.
DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024


class ChunkKind(enum.Enum):
    """The three stored data structures of a streaming partition."""

    EDGES = "edges"
    UPDATES = "updates"
    VERTICES = "vertices"


@dataclass
class Chunk:
    """One chunk of one partition's edge, update or vertex set."""

    partition: int
    kind: ChunkKind
    size: int
    payload: Any = None
    #: For vertex chunks only: position within the partition's vertex
    #: set, used by the hashed placement (Section 6.4).
    index: int = 0
    #: Number of records (edges / updates / vertices) the chunk holds.
    #: Drives the modelled CPU cost of processing it.
    records: int = 0
    #: CRC32 seal over identity + payload (``store.integrity``); ``None``
    #: for unsealed chunks (phantom / model-mode), which verify trivially.
    crc: Any = None

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"chunk size must be non-negative, got {self.size}")
        if self.records < 0:
            raise ValueError(f"records must be non-negative, got {self.records}")

    @property
    def is_phantom(self) -> bool:
        """True when the chunk models volume only (no real data)."""
        return self.payload is None


def split_into_chunks(total_bytes: int, chunk_bytes: int) -> list:
    """Sizes of the chunks covering ``total_bytes`` (last may be short)."""
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    full, rest = divmod(total_bytes, chunk_bytes)
    sizes = [chunk_bytes] * full
    if rest:
        sizes.append(rest)
    return sizes

"""Chunk placement policies.

Chaos' default (Section 6.3): to store a chunk of edges or updates, pick
a storage engine uniformly at random; to retrieve one, again pick a
storage engine uniformly at random and ask it for *any* unprocessed
chunk of the partition.  Vertex chunks instead map to engines by hashing
(partition, chunk index) so they can be found without a directory
(Section 6.4).

The :class:`CentralizedDirectory` is the Figure 15 baseline: a single
meta-data server through which every read and write must be routed,
"which increasingly becomes a bottleneck".
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.sim.resources import FifoServer


class RandomPlacement:
    """Uniform random selection of a storage engine (the Chaos default)."""

    def __init__(self, machines: int, seed: int = 0):
        if machines < 1:
            raise ValueError("machines must be >= 1")
        self.machines = machines
        self._rng = random.Random(seed)

    def choose_write(self) -> int:
        """Storage engine for a new edge/update chunk."""
        return self._rng.randrange(self.machines)

    def choose_read(self, excluded: Set[int]) -> Optional[int]:
        """Storage engine to ask for a chunk, avoiding exhausted engines.

        Returns ``None`` when every engine is exhausted (the signal that
        the partition's input is empty, Section 6.3).
        """
        candidates = [m for m in range(self.machines) if m not in excluded]
        if not candidates:
            return None
        return self._rng.choice(candidates)


class HashedVertexPlacement:
    """Deterministic engine for each vertex chunk (Section 6.4).

    Every machine computes the same mapping, so vertex chunks are found
    without any directory.  A fixed odd multiplier gives a uniform spread
    across engines regardless of partition/index regularities.
    """

    _MIX = 2654435761  # Knuth's multiplicative-hash constant

    def __init__(self, machines: int):
        if machines < 1:
            raise ValueError("machines must be >= 1")
        self.machines = machines

    def machine_for(self, partition: int, index: int) -> int:
        mixed = ((partition + 1) * self._MIX + (index + 1) * 40503) & 0xFFFFFFFF
        return mixed % self.machines

    def machines_for(self, partition: int, index: int, replicas: int) -> list:
        """Primary plus ``replicas - 1`` distinct successor machines.

        Used by the vertex-set replication extension (Section 6.6 notes
        storage-failure tolerance "could easily be added by replicating
        the vertex sets").
        """
        if not 1 <= replicas <= self.machines:
            raise ValueError(
                f"replicas must be in [1, {self.machines}], got {replicas}"
            )
        primary = self.machine_for(partition, index)
        return [(primary + offset) % self.machines for offset in range(replicas)]


class CentralizedDirectory:
    """Figure 15 baseline: a central chunk-location server.

    Every chunk read and write first consults the directory on machine
    ``home``; the directory serializes lookups on a single queue (it is
    one server process), which is precisely what makes it a scaling
    bottleneck.  The directory assigns write locations round-robin and
    remembers where chunks live.

    The directory is modelled as a :class:`FifoServer` whose "bandwidth"
    is requests/second; each lookup costs one request.
    """

    SERVICE = "directory"
    LOOKUP_MESSAGE_BYTES = 48

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        home: int = 0,
        lookups_per_second: float = 200_000.0,
        seed: int = 0,
    ):
        self.sim = sim
        self.network = network
        self.home = home
        self._rng = random.Random(seed)
        # One lookup == one unit of "size" through a FIFO server whose
        # bandwidth is lookups/second.
        self._server = FifoServer(
            sim, bandwidth=lookups_per_second, latency=0.0, name="directory"
        )
        self._mailbox = network.register(home, self.SERVICE)
        self._next_request = 0
        self.lookups = 0
        sim.process(self._serve(), name="directory")

    def _serve(self):
        while True:
            message = yield self._mailbox.get()
            request_id, reply_machine, reply_service = message.payload
            self.lookups += 1
            done = self._server.service(1.0)
            done.subscribe(
                lambda _e, rid=request_id, rm=reply_machine, rs=reply_service:
                self._reply(rid, rm, rs)
            )

    def _reply(self, request_id: int, reply_machine: int, reply_service: str):
        location = self._rng.randrange(self.network.machines)
        self.network.send(
            src=self.home,
            dst=reply_machine,
            service=reply_service,
            kind="directory_reply",
            size=self.LOOKUP_MESSAGE_BYTES,
            payload=(request_id, location),
        )

    def lookup_from(
        self, machine: int, reply_service: str, request_id: int
    ) -> None:
        """Send a lookup request on behalf of ``machine``."""
        self.network.send(
            src=machine,
            dst=self.home,
            service=self.SERVICE,
            kind="directory_lookup",
            size=self.LOOKUP_MESSAGE_BYTES,
            payload=(request_id, machine, reply_service),
        )

"""The per-machine storage engine.

Each machine runs one storage engine (Section 4) that owns the local
storage device and serves chunk requests from any computation engine in
the cluster.  Requests are served through a FIFO device queue — *"a
storage engine always serves a request for a chunk in its entirety
before serving the next request"* (Section 6.2) — and the engine keeps
the read-once-per-iteration bookkeeping that lets multiple computation
engines share a streaming partition without synchronizing (Section 5.3).

Protocol (service name ``"storage"``):

``read(partition, kind)``
    Reply with any unprocessed chunk, or an exhausted marker.
``write(chunk)``
    Append an edge/update chunk; reply with an ack.
``vread(partition, index)`` / ``vwrite(chunk)``
    Read / overwrite one vertex chunk at its hashed location.
``delete(partition, kind)``
    Drop a chunk set (end-of-gather update deletion); no reply.

Replies carry the original ``request_id`` so computation engines can
keep many requests outstanding (the batch window of Section 6.5).

Fault tolerance (Section 6.6): the engine's dispatcher can be
:meth:`crashed <StorageEngine.crash>` and :meth:`restarted
<StorageEngine.restart>` by the fault injector.  The chunk backend
survives a crash — Chaos assumes transient machine failures, so a
rebooted machine comes back with its secondary storage intact.  Every
request carries the sender's recovery ``epoch``; requests from before
the engine's :attr:`data_epoch` are dropped, which fences writes still
in flight when a cluster-wide rollback begins (they must not land after
the rollback's deletes).  Replies echo the request's epoch so stale
replies are identifiable at the requester too.
"""

from __future__ import annotations

from typing import Dict

from repro.net.transport import Network
from repro.obs.host import resolve_host_profiler
from repro.obs.tracer import NULL_TRACK
from repro.sim.engine import Event, Simulator
from repro.sim.resources import FifoServer
from repro.store.chunk import Chunk, ChunkKind
from repro.store.device import DeviceSpec, StorageFaultState
from repro.store.integrity import corrupt_chunk, seal_chunk, verify_chunk

SERVICE = "storage"

#: Wire size of a request / control reply (headers and ids only).
CONTROL_BYTES = 32
#: Wire size of an "exhausted" reply.
EXHAUSTED_BYTES = 16


class StorageEngine:
    """One machine's storage engine: device + chunk store + dispatcher."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        machine: int,
        device: DeviceSpec,
        backend,
        tracer=None,
        sanitizer=None,
        host=None,
        integrity: bool = True,
        job_track=NULL_TRACK,
    ):
        self.sim = sim
        self.network = network
        self.machine = machine
        self.device_spec = device
        self.device = FifoServer(
            sim,
            bandwidth=device.bandwidth,
            latency=device.latency,
            name=f"m{machine}.{device.name}",
        )
        self.backend = backend
        self._san = (
            sanitizer if sanitizer is not None and sanitizer.enabled else None
        )
        # Host profiler: real wall/CPU cost of chunk (de)serialization
        # against the backend (``run --host-profile``).
        self._host = resolve_host_profiler(host)
        self._trace_on = tracer is not None and tracer.enabled
        if self._trace_on:
            from repro.obs.tracer import TID_DEVICE

            self.device.enable_trace(
                tracer.thread(machine, TID_DEVICE, device.track_label()),
                label="io",
            )
        self._mailbox = network.register(machine, SERVICE)
        self.reads_served = 0
        self.writes_served = 0
        self.exhausted_replies = 0
        #: Chunk reads served, by data-structure kind (protocol audits).
        self.reads_by_kind = {kind: 0 for kind in ChunkKind}
        #: Recovery epoch this engine's data plane belongs to; requests
        #: stamped with an older epoch are fenced (dropped).
        self.data_epoch = 0
        #: Requests dropped by the epoch fence.
        self.stale_dropped = 0
        self.restarts = 0
        # Integrity hardening (config.integrity_checks) and the armed
        # byzantine device faults it defends against.
        self._integrity = integrity
        self._job_track = job_track
        self.faults = StorageFaultState()
        #: Corrupt reads caught by verify-on-read and served again from
        #: the intact backend copy (device charged for both attempts).
        self.integrity_rereads = 0
        #: Torn writes caught by write-verify and rewritten before ack.
        self.torn_writes_repaired = 0
        #: Corrupt incoming write payloads bounced back for resend.
        self.write_rejects = 0
        #: Vertex reads that served a stale (overwritten) version.
        self.stale_reads_served = 0
        #: Reads re-served from the retransmit buffer (read_retry).
        self.retransmits = 0
        # Chunks served by request_id, kept so a receiver that got a
        # corrupted frame can re-request without a second cursor
        # consume (fetch_any is read-once).  Cleared each phase.
        self._retransmit: Dict[int, Chunk] = {}
        self._process = sim.process(self._dispatch(), name=f"storage{machine}")

    # -- fault injection ---------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the dispatcher is serving requests."""
        return self._process.alive

    def crash(self) -> None:
        """Fail-stop: kill the dispatcher; the chunk backend survives.

        Device requests already queued keep their (analytic) completion
        times; their reply sends originate from an unreachable machine
        and are dropped by the transport, so nothing escapes.
        """
        self._process.kill("storage-crash")

    def restart(self) -> None:
        """Reboot the engine: fresh dispatcher over the surviving backend."""
        if self._process.alive:
            return
        self._mailbox.reset()  # requests queued while down are lost
        self.restarts += 1
        self._process = self.sim.process(
            self._dispatch(), name=f"storage{self.machine}.r{self.restarts}"
        )

    def advance_epoch(self, epoch: int) -> None:
        """Fence all traffic from recovery epochs before ``epoch``."""
        self.data_epoch = epoch

    def degrade_device(self, factor: float) -> None:
        """Slow-device fault: divide the device bandwidth by ``factor``."""
        self.device.degrade(factor)

    def restore_device(self) -> None:
        self.device.restore_bandwidth()

    def inject_read_corruption(self, count: int) -> None:
        """Bit-flip fault: perturb the next ``count`` chunks served by
        the read path (backend copy stays intact)."""
        self.faults.read_corrupt += count

    def inject_write_corruption(self, count: int) -> None:
        """Torn-write fault: persist a damaged copy of the next
        ``count`` written chunks."""
        self.faults.write_corrupt += count

    def inject_stale_reads(self, count: int) -> None:
        """Stale-read fault: the next ``count`` vertex reads (that have
        an overwritten predecessor) return the previous version."""
        self.faults.stale_reads += count

    def corrupt_stored_checkpoint(self, count: int, base_floor: int) -> int:
        """Corrupt up to ``count`` durable checkpoint replica chunks.

        Walks stored vertex chunks at or above ``base_floor`` (the
        checkpoint slot bases) and replaces payload-carrying ones with
        corrupted copies — persistent replica rot, detected (and
        quarantined) by the restore client's verify-on-read.  Returns
        how many chunks were actually damaged.
        """
        keys = getattr(self.backend, "vertex_chunk_keys", None)
        if keys is None:
            return 0
        damaged = 0
        for partition, index in keys():
            if damaged >= count or index < base_floor:
                continue
            chunk = self.backend.get_vertex_chunk(partition, index)
            if chunk is None or chunk.payload is None:
                continue
            self.backend.replace_vertex_chunk(corrupt_chunk(chunk))
            damaged += 1
        return damaged

    # -- local (same-machine, zero-cost) queries -------------------------

    def remaining_bytes(self, partition: int, kind: ChunkKind) -> int:
        """Unprocessed bytes for (partition, kind) on this engine.

        The master multiplies this by the machine count to estimate the
        cluster-wide remaining data D for the steal criterion
        (Section 5.4) — a *local* decision, no messages needed.
        """
        return self.backend.remaining_bytes(partition, kind)

    def reset_cursors(self, kind: ChunkKind) -> None:
        """Start of a phase: all chunks of ``kind`` become unprocessed."""
        self._retransmit.clear()
        self.backend.reset_cursors(kind)

    def local_input_read(self, size: int) -> Event:
        """Charge a local read of ``size`` raw input bytes on the device.

        The pre-processing pass reads each machine's share of the
        unsorted input from its own device; compute code must come
        through this method rather than touching the device directly
        (the mediation the CHX003 lint rule enforces).
        """
        label = "pread" if self._trace_on else None
        return self.device.service(size, label=label)

    # -- telemetry accessors (samplers must not reach into the device) --

    def device_busy_time(self) -> float:
        """Cumulative busy seconds of the storage device."""
        return self.device.meter.busy_time

    def device_queue_delay(self) -> float:
        """Current queueing delay (seconds) at the storage device."""
        return self.device.queue_delay()

    def device_bytes_served(self) -> int:
        """Cumulative bytes served by the storage device."""
        return self.device.meter.bytes_served

    # -- direct (pre-processing time) stores ------------------------------

    def preload_chunk(self, chunk: Chunk) -> None:
        """Store a chunk without simulated I/O (pre-processing loads)."""
        if chunk.payload is not None and chunk.crc is None:
            # Seal real payloads at ingest so every later hop can verify.
            seal_chunk(chunk)
        if chunk.kind is ChunkKind.VERTICES:
            self.backend.put_vertex_chunk(chunk)
        else:
            self.backend.append_chunk(chunk)

    # -- message dispatch --------------------------------------------------

    def _dispatch(self):
        while True:
            message = yield self._mailbox.get()
            if message.epoch < self.data_epoch:
                # A straggler from before a rollback (e.g. an update
                # write that was in flight when the cluster fenced):
                # executing it would corrupt the restored state.
                self.stale_dropped += 1
                continue
            handler = getattr(self, f"_handle_{message.kind}", None)
            if handler is None:
                raise RuntimeError(
                    f"storage engine {self.machine}: unknown message "
                    f"kind {message.kind!r}"
                )
            handler(message)

    def _reply(
        self,
        requester: int,
        reply_service: str,
        kind: str,
        size: int,
        payload,
        epoch: int = 0,
        parent=None,
    ) -> None:
        # ``parent`` is the request's causal context: replies fire from
        # device-completion callbacks long after dispatch moved on, so
        # the causal edge must be threaded explicitly.
        self.network.send(
            src=self.machine,
            dst=requester,
            service=reply_service,
            kind=kind,
            size=size,
            payload=payload,
            epoch=epoch,
            parent=parent,
        )

    def _handle_read(self, message) -> None:
        request_id, requester, reply_service, partition, kind = message.payload
        if self._san is not None:
            # Advancing the read-once cursor mutates shared store state;
            # it is safe only because this engine serializes all access.
            self._san.access(
                ("chunks", self.machine, partition, kind),
                self.machine,
                write=True,
                label="store.fetch",
            )
        with self._host.measure(self.machine, "deserialize"):
            chunk = self.backend.fetch_any(partition, kind)
        if chunk is None:
            self.exhausted_replies += 1
            self._reply(
                requester,
                reply_service,
                "read_reply",
                EXHAUSTED_BYTES,
                (request_id, None),
                epoch=message.epoch,
                parent=message.ctx,
            )
            return
        self.reads_served += 1
        self.reads_by_kind[kind] += 1
        label = f"read:{kind.value}:p{partition}" if self._trace_on else None
        served = self._read_path(chunk, label)
        self._retransmit[request_id] = chunk
        done = self.device.service(served.size, label=label)
        done.subscribe(
            lambda _e, epoch=message.epoch: self._reply(
                requester,
                reply_service,
                "read_reply",
                served.size,
                (request_id, served),
                epoch=epoch,
                parent=message.ctx,
            )
        )

    def _read_path(self, chunk: Chunk, label) -> Chunk:
        """Apply armed read-path corruption and verify-on-read.

        Returns the chunk to serve: a corrupted copy when a bit-flip
        fault fires and hardening is off, or — with hardening on — the
        intact backend copy after charging the device for the wasted
        first read (the verify-on-read re-read).
        """
        served = chunk
        if self.faults.read_corrupt > 0 and chunk.payload is not None:
            self.faults.read_corrupt -= 1
            served = corrupt_chunk(chunk)
        if served is not chunk and self._integrity and not verify_chunk(served):
            # Verify-on-read caught the media damage: charge the wasted
            # read, then serve the intact copy.
            self.integrity_rereads += 1
            start = self.sim.now
            wasted = self.device.service(chunk.size, label=label)
            wasted.subscribe(
                lambda _e: self._job_track.complete(
                    "integrity.reread",
                    start,
                    self.sim.now - start,
                    cat="integrity",
                    args={"machine": self.machine},
                )
            )
            served = chunk
        return served

    def _handle_read_retry(self, message) -> None:
        """Re-serve a previously served chunk (integrity re-request).

        ``fetch_any`` is read-once, so a receiver that got a corrupted
        frame cannot simply re-issue the read; it re-requests by the
        original ``request_id`` against the retransmit buffer instead.
        """
        request_id, requester, reply_service = message.payload
        chunk = self._retransmit.get(request_id)
        if chunk is None:
            # Evicted (phase ended): nothing to re-serve.  Reply
            # exhausted so the reader makes progress instead of hanging.
            self._reply(
                requester,
                reply_service,
                "read_reply",
                EXHAUSTED_BYTES,
                (request_id, None),
                epoch=message.epoch,
                parent=message.ctx,
            )
            return
        self.retransmits += 1
        label = f"reread:p{chunk.partition}" if self._trace_on else None
        done = self.device.service(chunk.size, label=label)
        done.subscribe(
            lambda _e, epoch=message.epoch: self._reply(
                requester,
                reply_service,
                "read_reply",
                chunk.size,
                (request_id, chunk),
                epoch=epoch,
                parent=message.ctx,
            )
        )

    def _reject_write(self, message) -> bool:
        """Bounce a write whose payload arrived damaged (nack → resend).

        Returns True when the write was rejected.  The nack rides the
        normal ``write_ack`` reply with a marker payload; the sender
        still holds the original chunk and resends after backoff.
        """
        request_id, requester, reply_service, chunk = message.payload
        if not self._integrity or verify_chunk(chunk):
            return False
        self.write_rejects += 1
        self._job_track.instant(
            "integrity.write_reject",
            cat="integrity",
            args={"machine": self.machine, "partition": chunk.partition},
        )
        self._reply(
            requester,
            reply_service,
            "write_ack",
            CONTROL_BYTES,
            (request_id, "corrupt"),
            epoch=message.epoch,
            parent=message.ctx,
        )
        return True

    def _written_copy(self, chunk: Chunk, label) -> Chunk:
        """Apply the torn-write fault, and write-verify when hardened.

        Returns the chunk that actually lands in the backend; with
        hardening on, a caught tear charges the device for the rewrite
        and the intact chunk lands.
        """
        stored = chunk
        if self.faults.write_corrupt > 0 and chunk.payload is not None:
            self.faults.write_corrupt -= 1
            stored = corrupt_chunk(chunk)
        if stored is not chunk and self._integrity and not verify_chunk(stored):
            self.torn_writes_repaired += 1
            start = self.sim.now
            rewrite = self.device.service(chunk.size, label=label)
            rewrite.subscribe(
                lambda _e: self._job_track.complete(
                    "integrity.rewrite",
                    start,
                    self.sim.now - start,
                    cat="integrity",
                    args={"machine": self.machine},
                )
            )
            stored = chunk
        return stored

    def _handle_write(self, message) -> None:
        if self._reject_write(message):
            return
        request_id, requester, reply_service, chunk = message.payload
        if self._san is not None:
            self._san.access(
                ("chunks", self.machine, chunk.partition, chunk.kind),
                self.machine,
                write=True,
                label="store.append",
            )
        self.writes_served += 1
        label = (
            f"write:{chunk.kind.value}:p{chunk.partition}"
            if self._trace_on
            else None
        )
        done = self.device.service(chunk.size, label=label)
        epoch = message.epoch

        def complete(_event: Event) -> None:
            if epoch < self.data_epoch:
                # The cluster rolled back while this write sat in the
                # device queue: discard instead of resurrecting it.
                self.stale_dropped += 1
                return
            stored = self._written_copy(chunk, label)
            with self._host.measure(
                self.machine, "serialize", records=chunk.records
            ):
                self.backend.append_chunk(stored)
            self._reply(
                requester,
                reply_service,
                "write_ack",
                CONTROL_BYTES,
                (request_id, None),
                epoch=epoch,
                parent=message.ctx,
            )

        done.subscribe(complete)

    def _handle_vread(self, message) -> None:
        request_id, requester, reply_service, partition, index = message.payload
        with self._host.measure(self.machine, "deserialize"):
            chunk = self.backend.get_vertex_chunk(partition, index)
        if chunk is not None and self.faults.stale_reads > 0:
            stale_getter = getattr(
                self.backend, "get_previous_vertex_chunk", None
            )
            stale = (
                stale_getter(partition, index)
                if stale_getter is not None
                else None
            )
            if stale is not None:
                # Lost in-place update: the read returns the version the
                # last write overwrote.  Its CRC is valid — staleness is
                # caught by freshness metadata (the checkpoint generation
                # key), not by checksums.
                self.faults.stale_reads -= 1
                self.stale_reads_served += 1
                chunk = stale
        if chunk is None:
            self._reply(
                requester,
                reply_service,
                "vread_reply",
                EXHAUSTED_BYTES,
                (request_id, None),
                epoch=message.epoch,
                parent=message.ctx,
            )
            return
        self.reads_served += 1
        self.reads_by_kind[ChunkKind.VERTICES] += 1
        label = f"vread:p{partition}" if self._trace_on else None
        served = self._read_path(chunk, label)
        done = self.device.service(served.size, label=label)
        done.subscribe(
            lambda _e, epoch=message.epoch: self._reply(
                requester,
                reply_service,
                "vread_reply",
                served.size,
                (request_id, served),
                epoch=epoch,
                parent=message.ctx,
            )
        )

    def _handle_vwrite(self, message) -> None:
        if self._reject_write(message):
            return
        request_id, requester, reply_service, chunk = message.payload
        self.writes_served += 1
        label = f"vwrite:p{chunk.partition}" if self._trace_on else None
        done = self.device.service(chunk.size, label=label)
        epoch = message.epoch

        def complete(_event: Event) -> None:
            if epoch < self.data_epoch:
                self.stale_dropped += 1
                return
            stored = self._written_copy(chunk, label)
            with self._host.measure(self.machine, "serialize"):
                self.backend.put_vertex_chunk(stored)
            self._reply(
                requester,
                reply_service,
                "write_ack",
                CONTROL_BYTES,
                (request_id, None),
                epoch=epoch,
                parent=message.ctx,
            )

        done.subscribe(complete)

    def _handle_pwrite(self, message) -> None:
        """Pre-processing write: charge device time without storing.

        The runtime pre-places the partitioned edge chunks (same RNG
        stream); this message accounts for the write I/O of the one-pass
        pre-processing split.
        """
        request_id, requester, reply_service, size = message.payload
        self.writes_served += 1
        label = "pwrite" if self._trace_on else None
        done = self.device.service(size, label=label)
        done.subscribe(
            lambda _e, epoch=message.epoch: self._reply(
                requester,
                reply_service,
                "write_ack",
                CONTROL_BYTES,
                (request_id, None),
                epoch=epoch,
                parent=message.ctx,
            )
        )

    def _handle_delete(self, message) -> None:
        partition, kind = message.payload
        if self._san is not None:
            self._san.access(
                ("chunks", self.machine, partition, kind),
                self.machine,
                write=True,
                label="store.delete",
            )
        # Deletion is a metadata operation: no device time.
        self.backend.delete(partition, kind)

    # -- statistics ---------------------------------------------------------

    def bytes_served(self) -> int:
        return self.device.meter.bytes_served

    def utilization(self, elapsed: float) -> float:
        return self.device.meter.utilization(elapsed)

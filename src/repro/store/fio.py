"""fio-style device measurement.

The paper's Figure 14 plots the maximum theoretical aggregate bandwidth
"measured by fio" as the envelope above Chaos' achieved bandwidth.  This
module plays fio's role for the simulated hardware: it drives a storage
engine with saturating sequential chunk requests and reports the
sustained bandwidth — which, for the FIFO device model, converges to
``bandwidth x size / (size + latency x bandwidth)``, i.e. the configured
line rate degraded by the per-request latency at the chosen chunk size.

Measuring instead of trusting the configured constant keeps the Figure
14 envelope honest: it reflects what the device can actually deliver at
the experiment's chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.resources import FifoServer
from repro.store.device import DeviceSpec


@dataclass(frozen=True)
class FioResult:
    """Outcome of a sequential-throughput measurement."""

    device: str
    chunk_bytes: int
    requests: int
    seconds: float
    bandwidth: float  # bytes/second sustained

    def summary(self) -> str:
        return (
            f"{self.device}: {self.bandwidth / 1e6:.1f} MB/s sequential at "
            f"{self.chunk_bytes} B chunks ({self.requests} requests in "
            f"{self.seconds:.4f}s)"
        )


def measure_sequential_bandwidth(
    device: DeviceSpec,
    chunk_bytes: int,
    total_bytes: int = 10**9,
) -> FioResult:
    """Saturate a simulated device with back-to-back chunk reads.

    Mirrors ``fio --rw=read --bs=<chunk>`` against the device model:
    requests are issued with unlimited queue depth, so the device is
    never idle and the measurement is its service-rate ceiling.
    """
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    if total_bytes < chunk_bytes:
        raise ValueError("total_bytes must cover at least one chunk")
    sim = Simulator()
    server = FifoServer(
        sim, bandwidth=device.bandwidth, latency=device.latency, name="fio"
    )
    requests = total_bytes // chunk_bytes
    last = None
    for _ in range(requests):
        last = server.service(chunk_bytes)
    sim.run_until(last)
    seconds = sim.now
    return FioResult(
        device=device.name,
        chunk_bytes=chunk_bytes,
        requests=requests,
        seconds=seconds,
        bandwidth=requests * chunk_bytes / seconds,
    )


def effective_bandwidth(device: DeviceSpec, chunk_bytes: int) -> float:
    """Closed form of the measurement (for cross-checking): the device
    serves one chunk per ``latency + chunk/bandwidth`` seconds."""
    service_time = device.latency + chunk_bytes / device.bandwidth
    return chunk_bytes / service_time

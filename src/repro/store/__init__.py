"""Storage substrate: devices, chunks, storage engines, placement.

The Chaos storage sub-system (Section 6) keeps three data structures per
streaming partition — the vertex set, the edge set, and the update set —
spread *uniformly randomly* over the storage engines of the cluster in
chunks large enough to appear sequential (4 MB in the paper).  A storage
engine serves a chunk request in its entirety before the next request,
returns *any* unprocessed chunk for the requested partition, and keeps
the read-once-per-iteration bookkeeping so multiple computation engines
can share a partition without synchronizing.
"""

from repro.store.chunk import Chunk, ChunkKind
from repro.store.device import HDD_RAID0, SSD_480GB, DeviceSpec
from repro.store.engine import StorageEngine
from repro.store.memstore import ChunkSet, MemoryChunkStore
from repro.store.filestore import FileChunkStore
from repro.store.fio import FioResult, effective_bandwidth, measure_sequential_bandwidth
from repro.store.placement import (
    CentralizedDirectory,
    HashedVertexPlacement,
    RandomPlacement,
)

__all__ = [
    "CentralizedDirectory",
    "Chunk",
    "ChunkKind",
    "ChunkSet",
    "DeviceSpec",
    "FileChunkStore",
    "FioResult",
    "effective_bandwidth",
    "measure_sequential_bandwidth",
    "HDD_RAID0",
    "HashedVertexPlacement",
    "MemoryChunkStore",
    "RandomPlacement",
    "SSD_480GB",
    "StorageEngine",
]

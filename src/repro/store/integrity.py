"""End-to-end chunk integrity: CRC32 seals and byzantine corruption.

Chaos' recovery story (Section 6.6) assumes fail-stop machines; on the
commodity clusters the paper targets, silent data corruption (disk
bit-rot, torn writes, NIC bit-flips) is a real additional failure mode.
This module gives every chunk a CRC32 seal computed over its identity
(partition / kind / index / size / records) and the bytes of its real
payload, so that any layer — storage engine, compute engine, restore
client — can verify a chunk cheaply on receipt.

``corrupt_chunk`` is the adversary: it produces a deep copy of a chunk
whose payload has been genuinely perturbed (a numeric cell changed)
while keeping the *stale* seal, so a hardened reader detects the damage
and an unhardened one (``integrity_checks=False``) silently computes
wrong answers.  Fault injection uses it for bit-flip / torn-write /
message-corruption faults; it must never be reachable from a fault-free
run.
"""

from __future__ import annotations

import copy
import zlib
from typing import Any, List, Optional

import numpy as np

from repro.store.chunk import Chunk

__all__ = [
    "chunk_checksum",
    "seal_chunk",
    "verify_chunk",
    "corrupt_chunk",
]


def _crc_bytes(crc: int, data: bytes) -> int:
    return zlib.crc32(data, crc)


def _crc_value(crc: int, value: Any) -> int:
    """Fold one payload node into the running CRC, deterministically."""
    if value is None:
        return _crc_bytes(crc, b"\x00none")
    if isinstance(value, np.ndarray):
        crc = _crc_bytes(crc, str(value.dtype).encode())
        crc = _crc_bytes(crc, repr(value.shape).encode())
        return _crc_bytes(crc, np.ascontiguousarray(value).tobytes())
    if isinstance(value, dict):
        crc = _crc_bytes(crc, b"\x00dict")
        for key in sorted(value, key=repr):
            crc = _crc_bytes(crc, repr(key).encode())
            crc = _crc_value(crc, value[key])
        return crc
    if isinstance(value, (list, tuple)):
        crc = _crc_bytes(crc, b"\x00seq")
        for item in value:
            crc = _crc_value(crc, item)
        return crc
    # Scalars (int / float / str / bool / enum) — repr is stable for the
    # types checkpoint payloads actually carry.
    return _crc_bytes(crc, repr(value).encode())


def chunk_checksum(chunk: Chunk) -> int:
    """CRC32 over a chunk's identity and payload bytes."""
    crc = 0
    header = (
        f"{chunk.partition}|{chunk.kind.value}|{chunk.index}"
        f"|{chunk.size}|{chunk.records}"
    )
    crc = _crc_bytes(crc, header.encode())
    return _crc_value(crc, chunk.payload)


def seal_chunk(chunk: Chunk) -> Chunk:
    """Stamp ``chunk.crc`` with the current checksum; returns the chunk."""
    chunk.crc = chunk_checksum(chunk)
    return chunk


def verify_chunk(chunk: Optional[Chunk]) -> bool:
    """True iff the chunk carries a seal that matches its content.

    Unsealed chunks (``crc is None``) verify trivially: phantom /
    model-mode chunks never carry payloads worth protecting, and
    requiring seals there would force every capacity run through the
    checksum path for no benefit.
    """
    if chunk is None or chunk.crc is None:
        return True
    return chunk_checksum(chunk) == chunk.crc


def _numeric_leaves(value: Any, out: List[np.ndarray]) -> None:
    if isinstance(value, np.ndarray) and value.size > 0:
        if np.issubdtype(value.dtype, np.number):
            out.append(value)
    elif isinstance(value, dict):
        for key in sorted(value, key=repr):
            _numeric_leaves(value[key], out)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _numeric_leaves(item, out)


def corrupt_chunk(chunk: Chunk) -> Chunk:
    """Deep copy of ``chunk`` with one payload cell perturbed, seal stale.

    Prefers a float array (perturbing a value keeps index arrays valid,
    so an unhardened run completes with *wrong* answers rather than
    crashing); falls back to zeroing the first cell of an integer array.
    A chunk with no numeric payload is returned as an unmodified copy —
    there is nothing to corrupt, and its seal still matches.
    """
    clone = Chunk(
        partition=chunk.partition,
        kind=chunk.kind,
        size=chunk.size,
        payload=copy.deepcopy(chunk.payload),
        index=chunk.index,
        records=chunk.records,
    )
    clone.crc = chunk.crc
    leaves: List[np.ndarray] = []
    _numeric_leaves(clone.payload, leaves)
    if not leaves:
        return clone
    floats = [a for a in leaves if np.issubdtype(a.dtype, np.floating)]
    target = floats[0] if floats else leaves[0]
    if np.issubdtype(target.dtype, np.floating):
        target.flat[0] = target.flat[0] * 2.0 + 1.0
    else:
        target.flat[0] = 0 if target.flat[0] != 0 else 1
    return clone

"""Chaos: scale-out graph processing from secondary storage (SOSP 2015).

A complete Python reproduction of Roy, Bindschaedler, Malicevic and
Zwaenepoel's Chaos — streaming partitions, the edge-centric GAS model,
chunked flat storage with uniform random placement, batched requests,
randomized work stealing and two-phase checkpointing — running on a
discrete-event model of the paper's cluster so that both the *results*
(functional, validated against reference implementations) and the
*scaling behaviour* (every table and figure of the evaluation) are
reproduced.

Quick start::

    from repro import rmat_graph, run_algorithm, PageRank, ClusterConfig

    graph = rmat_graph(14, seed=1)
    result = run_algorithm(PageRank(iterations=5), graph, machines=4)
    print(result.summary())
    ranks = result.values["rank"]

See README.md for the architecture overview and EXPERIMENTS.md for the
per-figure reproduction notes.
"""

from repro.algorithms import (
    BFS,
    KCore,
    MIS,
    SSSP,
    WCC,
    BeliefPropagation,
    Conductance,
    DriverResult,
    PageRank,
    SpMV,
    run_kcore_decomposition,
    run_mcst,
    run_scc,
)
from repro.baselines import run_giraph, run_xstream
from repro.core import (
    ChaosCluster,
    ClusterConfig,
    GasAlgorithm,
    GraphContext,
    JobResult,
    run_algorithm,
)
from repro.core.runtime import GraphSpec
from repro.graph import (
    EdgeList,
    data_commons_like,
    rmat_graph,
    to_undirected,
)
from repro.net import GIGE_1, GIGE_40, NetworkConfig
from repro.obs import Tracer, summarize_trace_file, write_chrome_trace
from repro.perf import (
    ActivityProfile,
    bfs_profile,
    extract_profile,
    fixed_profile,
    project_capacity,
)
from repro.store import HDD_RAID0, SSD_480GB, DeviceSpec

__version__ = "1.0.0"

__all__ = [
    "ActivityProfile",
    "BFS",
    "BeliefPropagation",
    "ChaosCluster",
    "ClusterConfig",
    "Conductance",
    "DeviceSpec",
    "DriverResult",
    "EdgeList",
    "GIGE_1",
    "GIGE_40",
    "GasAlgorithm",
    "GraphContext",
    "GraphSpec",
    "HDD_RAID0",
    "JobResult",
    "KCore",
    "MIS",
    "NetworkConfig",
    "PageRank",
    "SSD_480GB",
    "SSSP",
    "SpMV",
    "Tracer",
    "WCC",
    "bfs_profile",
    "data_commons_like",
    "extract_profile",
    "fixed_profile",
    "project_capacity",
    "rmat_graph",
    "run_algorithm",
    "run_giraph",
    "run_kcore_decomposition",
    "run_mcst",
    "run_scc",
    "run_xstream",
    "summarize_trace_file",
    "to_undirected",
    "write_chrome_trace",
]

"""Message transport over the modelled rack network.

The transport delivers opaque messages between machine endpoints,
charging serialization time on the sender's NIC egress, the switch
latency, and deserialization time on the receiver's NIC ingress.  Local
(self-addressed) messages are delivered with zero network cost, matching
the co-located computation/storage engine deployment of Section 7.

Endpoints register a :class:`repro.sim.resources.Mailbox` per service
name, so one machine can host several services (computation engine,
storage engine, barrier coordinator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.net.topology import NetworkConfig, Nic, Switch
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.resources import Mailbox


@dataclass
class Message:
    """A message in flight.

    ``payload`` is arbitrary Python data (the functional engine ships
    numpy arrays in it); ``size`` is the modelled wire size in bytes,
    which is what the hardware model charges for.
    """

    src: int
    dst: int
    service: str
    kind: str
    size: int
    payload: Any = None
    send_time: float = 0.0
    #: Vector-clock stamp attached by the happens-before sanitizer on
    #: synchronization messages; ``None`` when sanitizing is off (or the
    #: message is data-plane traffic that creates no ordering edge).
    clock: Any = None


class Network:
    """The cluster fabric: one NIC per machine plus the switch."""

    #: Fixed per-message protocol overhead in bytes (headers, framing).
    MESSAGE_OVERHEAD = 64

    def __init__(
        self,
        sim: Simulator,
        machines: int,
        config: NetworkConfig,
        tracer=None,
        sanitizer=None,
    ):
        if machines < 1:
            raise ValueError(f"need at least one machine, got {machines}")
        self.sim = sim
        self.machines = machines
        self.config = config
        self.switch = Switch(sim, config)
        self.nics = [Nic(sim, machine, config) for machine in range(machines)]
        self._mailboxes: Dict[Tuple[int, str], Mailbox] = {}
        self._san = (
            sanitizer if sanitizer is not None and sanitizer.enabled else None
        )
        self._trace_on = tracer is not None and tracer.enabled
        if self._trace_on:
            from repro.obs.tracer import TID_NIC_RX, TID_NIC_TX

            for machine, nic in enumerate(self.nics):
                nic.egress.enable_trace(
                    tracer.thread(machine, TID_NIC_TX, "nic.tx"), label="tx"
                )
                nic.ingress.enable_trace(
                    tracer.thread(machine, TID_NIC_RX, "nic.rx"), label="rx"
                )

    # -- service registry ----------------------------------------------

    def register(self, machine: int, service: str) -> Mailbox:
        """Create (or fetch) the mailbox for ``service`` on ``machine``."""
        key = (machine, service)
        if key not in self._mailboxes:
            self._mailboxes[key] = Mailbox(
                self.sim, name=f"m{machine}.{service}"
            )
        return self._mailboxes[key]

    def mailbox(self, machine: int, service: str) -> Mailbox:
        key = (machine, service)
        try:
            return self._mailboxes[key]
        except KeyError:
            raise SimulationError(
                f"no service {service!r} registered on machine {machine}"
            ) from None

    # -- sending ---------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        service: str,
        kind: str,
        size: int,
        payload: Any = None,
    ) -> Event:
        """Send a message; the returned event fires on *delivery*.

        Delivery places the message into the destination mailbox.  The
        sender does not block on delivery (fire and forget); callers that
        need completion semantics can wait on the returned event.
        """
        if not 0 <= dst < self.machines:
            raise SimulationError(f"invalid destination machine {dst}")
        message = Message(
            src=src,
            dst=dst,
            service=service,
            kind=kind,
            size=size,
            payload=payload,
            send_time=self.sim.now,
            clock=(
                self._san.on_send(src, kind)
                if self._san is not None
                else None
            ),
        )
        mailbox = self.mailbox(dst, service)
        delivered = Event(self.sim, name=f"deliver.{kind}")

        if src == dst:
            # Local delivery: intra-process handoff, no network cost.
            self.sim.schedule(0.0, self._deliver, mailbox, message, delivered)
            return delivered

        wire_size = size + self.MESSAGE_OVERHEAD
        label = f"tx:{kind}" if self._trace_on else None
        tx_done = self.nics[src].egress.service(wire_size, label=label)

        def after_tx(_event: Event) -> None:
            hop_latency = self.switch.forward(wire_size)
            self.sim.schedule(hop_latency, self._receive, dst, wire_size,
                              mailbox, message, delivered)

        tx_done.subscribe(after_tx)
        return delivered

    def _receive(
        self,
        dst: int,
        wire_size: int,
        mailbox: Mailbox,
        message: Message,
        delivered: Event,
    ) -> None:
        label = f"rx:{message.kind}" if self._trace_on else None
        rx_done = self.nics[dst].ingress.service(wire_size, label=label)
        rx_done.subscribe(lambda _e: self._deliver(mailbox, message, delivered))

    def _deliver(
        self, mailbox: Mailbox, message: Message, delivered: Event
    ) -> None:
        if self._san is not None and message.clock is not None:
            # Receipt of a synchronization message joins the sender's
            # vector clock into the destination machine (happens-before).
            self._san.on_receive(message.dst, message.clock)
        mailbox.put(message)
        delivered.trigger(message)

    # -- accounting ------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes that crossed the switch fabric."""
        return self.switch.bytes_forwarded

    def aggregate_nic_utilization(self, elapsed: float) -> float:
        """Mean egress utilization over all NICs."""
        if elapsed <= 0 or not self.nics:
            return 0.0
        total = sum(nic.egress.meter.utilization(elapsed) for nic in self.nics)
        return total / len(self.nics)

"""Message transport over the modelled rack network.

The transport delivers opaque messages between machine endpoints,
charging serialization time on the sender's NIC egress, the switch
latency, and deserialization time on the receiver's NIC ingress.  Local
(self-addressed) messages are delivered with zero network cost, matching
the co-located computation/storage engine deployment of Section 7.

Endpoints register a :class:`repro.sim.resources.Mailbox` per service
name, so one machine can host several services (computation engine,
storage engine, barrier coordinator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.net.topology import NetworkConfig, Nic, Switch
from repro.obs.causal import NULL_CAUSAL
from repro.obs.host import resolve_host_profiler
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.resources import Mailbox

#: Protocol transition annotations consumed by the state-machine
#: extractor (:mod:`repro.analysis.protocol.extract`): operation name ->
#: transition label.  ``msg.*`` ops are labeled send/receive
#: transitions; ``mailbox.bind`` associates a service with a role.
PROTOCOL_TRANSITIONS = {
    "send": "msg.send",
    "register": "mailbox.bind",
    "mailbox": "mailbox.lookup",
    "is_reachable": "membership.query",
}


@dataclass
class Message:
    """A message in flight.

    ``payload`` is arbitrary Python data (the functional engine ships
    numpy arrays in it); ``size`` is the modelled wire size in bytes,
    which is what the hardware model charges for.
    """

    src: int
    dst: int
    service: str
    kind: str
    size: int
    payload: Any = None
    send_time: float = 0.0
    #: Vector-clock stamp attached by the happens-before sanitizer on
    #: synchronization messages; ``None`` when sanitizing is off (or the
    #: message is data-plane traffic that creates no ordering edge).
    clock: Any = None
    #: Recovery epoch the sender belongs to.  Receivers fence stale
    #: traffic (a write straggling in from before a rollback) by
    #: comparing this against their own epoch; 0 for fault-free runs.
    epoch: int = 0
    #: Transport sequence number within the (src, dst, service) stream;
    #: drives receiver-side duplicate suppression.  ``None`` for local
    #: (same-machine) handoffs, which cannot be duplicated by the fabric.
    seq: Any = None
    #: Causal trace context ``(trace_id, span_id, parent_span_id)``
    #: stamped by the transport when causal tracing is on; ``None``
    #: otherwise.  Like ``clock`` it is a passive annotation: protocol
    #: logic never reads it, so traced runs stay byte-identical to
    #: untraced runs.
    ctx: Any = None


class _DedupWindow:
    """Per-stream duplicate filter: contiguous floor + out-of-order set.

    Everything ``<= floor`` has been delivered; ``seen`` holds delivered
    sequence numbers above the floor (reordering opens gaps; drops leave
    them forever, so the floor is force-advanced past a bounded window
    to keep ``seen`` small).
    """

    WINDOW = 4096

    __slots__ = ("floor", "seen")

    def __init__(self):
        self.floor = 0
        self.seen = set()

    def accept(self, seq: int) -> bool:
        """True iff ``seq`` is new; records it as delivered."""
        if seq <= self.floor or seq in self.seen:
            return False
        self.seen.add(seq)
        while self.floor + 1 in self.seen:
            self.floor += 1
            self.seen.discard(self.floor)
        if seq - self.WINDOW > self.floor:
            # Dropped messages leave permanent gaps; slide the floor so
            # the out-of-order set stays bounded.
            self.floor = seq - self.WINDOW
            self.seen = {s for s in self.seen if s > self.floor}
        return True


class _TransportFault:
    """One armed byzantine fabric fault at a receiving endpoint."""

    __slots__ = ("kind", "count", "delay")

    def __init__(self, kind: str, count: int, delay: float):
        if kind not in ("corrupt", "dup", "reorder"):
            raise SimulationError(f"unknown transport fault {kind!r}")
        if count < 1:
            raise SimulationError(f"fault count must be >= 1, got {count}")
        self.kind = kind
        self.count = count
        self.delay = delay


def _chunk_slot(message: Message):
    """Index of the Chunk inside a tuple payload, or None.

    Chunk-carrying wire formats: ``read_reply``/``vread_reply`` carry
    ``(request_id, chunk)``; ``write``/``vwrite`` carry ``(request_id,
    requester, reply_service, chunk)``.
    """
    from repro.store.chunk import Chunk

    payload = message.payload
    if not isinstance(payload, tuple):
        return None
    for slot, item in enumerate(payload):
        if isinstance(item, Chunk) and item.payload is not None:
            return slot
    return None


def _corrupt_in_place(message: Message) -> None:
    """Replace the chunk in a message payload with a corrupted copy."""
    from repro.store.integrity import corrupt_chunk

    slot = _chunk_slot(message)
    if slot is None:
        return
    payload = list(message.payload)
    payload[slot] = corrupt_chunk(payload[slot])
    message.payload = tuple(payload)


class Network:
    """The cluster fabric: one NIC per machine plus the switch."""

    #: Fixed per-message protocol overhead in bytes (headers, framing).
    MESSAGE_OVERHEAD = 64

    def __init__(
        self,
        sim: Simulator,
        machines: int,
        config: NetworkConfig,
        tracer=None,
        sanitizer=None,
        host=None,
        extra_endpoints: int = 0,
        integrity: bool = True,
    ):
        """``extra_endpoints`` adds management endpoints beyond the
        compute machines (the fault-injection runtime attaches its
        failure-detector monitor this way); they get NICs and mailboxes
        but are never placement targets — ``self.machines`` stays the
        compute machine count."""
        if machines < 1:
            raise ValueError(f"need at least one machine, got {machines}")
        if extra_endpoints < 0:
            raise ValueError("extra_endpoints must be >= 0")
        self.sim = sim
        self.machines = machines
        self.config = config
        self.switch = Switch(sim, config)
        self.nics = [
            Nic(sim, machine, config)
            for machine in range(machines + extra_endpoints)
        ]
        self._mailboxes: Dict[Tuple[int, str], Mailbox] = {}
        # Reachability per endpoint: False while an endpoint is crashed
        # or partitioned away.  Remote messages touching an unreachable
        # endpoint are dropped (fail-stop links: no queuing, no retry at
        # the transport layer — recovery is end-to-end, Section 6.6).
        self._reachable = [True] * (machines + extra_endpoints)
        #: Remote messages dropped because either end was unreachable.
        self.messages_dropped = 0
        # Integrity hardening: per-stream sequence numbers and receiver
        # side duplicate suppression (gated by config.integrity_checks).
        self._integrity = integrity
        self._seq: Dict[Tuple[int, int, str], int] = {}
        self._dedup: Dict[Tuple[int, str, int], _DedupWindow] = {}
        #: Duplicate deliveries filtered by the sequence-number window.
        self.duplicates_suppressed = 0
        # Armed byzantine fabric faults, keyed by receiving endpoint.
        self._pending_faults: Dict[int, list] = {}
        self.messages_corrupted = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self._san = (
            sanitizer if sanitizer is not None and sanitizer.enabled else None
        )
        # Host profiler: real cost of building each in-flight message
        # (the host-side analogue of the modelled copy cost).
        self._host = resolve_host_profiler(host)
        self._trace_on = tracer is not None and tracer.enabled
        #: Causal DAG recorder (message sends/deliveries become edges);
        #: the null recorder when tracing is off.
        self.causal = tracer.causal if self._trace_on else NULL_CAUSAL
        if self._trace_on:
            from repro.obs.tracer import TID_NIC_RX, TID_NIC_TX

            for machine, nic in enumerate(self.nics):
                nic.egress.enable_trace(
                    tracer.thread(machine, TID_NIC_TX, "nic.tx"), label="tx"
                )
                nic.ingress.enable_trace(
                    tracer.thread(machine, TID_NIC_RX, "nic.rx"), label="rx"
                )

    # -- service registry ----------------------------------------------

    def register(self, machine: int, service: str) -> Mailbox:
        """Create (or fetch) the mailbox for ``service`` on ``machine``."""
        key = (machine, service)
        if key not in self._mailboxes:
            self._mailboxes[key] = Mailbox(
                self.sim, name=f"m{machine}.{service}"
            )
        return self._mailboxes[key]

    def mailbox(self, machine: int, service: str) -> Mailbox:
        key = (machine, service)
        try:
            return self._mailboxes[key]
        except KeyError:
            raise SimulationError(
                f"no service {service!r} registered on machine {machine}"
            ) from None

    # -- fault state (reachability) --------------------------------------

    def set_reachable(self, endpoint: int, reachable: bool) -> None:
        """Mark an endpoint up or down for *remote* traffic.

        A down endpoint models a crashed or partitioned machine: remote
        messages from or to it are silently dropped (their delivery
        events never fire).  Local (self-addressed) delivery still works
        — a partitioned machine's engines keep talking to the co-located
        storage engine; only the network is cut.
        """
        if not 0 <= endpoint < len(self.nics):
            raise SimulationError(f"invalid endpoint {endpoint}")
        self._reachable[endpoint] = reachable

    def is_reachable(self, endpoint: int) -> bool:
        return self._reachable[endpoint]

    def _drop(self, message: Message) -> None:
        self.messages_dropped += 1

    # -- fault state (byzantine fabric faults) ----------------------------

    def inject_fault(
        self, endpoint: int, kind: str, count: int = 1, delay: float = 0.0
    ) -> None:
        """Arm a byzantine fault on the next ``count`` applicable
        messages *received* by ``endpoint``.

        ``kind`` is one of ``corrupt`` (perturb the chunk payload in
        flight — applies only to chunk-carrying messages, and stays
        armed until one arrives), ``dup`` (deliver the message twice,
        charging ingress twice), or ``reorder`` (hold the message at
        the switch for ``delay`` seconds, letting later traffic on the
        stream overtake it).
        """
        if not 0 <= endpoint < len(self.nics):
            raise SimulationError(f"invalid endpoint {endpoint}")
        fault = _TransportFault(kind, count, delay)
        self._pending_faults.setdefault(endpoint, []).append(fault)

    def _take_fault(self, dst: int, message: Message):
        """Consume and return the first armed fault applicable to
        ``message``, or None."""
        plan = self._pending_faults.get(dst)
        if not plan:
            return None
        for fault in plan:
            if fault.kind == "corrupt" and _chunk_slot(message) is None:
                continue  # stays armed for the next chunk-carrying message
            fault.count -= 1
            if fault.count == 0:
                plan.remove(fault)
                if not plan:
                    del self._pending_faults[dst]
            return fault
        return None

    # -- sending ---------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        service: str,
        kind: str,
        size: int,
        payload: Any = None,
        epoch: int = 0,
        parent: Any = None,
        attempt: int = 0,
    ) -> Event:
        """Send a message; the returned event fires on *delivery*.

        Delivery places the message into the destination mailbox.  The
        sender does not block on delivery (fire and forget); callers that
        need completion semantics can wait on the returned event.  If
        either endpoint is unreachable the message is dropped and the
        returned event never fires — callers needing progress guarantees
        must pair the event with a timeout (the fault-tolerant RPC
        pattern the computation engine uses).

        ``parent`` (a causal context or span id) and ``attempt`` (>0 for
        retries/resends) annotate the causal trace only; when causal
        tracing is off they are ignored entirely.
        """
        if not 0 <= dst < len(self.nics):
            raise SimulationError(f"invalid destination machine {dst}")
        with self._host.measure(src, "msg_copy"):
            message = Message(
                src=src,
                dst=dst,
                service=service,
                kind=kind,
                size=size,
                payload=payload,
                send_time=self.sim.now,
                clock=(
                    self._san.on_send(src, kind)
                    if self._san is not None
                    else None
                ),
                epoch=epoch,
            )
        if self.causal.enabled:
            message.ctx = self.causal.on_send(
                kind, src, dst, size, parent=parent, attempt=attempt
            )
        mailbox = self.mailbox(dst, service)
        delivered = Event(self.sim, name=f"deliver.{kind}")

        if src != dst:
            stream = (src, dst, service)
            self._seq[stream] = message.seq = self._seq.get(stream, 0) + 1

        if src == dst:
            # Local delivery: intra-process handoff, no network cost.
            self.sim.schedule(0.0, self._deliver, mailbox, message, delivered)
            return delivered

        if not (self._reachable[src] and self._reachable[dst]):
            # Fail-stop link: a dead sender emits nothing; a message for
            # a dead receiver is dropped without charging the fabric.
            self._drop(message)
            return delivered

        wire_size = size + self.MESSAGE_OVERHEAD
        label = f"tx:{kind}" if self._trace_on else None
        tx_done = self.nics[src].egress.service(wire_size, label=label)

        def after_tx(_event: Event) -> None:
            if not (self._reachable[src] and self._reachable[dst]):
                # Link state changed while the message sat in the egress
                # queue or crossed the switch: drop in flight.
                self._drop(message)
                return
            hop_latency = self.switch.forward(wire_size)
            self.sim.schedule(hop_latency, self._receive, dst, wire_size,
                              mailbox, message, delivered)

        tx_done.subscribe(after_tx)
        return delivered

    def _receive(
        self,
        dst: int,
        wire_size: int,
        mailbox: Mailbox,
        message: Message,
        delivered: Event,
        pristine: bool = True,
    ) -> None:
        if not self._reachable[dst]:
            # The receiver died while the message crossed the switch.
            self._drop(message)
            return
        if pristine:
            fault = self._take_fault(dst, message)
            if fault is not None:
                if fault.kind == "corrupt":
                    _corrupt_in_place(message)
                    self.messages_corrupted += 1
                elif fault.kind == "reorder":
                    # Hold the frame at the switch; later traffic on the
                    # stream overtakes it (bounded reordering).
                    self.messages_reordered += 1
                    self.sim.schedule(
                        fault.delay, self._receive, dst, wire_size,
                        mailbox, message, delivered, False,
                    )
                    return
                elif fault.kind == "dup":
                    # A second arrival of the same frame (same seq):
                    # charges ingress again, suppressed by the dedup
                    # window when hardening is on.
                    self.messages_duplicated += 1
                    self.sim.schedule(
                        0.0, self._receive, dst, wire_size,
                        mailbox, message, delivered, False,
                    )
        label = f"rx:{message.kind}" if self._trace_on else None
        rx_done = self.nics[dst].ingress.service(wire_size, label=label)
        rx_done.subscribe(lambda _e: self._deliver(mailbox, message, delivered))

    def _deliver(
        self, mailbox: Mailbox, message: Message, delivered: Event
    ) -> None:
        if self._integrity and message.seq is not None:
            stream = (message.dst, message.service, message.src)
            window = self._dedup.get(stream)
            if window is None:
                window = self._dedup[stream] = _DedupWindow()
            if not window.accept(message.seq):
                self.duplicates_suppressed += 1
                return
        if self._san is not None and message.clock is not None:
            # Receipt of a synchronization message joins the sender's
            # vector clock into the destination machine (happens-before).
            self._san.on_receive(message.dst, message.clock)
        if message.ctx is not None:
            self.causal.on_deliver(message.ctx)
        mailbox.put(message)
        if not delivered.triggered:
            delivered.trigger(message)

    # -- accounting ------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes that crossed the switch fabric."""
        return self.switch.bytes_forwarded

    def aggregate_nic_utilization(self, elapsed: float) -> float:
        """Mean egress utilization over the compute machines' NICs."""
        if elapsed <= 0 or not self.nics:
            return 0.0
        compute_nics = self.nics[: self.machines]
        total = sum(
            nic.egress.meter.utilization(elapsed) for nic in compute_nics
        )
        return total / len(compute_nics)

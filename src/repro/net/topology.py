"""Physical network topology: NICs and the top-of-rack switch.

The evaluation cluster (Section 8) connects 32 machines through 40 GigE
links to a single top-of-rack switch with full bisection bandwidth.  We
model:

* a :class:`Nic` per machine with independent FIFO egress and ingress
  pipes (full duplex), each of the configured line rate;
* a :class:`Switch` that, being non-blocking, contributes only a fixed
  propagation/forwarding latency.

Messages to *self* bypass the NIC entirely (Chaos runs computation and
storage engines in one process per machine; local requests do not touch
the network — Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.resources import FifoServer


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the rack network.

    ``bandwidth`` is the per-NIC line rate in bytes/second; ``latency``
    is the one-way message latency (propagation + switching + protocol
    stack) in seconds.
    """

    bandwidth: float
    latency: float
    name: str = "custom"

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")

    def round_trip(self) -> float:
        """Round-trip latency ``R_network`` used in Eq. 3 of the paper."""
        return 2.0 * self.latency


# 40 GigE: ~5 GB/s line rate, ~50 microseconds one-way latency over the
# 0MQ/TCP stack.  The paper measured SSD latency approximately equal to
# the 40 GigE round trip (Section 10.1, Figure 16 discussion).
GIGE_40 = NetworkConfig(bandwidth=5.0e9, latency=50e-6, name="40GigE")

# 1 GigE: ~125 MB/s line rate.  The paper notes the achieved throughput
# is ~1/4 of disk bandwidth, making the network the bottleneck (Fig 12).
GIGE_1 = NetworkConfig(bandwidth=0.125e9, latency=100e-6, name="1GigE")

# Dimensionally scaled presets for laptop-scale functional runs: same
# bandwidths, latencies scaled by 1/10 to match the scaled device models
# (see repro.store.device).  phi = 1 + R_net/R_storage is preserved.
GIGE_40_SCALED = NetworkConfig(bandwidth=5.0e9, latency=5e-6, name="40GigE-scaled")
GIGE_1_SCALED = NetworkConfig(bandwidth=0.125e9, latency=10e-6, name="1GigE-scaled")

# 1/100-latency presets matching the *_BENCH device models (see
# repro.store.device): phi = 1 + RTT/latency stays 2 on the SSD pair.
GIGE_40_BENCH = NetworkConfig(bandwidth=5.0e9, latency=0.5e-6, name="40GigE-bench")
GIGE_1_BENCH = NetworkConfig(bandwidth=0.125e9, latency=1e-6, name="1GigE-bench")


class Nic:
    """Full-duplex network interface: independent egress/ingress pipes."""

    def __init__(self, sim: Simulator, machine: int, config: NetworkConfig):
        self.sim = sim
        self.machine = machine
        self.config = config
        self.egress = FifoServer(
            sim, bandwidth=config.bandwidth, latency=0.0, name=f"nic{machine}.tx"
        )
        self.ingress = FifoServer(
            sim, bandwidth=config.bandwidth, latency=0.0, name=f"nic{machine}.rx"
        )

    def bytes_sent(self) -> int:
        return self.egress.meter.bytes_served

    def bytes_received(self) -> int:
        return self.ingress.meter.bytes_served


class Switch:
    """Non-blocking top-of-rack switch.

    Full bisection bandwidth means the switch fabric never queues under
    our workloads; it contributes the one-way latency only.  We still
    count bytes crossing the fabric for the network-volume metrics.
    """

    def __init__(self, sim: Simulator, config: NetworkConfig):
        self.sim = sim
        self.config = config
        self.bytes_forwarded = 0
        self.messages_forwarded = 0

    def forward(self, size: int) -> float:
        """Account for a message crossing the fabric; return added latency."""
        self.bytes_forwarded += size
        self.messages_forwarded += 1
        return self.config.latency

"""Deterministic bounded retry with seeded exponential backoff + jitter.

Every retried RPC in the engine (chunk reads, steal proposals, restore
reads, integrity re-requests) draws its wait schedule from here.  Two
properties matter:

* **Determinism** — the jitter RNG is seeded from ``(config.seed,
  machine, request_id)``, so a retried schedule is a pure function of
  the run's identity and the byte-identical recovery invariant holds.
* **Boundedness** — the schedule is geometric with a cap; after
  ``attempts`` waits it repeats the capped delay forever, so a caller
  polling a slow-but-alive peer keeps making progress without the
  unbounded blow-up a naive ``2**n`` gives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "RetryPolicy",
    "backoff_delays",
    "jittered_delay",
    "retry_rng_seed",
]

#: Protocol transition annotations consumed by the state-machine
#: extractor (:mod:`repro.analysis.protocol.extract`).  Labels starting
#: with ``timeout`` mark these as liveness escapes: a blocking wait in a
#: function that draws its schedule from one of them is *not* an
#: untimed wait (rule CHX021), because the enclosing retry loop always
#: wakes up again.
PROTOCOL_TRANSITIONS = {
    "jittered_delay": "timeout.backoff",
    "backoff_delays": "timeout.backoff",
    "delay": "timeout.backoff",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Geometric backoff schedule: ``base * factor**n``, capped."""

    base: float
    factor: float = 2.0
    cap: float = float("inf")
    #: Waits that grow; past this the capped delay repeats.
    attempts: int = 6
    #: Jitter fraction: each delay is scaled by ``1 - jitter*u`` with
    #: ``u`` uniform in [0, 1), i.e. jitter only ever *shortens* a wait
    #: so the policy's cap stays a true upper bound.
    jitter: float = 0.25

    def __post_init__(self):
        if self.base <= 0:
            raise ValueError(f"base must be positive, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The ``attempt``-th wait (0-based), with seeded jitter."""
        exponent = min(attempt, self.attempts - 1)
        raw = min(self.base * (self.factor ** exponent), self.cap)
        return raw * (1.0 - self.jitter * rng.random())


def retry_rng_seed(config_seed: int, machine: int, request_id: int) -> int:
    """Stable per-request jitter seed (same scheme as the engine RNGs)."""
    return config_seed * 1_000_003 + machine * 7919 + request_id * 31 + 17


def jittered_delay(
    policy: RetryPolicy,
    attempt: int,
    config_seed: int,
    machine: int,
    request_id: int,
) -> float:
    """One seeded jittered delay for the ``attempt``-th retry of an RPC.

    This is the single call every retry site in the engine and the
    recovery supervisor uses (chunk re-reads, corrupt-write resends,
    steal liveness probes, restore replica cycling), so the causal trace
    of a retry chain always reflects the exact same schedule the
    protocol executed.  The jitter RNG is freshly seeded per call from
    ``(config_seed, machine, request_id)`` — a pure function of the
    run's identity, independent of call order.
    """
    rng = random.Random(retry_rng_seed(config_seed, machine, request_id))
    return policy.delay(attempt, rng)


def backoff_delays(
    policy: RetryPolicy, config_seed: int, machine: int, request_id: int
) -> Iterator[float]:
    """Endless deterministic delay sequence for one logical RPC."""
    rng = random.Random(retry_rng_seed(config_seed, machine, request_id))
    attempt = 0
    while True:
        yield policy.delay(attempt, rng)
        attempt += 1

"""Network substrate: NICs, a full-bisection switch, and message transport.

Chaos assumes a rack network in which *"machine-to-machine network
bandwidth exceeds the bandwidth of a storage device and network switch
bandwidth exceeds the aggregate bandwidth of all storage devices"*
(Section 1).  This package models exactly the components that matter for
that assumption: per-machine full-duplex NICs (the 40 GigE vs 1 GigE knob
of Figure 12) and a non-blocking top-of-rack switch with a fixed
propagation latency.
"""

from repro.net.topology import NetworkConfig, Nic, Switch, GIGE_1, GIGE_40
from repro.net.transport import Message, Network

__all__ = [
    "GIGE_1",
    "GIGE_40",
    "Message",
    "Network",
    "NetworkConfig",
    "Nic",
    "Switch",
]

"""Synthetic stand-in for the Data Commons hyperlink graph.

The paper's only real-world dataset is the 2014 Web Data Commons
hyperlink graph: 1.7 billion pages, 64 billion links (Section 8).  The
crawl itself is ~1 TB and cannot ship with a reproduction, so we generate
a *web-like* directed graph with the same qualitative profile:

* heavy-tailed (Zipf/power-law) out-degree — a few hub pages emit huge
  numbers of links;
* preferential-attachment-style in-degree skew — popular pages receive
  disproportionately many links;
* average degree matching the real dataset's ≈37.6 links/page (scaled).

Only the degree skew and directedness influence the engine (partition
size imbalance, update volume), so this preserves the behaviour Figure 9
measures.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

#: Real Data Commons 2014 statistics, for reference and scaling.
DATA_COMMONS_PAGES = 1_700_000_000
DATA_COMMONS_LINKS = 64_000_000_000
DATA_COMMONS_AVG_DEGREE = DATA_COMMONS_LINKS / DATA_COMMONS_PAGES


def data_commons_like(
    num_pages: int,
    avg_degree: float = 16.0,
    out_exponent: float = 2.2,
    in_exponent: float = 2.1,
    seed: int = 0,
) -> EdgeList:
    """Generate a directed web-like graph.

    Parameters
    ----------
    num_pages:
        Number of vertices (pages).
    avg_degree:
        Mean out-degree.  The real graph averages ~37.6; smaller values
        keep laptop-scale runs cheap while preserving skew.
    out_exponent, in_exponent:
        Power-law exponents for the out-/in-degree distributions (web
        graphs measure roughly 2.0-2.7).
    seed:
        Deterministic generation seed.
    """
    if num_pages < 2:
        raise ValueError("need at least two pages")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    rng = np.random.default_rng(seed)

    # Out-degrees: Zipf-distributed, clipped, then rescaled to the mean.
    raw = rng.zipf(out_exponent, size=num_pages).astype(np.float64)
    raw = np.minimum(raw, num_pages / 2)
    out_degrees = np.maximum(
        0, np.round(raw * (avg_degree / raw.mean()))
    ).astype(np.int64)
    num_edges = int(out_degrees.sum())
    if num_edges == 0:
        out_degrees[0] = 1
        num_edges = 1

    src = np.repeat(np.arange(num_pages, dtype=np.int64), out_degrees)

    # In-degree targets: sample destinations with Zipf popularity weights
    # over a random permutation of pages (so page id is uncorrelated with
    # popularity, like a crawl ordering).
    popularity = 1.0 / np.power(
        np.arange(1, num_pages + 1, dtype=np.float64), 1.0 / (in_exponent - 1.0)
    )
    popularity /= popularity.sum()
    ranked_pages = rng.permutation(num_pages)
    dst = ranked_pages[
        rng.choice(num_pages, size=num_edges, replace=True, p=popularity)
    ].astype(np.int64)

    # Remove self-links the way a crawler post-processor would.
    self_link = src == dst
    if self_link.any():
        dst[self_link] = (src[self_link] + 1) % num_pages

    order = rng.permutation(num_edges)
    return EdgeList(num_vertices=num_pages, src=src[order], dst=dst[order])

"""Graph substrate: generators, binary edge-list formats and utilities.

The paper's inputs are unsorted edge lists: synthetic RMAT graphs
(scale-n has 2^n vertices and 2^(n+4) edges) and the 2014 Data Commons
hyperlink graph (Section 8).  This package provides:

* :mod:`repro.graph.rmat` — the R-MAT recursive generator (Chakrabarti
  et al.), vectorized, with Graph500-style default skew;
* :mod:`repro.graph.edgelist` — the in-memory edge list plus the
  compact/non-compact binary wire formats the paper describes (4-byte
  vertex ids below 2^32 vertices, 8-byte above);
* :mod:`repro.graph.datasets` — a synthetic web-like graph standing in
  for the proprietary Data Commons crawl (same degree skew profile);
* :mod:`repro.graph.convert` — directed→undirected conversion and
  relabelling;
* :mod:`repro.graph.stats` — degrees and simple structural statistics.
"""

from repro.graph.convert import add_reverse_edges, permute_vertices, to_undirected
from repro.graph.datasets import data_commons_like
from repro.graph.edgelist import EdgeList, bytes_per_edge, read_edges, write_edges
from repro.graph.rmat import RmatParameters, rmat_edge_count, rmat_graph
from repro.graph.stats import degree_histogram, in_degrees, out_degrees

__all__ = [
    "EdgeList",
    "RmatParameters",
    "add_reverse_edges",
    "bytes_per_edge",
    "data_commons_like",
    "degree_histogram",
    "in_degrees",
    "out_degrees",
    "permute_vertices",
    "read_edges",
    "rmat_edge_count",
    "rmat_graph",
    "to_undirected",
    "write_edges",
]

"""R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos).

The paper's synthetic workloads are RMAT graphs: *"a scale-n RMAT graph
has 2^n vertices and 2^(n+4) edges"* (Section 8).  We use the standard
Graph500 skew (a=0.57, b=0.19, c=0.19, d=0.05), which produces the
heavy-tailed degree distribution responsible for the partition-level
load imbalance that Chaos' work stealing corrects.

Generation is fully vectorized: each of the ``scale`` recursion levels
resolves one bit of the source and destination ids for every edge at
once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.edgelist import EdgeList

#: Paper convention: edges per vertex in a scale-n RMAT graph (2^(n+4)/2^n).
EDGE_FACTOR = 16


@dataclass(frozen=True)
class RmatParameters:
    """Quadrant probabilities of the recursive matrix."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self):
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"RMAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("RMAT probabilities must be non-negative")


def rmat_edge_count(scale: int, edge_factor: int = EDGE_FACTOR) -> int:
    """Number of edges in a scale-``scale`` RMAT graph."""
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    return edge_factor * (2**scale)


def rmat_graph(
    scale: int,
    seed: int = 0,
    edge_factor: int = EDGE_FACTOR,
    params: Optional[RmatParameters] = None,
    weighted: bool = False,
    permute: bool = False,
) -> EdgeList:
    """Generate a scale-``scale`` RMAT graph (2^scale vertices).

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    seed:
        Seed for the numpy PCG64 generator; generation is deterministic.
    edge_factor:
        Edges per vertex (paper default 16).
    params:
        Quadrant probabilities (Graph500 defaults).
    weighted:
        Attach uniform(0, 1] float weights (for SSSP / MCST / SpMV / BP).
    permute:
        Apply a random vertex-id permutation.  Raw R-MAT correlates
        vertex id with degree, which — under Chaos' consecutive-range
        partitioning — yields the per-partition load skew the paper's
        work stealing corrects; the default keeps that skew.  Permuting
        decorrelates id and degree (useful as an ablation).
    """
    if params is None:
        params = RmatParameters()
    rng = np.random.default_rng(seed)
    num_vertices = 2**scale
    num_edges = rmat_edge_count(scale, edge_factor)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Per-level quadrant thresholds: P(right half) for src bit, and
    # conditional P(bottom half) for dst bit within each src-bit choice.
    p_src_one = params.c + params.d
    p_dst_one_given_src_zero = params.b / max(params.a + params.b, 1e-300)
    p_dst_one_given_src_one = params.d / max(params.c + params.d, 1e-300)
    for level in range(scale):
        src_bit = rng.random(num_edges) < p_src_one
        threshold = np.where(
            src_bit, p_dst_one_given_src_one, p_dst_one_given_src_zero
        )
        dst_bit = rng.random(num_edges) < threshold
        src = (src << 1) | src_bit.astype(np.int64)
        dst = (dst << 1) | dst_bit.astype(np.int64)

    if permute and num_vertices > 1:
        mapping = rng.permutation(num_vertices)
        src = mapping[src]
        dst = mapping[dst]

    weight = None
    if weighted:
        # Uniform on (0, 1] so zero-weight edges never arise (MCST ties).
        weight = 1.0 - rng.random(num_edges)

    return EdgeList(num_vertices=num_vertices, src=src, dst=dst, weight=weight)

"""Edge-list transformations.

*"If necessary, we convert directed to undirected graphs by adding a
reverse edge."* (Section 8).  Chaos' GAS variant scatters only over
outgoing edges, so an undirected graph is represented as a directed
graph containing both orientations of every edge.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList


def add_reverse_edges(edges: EdgeList) -> EdgeList:
    """Append the reverse of every edge (weights are duplicated)."""
    src = np.concatenate([edges.src, edges.dst])
    dst = np.concatenate([edges.dst, edges.src])
    weight = None
    if edges.weighted:
        weight = np.concatenate([edges.weight, edges.weight])
    return EdgeList(
        num_vertices=edges.num_vertices, src=src, dst=dst, weight=weight
    )


def to_undirected(edges: EdgeList, dedup: bool = True) -> EdgeList:
    """Symmetrize the graph; optionally collapse parallel edges.

    With ``dedup`` the result contains each undirected edge exactly
    twice (once per orientation, with *equal* weights — parallel edges
    collapse to the minimum weight) and no self-loops, which is what the
    undirected algorithms (BFS, WCC, MCST, MIS, SSSP) expect.
    """
    if not dedup:
        return add_reverse_edges(edges)
    lo = np.minimum(edges.src, edges.dst)
    hi = np.maximum(edges.src, edges.dst)
    proper = lo != hi  # drop self-loops
    lo, hi = lo[proper], hi[proper]
    key = lo * edges.num_vertices + hi
    if edges.weighted:
        weight = edges.weight[proper]
        # First occurrence in (key, weight) order = min weight per pair.
        order = np.lexsort((weight, key))
        _unique, first = np.unique(key[order], return_index=True)
        keep = order[first]
        lo, hi, weight = lo[keep], hi[keep], weight[keep]
        out_weight = np.concatenate([weight, weight])
    else:
        _unique, keep = np.unique(key, return_index=True)
        lo, hi = lo[keep], hi[keep]
        out_weight = None
    return EdgeList(
        num_vertices=edges.num_vertices,
        src=np.concatenate([lo, hi]),
        dst=np.concatenate([hi, lo]),
        weight=out_weight,
    )


def permute_vertices(edges: EdgeList, seed: int = 0) -> EdgeList:
    """Relabel vertices by a uniform random permutation."""
    rng = np.random.default_rng(seed)
    mapping = rng.permutation(edges.num_vertices)
    return EdgeList(
        num_vertices=edges.num_vertices,
        src=mapping[edges.src],
        dst=mapping[edges.dst],
        weight=edges.weight.copy() if edges.weighted else None,
    )

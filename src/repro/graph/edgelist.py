"""Edge lists and the paper's binary input formats.

*"Input to the computation consists of an unsorted edge list, with each
edge represented by its source and target vertex and an optional weight.
Graphs with fewer than 2^32 vertices are represented in compact format,
with 4 bytes for each vertex and for the weight, if any.  Graphs with
more vertices are represented in non-compact format, using 8 bytes
instead."* (Section 8)

The in-memory representation is structure-of-arrays (numpy) for
vectorized processing by the engines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Threshold above which the non-compact (8-byte) format is required.
COMPACT_VERTEX_LIMIT = 2**32


def bytes_per_edge(num_vertices: int, weighted: bool) -> int:
    """On-storage bytes for one edge in the paper's wire format."""
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    field_size = 4 if num_vertices < COMPACT_VERTEX_LIMIT else 8
    fields = 3 if weighted else 2
    return field_size * fields


def _edge_dtype(num_vertices: int, weighted: bool) -> np.dtype:
    vertex = np.uint32 if num_vertices < COMPACT_VERTEX_LIMIT else np.uint64
    fields = [("src", vertex), ("dst", vertex)]
    if weighted:
        fields.append(("weight", np.float32 if vertex == np.uint32 else np.float64))
    return np.dtype(fields)


@dataclass
class EdgeList:
    """An unsorted edge list: the sole input format of Chaos.

    Attributes
    ----------
    num_vertices:
        Number of vertices; ids are ``0 .. num_vertices-1``.
    src, dst:
        int64 arrays of equal length (one entry per edge).
    weight:
        Optional float64 array of per-edge weights.
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weight: Optional[np.ndarray] = None

    def __post_init__(self):
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError(
                f"src/dst length mismatch: {self.src.shape} vs {self.dst.shape}"
            )
        if self.weight is not None:
            self.weight = np.asarray(self.weight, dtype=np.float64)
            if self.weight.shape != self.src.shape:
                raise ValueError("weight length must match edge count")
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if self.src.size:
            top = max(int(self.src.max()), int(self.dst.max()))
            if top >= self.num_vertices:
                raise ValueError(
                    f"vertex id {top} out of range for {self.num_vertices} vertices"
                )
            if int(self.src.min()) < 0 or int(self.dst.min()) < 0:
                raise ValueError("negative vertex ids are not allowed")

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def weighted(self) -> bool:
        return self.weight is not None

    def storage_bytes(self) -> int:
        """Input size on storage in the paper's wire format."""
        return self.num_edges * bytes_per_edge(self.num_vertices, self.weighted)

    def subset(self, mask_or_index: np.ndarray) -> "EdgeList":
        """A new edge list containing the selected edges."""
        weight = self.weight[mask_or_index] if self.weighted else None
        return EdgeList(
            num_vertices=self.num_vertices,
            src=self.src[mask_or_index],
            dst=self.dst[mask_or_index],
            weight=weight,
        )

    def shuffled(self, rng: np.random.Generator) -> "EdgeList":
        """The same edges in a uniformly random order (unsorted input)."""
        order = rng.permutation(self.num_edges)
        return self.subset(order)

    def __repr__(self) -> str:
        kind = "weighted" if self.weighted else "unweighted"
        return (
            f"EdgeList(|V|={self.num_vertices}, |E|={self.num_edges}, {kind})"
        )


def write_edges(edges: EdgeList, path: str) -> int:
    """Write the edge list in the paper's binary format; return byte size."""
    dtype = _edge_dtype(edges.num_vertices, edges.weighted)
    record = np.empty(edges.num_edges, dtype=dtype)
    record["src"] = edges.src
    record["dst"] = edges.dst
    if edges.weighted:
        record["weight"] = edges.weight
    record.tofile(path)
    return record.nbytes


def read_edges(path: str, num_vertices: int, weighted: bool) -> EdgeList:
    """Read a binary edge list written by :func:`write_edges`.

    The format is self-describing only given ``num_vertices`` and
    ``weighted`` (exactly like the raw inputs the paper consumes).
    """
    dtype = _edge_dtype(num_vertices, weighted)
    size = os.path.getsize(path)
    if size % dtype.itemsize != 0:
        raise ValueError(
            f"{path}: size {size} is not a multiple of record size {dtype.itemsize}"
        )
    record = np.fromfile(path, dtype=dtype)
    weight = record["weight"].astype(np.float64) if weighted else None
    return EdgeList(
        num_vertices=num_vertices,
        src=record["src"].astype(np.int64),
        dst=record["dst"].astype(np.int64),
        weight=weight,
    )

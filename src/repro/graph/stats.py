"""Structural statistics of edge lists.

Used by tests (validating generator skew), by the streaming-partition
pre-processor (per-partition edge counts drive the load-imbalance
experiments) and by some algorithms (PageRank needs out-degrees).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.edgelist import EdgeList


def out_degrees(edges: EdgeList) -> np.ndarray:
    """Out-degree of every vertex (int64 array of length |V|)."""
    return np.bincount(edges.src, minlength=edges.num_vertices).astype(np.int64)


def in_degrees(edges: EdgeList) -> np.ndarray:
    """In-degree of every vertex (int64 array of length |V|)."""
    return np.bincount(edges.dst, minlength=edges.num_vertices).astype(np.int64)


def degree_histogram(degrees: np.ndarray) -> Dict[int, int]:
    """Map degree value -> number of vertices with that degree."""
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def gini_coefficient(degrees: np.ndarray) -> float:
    """Gini coefficient of the degree distribution (0 = uniform, →1 = skewed).

    A cheap scalar summary of skew, used to sanity-check that RMAT and
    the synthetic web graph are meaningfully imbalanced.
    """
    if degrees.size == 0:
        return 0.0
    sorted_degrees = np.sort(degrees.astype(np.float64))
    total = sorted_degrees.sum()
    if total == 0:
        return 0.0
    n = sorted_degrees.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * sorted_degrees).sum()) / (n * total) - (n + 1) / n)


def partition_edge_counts(edges: EdgeList, boundaries: np.ndarray) -> np.ndarray:
    """Edges per vertex-range partition (partition of the *source* vertex).

    ``boundaries`` is the array of partition start ids with a final
    sentinel equal to |V| (see :mod:`repro.partition.streaming`).
    """
    partition_of = np.searchsorted(boundaries, edges.src, side="right") - 1
    return np.bincount(partition_of, minlength=len(boundaries) - 1).astype(np.int64)

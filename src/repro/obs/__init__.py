"""Observability: tracing, time-series telemetry and trace exporters.

Four layers of increasing interpretation — spans, interval attribution,
host profiling, causal chains:

* :mod:`repro.obs.tracer` — a zero-cost-when-disabled :class:`Tracer`
  keyed to the simulated clock, recording typed spans, instants and
  counters on per-machine engine/device/NIC tracks;
* :mod:`repro.obs.critpath` — the bottleneck-attribution analyzer: an
  exact per-machine decomposition of wall clock into resource
  categories, the Eq. 4 utilization check and the straggler detector;
* :mod:`repro.obs.host` — real host wall/CPU time per engine phase
  next to the simulated spans (the sim-to-host skew table);
* :mod:`repro.obs.causal` — message-level causal tracing: every
  simulated message carries a ``(trace, span, parent)`` context, the
  full causal DAG serializes into the trace, and the slowest-chain
  analyzer names the exact chain that bound each barrier
  (cross-checked against critpath's decomposition).

Supporting modules:

* :mod:`repro.obs.counters` — :class:`CounterRegistry` time series plus
  the :class:`ResourceSampler` process that snapshots device and NIC
  meters periodically (Fig. 5-style utilization timelines from a live
  run);
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — Chrome/Perfetto
  ``trace_event`` JSON (including causal ``flow`` arrows), flat CSV of
  every time series, and the terminal/JSON summary behind
  ``repro trace-report`` and ``repro trace query``;
* :mod:`repro.obs.bench` — benchmark snapshots (``BENCH_<label>.json``)
  and the snapshot-diff regression gate behind ``repro bench``.  Import
  it as ``repro.obs.bench`` (not re-exported here: it pulls in the full
  runtime, which would cycle back into this package at init time).

Typical use::

    from repro import ClusterConfig, PageRank, rmat_graph, run_algorithm
    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer(sample_interval=1e-3)
    result = run_algorithm(PageRank(iterations=5), rmat_graph(12),
                           machines=4, tracer=tracer)
    write_chrome_trace(tracer, "run.trace.json")   # open in Perfetto
"""

from repro.obs.causal import (
    NULL_CAUSAL,
    BarrierChain,
    CausalError,
    CausalRecorder,
    NullCausalRecorder,
    barrier_chains,
    causal_edges_from_flows,
    causal_events_from_trace,
    chain_of,
    cross_check,
    filter_events,
    format_chain,
    format_chain_table,
    parse_where,
    slowest_chains,
)
from repro.obs.counters import CounterRegistry, ResourceSampler, TimeSeries
from repro.obs.critpath import (
    ATTRIBUTION_CATEGORIES,
    AttributionError,
    AttributionReport,
    analyze_chrome_trace,
    analyze_events,
    analyze_tracer,
    format_attribution_report,
    format_iteration_table,
)
from repro.obs.export import (
    chrome_trace_dict,
    dumps_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
)
from repro.obs.host import (
    ENGINE_PHASES,
    HOST_SCHEMA_VERSION,
    NULL_HOST_PROFILER,
    HostMetricsRegistry,
    HostProfiler,
    NullHostProfiler,
    check_host_schema,
    format_host_report,
    parse_collapsed_stack,
    to_collapsed_stack,
    to_prometheus,
    validate_prometheus,
)
from repro.obs.report import (
    RECOVERY_CATEGORIES,
    RECOVERY_WALL_CATEGORIES,
    TraceSummary,
    format_trace_report,
    load_trace,
    summarize_trace,
    summarize_trace_file,
    summary_to_dict,
    trace_report_json,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NULL_TRACK,
    TID_CPU,
    TID_DEVICE,
    TID_ENGINE,
    TID_JOB,
    TID_NIC_RX,
    TID_NIC_TX,
    NullTracer,
    TraceError,
    Tracer,
    Track,
)

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "AttributionError",
    "AttributionReport",
    "BarrierChain",
    "CausalError",
    "CausalRecorder",
    "CounterRegistry",
    "ENGINE_PHASES",
    "HOST_SCHEMA_VERSION",
    "HostMetricsRegistry",
    "HostProfiler",
    "NULL_CAUSAL",
    "NULL_HOST_PROFILER",
    "NULL_TRACER",
    "NULL_TRACK",
    "NullCausalRecorder",
    "NullHostProfiler",
    "NullTracer",
    "RECOVERY_CATEGORIES",
    "RECOVERY_WALL_CATEGORIES",
    "ResourceSampler",
    "TID_CPU",
    "TID_DEVICE",
    "TID_ENGINE",
    "TID_JOB",
    "TID_NIC_RX",
    "TID_NIC_TX",
    "TimeSeries",
    "analyze_chrome_trace",
    "analyze_events",
    "analyze_tracer",
    "barrier_chains",
    "causal_edges_from_flows",
    "causal_events_from_trace",
    "chain_of",
    "cross_check",
    "filter_events",
    "format_attribution_report",
    "format_iteration_table",
    "TraceError",
    "TraceSummary",
    "Tracer",
    "Track",
    "check_host_schema",
    "chrome_trace_dict",
    "dumps_chrome_trace",
    "format_chain",
    "format_chain_table",
    "format_host_report",
    "format_trace_report",
    "load_trace",
    "parse_collapsed_stack",
    "parse_where",
    "slowest_chains",
    "summarize_trace",
    "summarize_trace_file",
    "summary_to_dict",
    "to_collapsed_stack",
    "to_prometheus",
    "trace_report_json",
    "validate_prometheus",
    "write_chrome_trace",
    "write_counters_csv",
]

"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and flat CSV.

The JSON exporter emits the Trace Event Format that both the legacy
``chrome://tracing`` viewer and Perfetto (https://ui.perfetto.dev) load
directly: a ``traceEvents`` list whose entries carry ``ph`` (phase),
``ts`` (microseconds), ``pid``/``tid`` (track), ``name`` and optional
``cat``/``dur``/``args``.  Process and thread naming uses the standard
``M`` metadata events.

Output is deterministic: events are ordered by timestamp with a stable
tie-break on recording order (itself deterministic for a fixed seed),
object keys are sorted, and no wall-clock data is embedded — two runs
with the same seed serialize to byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.tracer import TID_NIC_RX, TID_NIC_TX, Tracer

#: Seconds → Trace Event Format microseconds.
_US = 1e6


def _flow_events(causal_events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Chrome ``flow`` event pairs (ph ``s``/``f``) for delivered messages.

    One arrow per message: the start binds to the sender's NIC-TX track
    at dispatch time, the finish to the receiver's NIC-RX track at
    delivery, matched by ``id``.  Perfetto draws these as arrows across
    tracks, making the causal DAG visible in the timeline view.
    """
    flows: List[Dict[str, Any]] = []
    for event in causal_events:
        if event.get("kind") != "msg" or event.get("t1") is None:
            continue
        name = event.get("cat") or "msg"
        common = {"cat": "causal", "name": name, "id": event["id"]}
        flows.append(
            {
                "ph": "s",
                "pid": event["src"],
                "tid": TID_NIC_TX,
                "ts": event["t0"] * _US,
                **common,
            }
        )
        flows.append(
            {
                "ph": "f",
                "bp": "e",  # bind to the enclosing slice's end
                "pid": event["dst"],
                "tid": TID_NIC_RX,
                "ts": event["t1"] * _US,
                **common,
            }
        )
    return flows


def chrome_trace_dict(
    tracer: Tracer, host_metrics: Dict[str, Any] = None
) -> Dict[str, Any]:
    """Build the Trace Event Format document for a recorded trace.

    ``host_metrics`` (a :meth:`repro.obs.host.HostMetricsRegistry.to_dict`
    document) is embedded under a top-level ``hostMetrics`` key — viewers
    ignore unknown keys, and ``trace-report`` renders the sim-to-host
    skew table from it.  Embedding host data forfeits the byte-identical
    guarantee below, which is why it is opt-in (``--host-profile``).
    """
    events: List[Dict[str, Any]] = []
    for pid in sorted(tracer.processes):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": tracer.processes[pid]},
            }
        )
    for pid, tid in sorted(tracer.threads):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": tracer.threads[(pid, tid)]},
            }
        )
    timed: List[Dict[str, Any]] = []
    for raw in tracer.events:
        event = dict(raw)
        event["ts"] = raw["ts"] * _US
        if "dur" in event:
            event["dur"] = raw["dur"] * _US
        if event["ph"] == "i":
            event["s"] = "t"  # thread-scoped instant
        timed.append(event)
    causal_events = list(getattr(tracer.causal, "events", []))
    timed.extend(_flow_events(causal_events))
    events.extend(sorted(timed, key=lambda e: e["ts"]))
    document: Dict[str, Any] = {"displayTimeUnit": "ms", "traceEvents": events}
    if causal_events:
        # Lossless causal DAG (times in seconds): flow events only carry
        # the delivered-message edges; analyses (slowest chains, trace
        # query) need parents, barriers and marks too.
        document["causalEvents"] = causal_events
    if host_metrics is not None:
        document["hostMetrics"] = host_metrics
    return document


def dumps_chrome_trace(tracer: Tracer, host_metrics=None) -> str:
    """Serialize deterministically (sorted keys, compact separators)."""
    return json.dumps(
        chrome_trace_dict(tracer, host_metrics=host_metrics),
        sort_keys=True,
        separators=(",", ":"),
    )


def write_chrome_trace(tracer: Tracer, path: str, host_metrics=None) -> int:
    """Write the trace JSON to ``path``; returns the byte count."""
    text = dumps_chrome_trace(tracer, host_metrics=host_metrics)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text)


def write_counters_csv(tracer: Tracer, path: str) -> int:
    """Flatten every counter time series to ``series,ts,value`` rows.

    Timestamps are simulated seconds.  Rows are grouped by series (name
    order) and time-ordered within a series, ready for a one-line
    pivot/plot in pandas, gnuplot or a spreadsheet.
    """
    lines = ["series,ts,value"]
    for name, ts, value in tracer.registry.rows():
        lines.append(f"{name},{ts!r},{value!r}")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    return len(lines) - 1

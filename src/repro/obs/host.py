"""Host-side profiling: real wall/CPU time per engine phase.

Everything else in ``repro.obs`` measures *simulated* time.  This
module measures what the interpreter actually spends executing the
engine's synchronous kernels — the scatter/gather/apply user functions,
chunk serialize/deserialize, message copies — so simulated spans and
host cost line up span-for-span.  Phases whose host share exceeds
their sim share are exactly the vectorization targets of ROADMAP
item 1.

Design constraints:

* Host clocks are only read through :mod:`repro.obs.hostclock` (the
  single CHX001/CHX008 exemption in the sim packages).
* Measured sections must be synchronous leaf regions.  The simulator
  interleaves all machines on one thread, so wrapping a sim *span*
  (begin ... yield ... end) would attribute other machines' host time
  to it; the engines therefore wrap only plain function calls that
  never yield.
* Profiling must not perturb the simulation: the profiler only reads
  clocks and accumulates into its own registry, so final vertex values
  are byte-identical with and without ``--host-profile`` (tested).

The registry is keyed ``(machine, phase, iteration)``.  Measured
intervals never nest (leaf regions), but a depth guard makes the
region total robust anyway: only depth-0 intervals accumulate into
``region_wall_ns``, so the per-phase wall times sum to the profiled
region total by construction.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs import hostclock

#: Version of the host metrics JSON document.
HOST_SCHEMA_VERSION = 1

#: The GAS kernel phases (mirrors ``repro.core.gas.GAS_PHASES``; kept
#: literal here so ``obs`` does not import ``core`` at module load).
GAS_HOST_PHASES = ("scatter", "gather", "apply")

#: Every phase the engines instrument.
ENGINE_PHASES = GAS_HOST_PHASES + ("serialize", "deserialize", "msg_copy")

#: Sim-time span name that corresponds to each host phase (for the
#: sim-to-host skew table).  Phases without an entry have no single
#: sim-span counterpart (their sim cost lives on device/NIC tracks).
SIM_SPAN_FOR_PHASE = {
    "scatter": "scatter",
    "gather": "gather",
    "apply": "merge_apply",
}


class _PhaseEntry:
    """Accumulated host cost of one (machine, phase, iteration) cell."""

    __slots__ = ("wall_ns", "cpu_ns", "calls", "records", "alloc_bytes")

    def __init__(self) -> None:
        self.wall_ns = 0
        self.cpu_ns = 0
        self.calls = 0
        self.records = 0
        self.alloc_bytes = 0


class HostMetricsRegistry:
    """Structured host metrics keyed by (machine, phase, iteration)."""

    def __init__(self, trace_allocations: bool = False):
        self.trace_allocations = trace_allocations
        #: Stable join keys identifying the run that produced these
        #: metrics (``{"algorithm": …, "machines": …, "seed": …}``).
        #: ``check --kernel-report --host-json`` joins its static
        #: kernel table against the document on ``job.algorithm`` plus
        #: the per-row ``phase`` names, so downstream tools never have
        #: to guess which run a metrics file belongs to.
        self.job: Optional[dict] = None
        self._entries: Dict[Tuple[int, str, int], _PhaseEntry] = {}
        #: Wall/CPU nanoseconds of the profiled region: the sum of all
        #: *top-level* measured intervals.  Because measured sections
        #: are leaves, per-phase wall times sum to this by construction.
        self.region_wall_ns = 0
        self.region_cpu_ns = 0
        self.region_intervals = 0
        #: Wall nanoseconds of the whole profiler session (run setup,
        #: sim bookkeeping, and the measured region together).
        self.session_wall_ns = 0

    def record(
        self,
        machine: int,
        phase: str,
        iteration: int,
        wall_ns: int,
        cpu_ns: int,
        records: int = 0,
        alloc_bytes: int = 0,
        top_level: bool = True,
    ) -> None:
        key = (machine, phase, iteration)
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _PhaseEntry()
        entry.wall_ns += wall_ns
        entry.cpu_ns += cpu_ns
        entry.calls += 1
        entry.records += records
        entry.alloc_bytes += alloc_bytes
        if top_level:
            self.region_wall_ns += wall_ns
            self.region_cpu_ns += cpu_ns
            self.region_intervals += 1

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[Tuple[int, str, int]]:
        return sorted(self._entries)

    def to_dict(self) -> dict:
        """The canonical JSON document (exporters all read this form)."""
        phases = []
        for key in sorted(self._entries):
            machine, phase, iteration = key
            entry = self._entries[key]
            row = {
                "machine": machine,
                "phase": phase,
                "iteration": iteration,
                "wall_seconds": entry.wall_ns / 1e9,
                "cpu_seconds": entry.cpu_ns / 1e9,
                "calls": entry.calls,
                "records": entry.records,
            }
            if self.trace_allocations:
                row["alloc_bytes"] = entry.alloc_bytes
            phases.append(row)

        by_phase: Dict[str, Dict[str, float]] = {}
        iteration_cells: Dict[int, Dict[str, float]] = {}
        for (machine, phase, iteration), entry in sorted(
            self._entries.items()
        ):
            agg = by_phase.setdefault(
                phase, {"wall_seconds": 0.0, "cpu_seconds": 0.0, "calls": 0}
            )
            agg["wall_seconds"] += entry.wall_ns / 1e9
            agg["cpu_seconds"] += entry.cpu_ns / 1e9
            agg["calls"] += entry.calls
            if phase == "scatter":
                cell = iteration_cells.setdefault(
                    iteration, {"edges": 0, "wall_seconds": 0.0}
                )
                cell["edges"] += entry.records
                cell["wall_seconds"] += entry.wall_ns / 1e9

        iterations = []
        total_edges = 0
        for iteration in sorted(iteration_cells):
            cell = iteration_cells[iteration]
            edges = int(cell["edges"])
            wall = cell["wall_seconds"]
            total_edges += edges
            iterations.append(
                {
                    "iteration": iteration,
                    "edges": edges,
                    "scatter_wall_seconds": wall,
                    "edges_per_sec": edges / wall if wall > 0 else 0.0,
                }
            )

        scatter_wall = by_phase.get("scatter", {}).get("wall_seconds", 0.0)
        region_wall = self.region_wall_ns / 1e9
        session_wall = self.session_wall_ns / 1e9
        doc = {
            "host_schema_version": HOST_SCHEMA_VERSION,
            "tracemalloc": self.trace_allocations,
            "region": {
                "wall_seconds": region_wall,
                "cpu_seconds": self.region_cpu_ns / 1e9,
                "intervals": self.region_intervals,
            },
            "session_wall_seconds": session_wall,
            "coverage": region_wall / session_wall if session_wall > 0 else 0.0,
            "phases": phases,
            "iterations": iterations,
            "totals": {
                "by_phase": {
                    phase: by_phase[phase] for phase in sorted(by_phase)
                },
                "edges": total_edges,
                "edges_per_sec": (
                    total_edges / scatter_wall if scatter_wall > 0 else 0.0
                ),
            },
        }
        if self.job is not None:
            doc["job"] = dict(self.job)
        return doc


class _Measurement:
    """Context manager timing one synchronous leaf section."""

    __slots__ = (
        "_profiler",
        "_machine",
        "_phase",
        "_iteration",
        "_records",
        "_top",
        "_wall0",
        "_cpu0",
        "_alloc0",
    )

    def __init__(self, profiler, machine, phase, iteration, records):
        self._profiler = profiler
        self._machine = machine
        self._phase = phase
        self._iteration = iteration
        self._records = records

    def __enter__(self):
        profiler = self._profiler
        profiler._depth += 1
        self._top = profiler._depth == 1
        if profiler.trace_allocations:
            self._alloc0 = hostclock.allocated_bytes()
        else:
            self._alloc0 = 0
        self._cpu0 = hostclock.cpu_ns()
        self._wall0 = hostclock.wall_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        wall = hostclock.wall_ns() - self._wall0
        cpu = hostclock.cpu_ns() - self._cpu0
        profiler = self._profiler
        if profiler.trace_allocations:
            alloc = hostclock.allocated_bytes() - self._alloc0
        else:
            alloc = 0
        profiler._depth -= 1
        profiler.registry.record(
            self._machine,
            self._phase,
            self._iteration,
            wall_ns=wall,
            cpu_ns=cpu,
            records=self._records,
            alloc_bytes=alloc,
            top_level=self._top,
        )
        return False


class _NullMeasurement:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_MEASUREMENT = _NullMeasurement()


class HostProfiler:
    """Measures real wall/CPU time of engine phases during a run.

    One profiler serves the whole cluster (the simulator runs every
    machine on one thread); engines attribute measurements to their own
    machine id.  Store/net handlers carry no iteration, so the compute
    engines publish the current one via :meth:`set_iteration` — safe
    because execution is single-threaded and barrier-aligned.
    """

    enabled = True

    def __init__(self, trace_allocations: bool = False):
        self.trace_allocations = trace_allocations
        self.registry = HostMetricsRegistry(
            trace_allocations=trace_allocations
        )
        self.iteration = 0
        self._depth = 0
        if trace_allocations:
            hostclock.start_allocation_tracing()
        self._session_start = hostclock.wall_ns()

    def set_iteration(self, iteration: int) -> None:
        self.iteration = iteration

    def measure(
        self,
        machine: int,
        phase: str,
        iteration: Optional[int] = None,
        records: int = 0,
    ) -> _Measurement:
        if iteration is None:
            iteration = self.iteration
        return _Measurement(self, machine, phase, iteration, records)

    def finalize(self) -> HostMetricsRegistry:
        """Close the session window; returns the registry."""
        self.registry.session_wall_ns = (
            hostclock.wall_ns() - self._session_start
        )
        if self.trace_allocations:
            hostclock.stop_allocation_tracing()
        return self.registry


class NullHostProfiler:
    """Zero-cost stand-in when host profiling is off."""

    enabled = False
    iteration = 0

    def set_iteration(self, iteration: int) -> None:
        return None

    def measure(
        self,
        machine: int,
        phase: str,
        iteration: Optional[int] = None,
        records: int = 0,
    ) -> _NullMeasurement:
        return _NULL_MEASUREMENT

    def finalize(self) -> None:
        return None


NULL_HOST_PROFILER = NullHostProfiler()


def resolve_host_profiler(host) -> "HostProfiler | NullHostProfiler":
    """The constructor-side guard every engine applies to ``host=``."""
    if host is not None and host.enabled:
        return host
    return NULL_HOST_PROFILER


# -- exporters -----------------------------------------------------------
#
# All exporters read the canonical JSON document (`registry.to_dict()`)
# and return strings; printing is the CLI's job (CHX007).


def to_collapsed_stack(doc: dict) -> str:
    """Collapsed-stack flamegraph text: ``machineM;phase;iterI <us>``.

    One line per (machine, phase, iteration) cell, weight = host wall
    time in integer microseconds (flamegraph.pl-compatible).
    """
    lines = []
    for row in doc["phases"]:
        weight = int(round(row["wall_seconds"] * 1e6))
        lines.append(
            f"machine{row['machine']};{row['phase']};"
            f"iter{row['iteration']} {weight}"
        )
    return "\n".join(lines) + "\n" if lines else ""


def parse_collapsed_stack(text: str) -> Dict[Tuple[int, str, int], int]:
    """Inverse of :func:`to_collapsed_stack` (round-trip tests)."""
    tree: Dict[Tuple[int, str, int], int] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        stack, weight = line.rsplit(" ", 1)
        frames = stack.split(";")
        if len(frames) != 3:
            raise ValueError(f"collapsed stack line has {len(frames)} frames: "
                             f"{line!r}")
        machine = int(frames[0].removeprefix("machine"))
        iteration = int(frames[2].removeprefix("iter"))
        key = (machine, frames[1], iteration)
        tree[key] = tree.get(key, 0) + int(weight)
    return tree


def to_prometheus(doc: dict, integrity: Optional[Dict[str, int]] = None) -> str:
    """Prometheus text exposition format (0.0.4).

    ``integrity`` (``JobResult.integrity``) adds the run's
    integrity/byzantine counters as one labelled family, so fleet
    dashboards see injected-fault pressure next to host cost.
    """
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    def labels(row: dict) -> str:
        return (
            f'{{machine="{row["machine"]}",phase="{row["phase"]}",'
            f'iteration="{row["iteration"]}"}}'
        )

    family(
        "chaos_host_phase_wall_seconds",
        "counter",
        "Host wall-clock seconds spent in an engine phase.",
    )
    for row in doc["phases"]:
        lines.append(
            f"chaos_host_phase_wall_seconds{labels(row)} "
            f"{row['wall_seconds']:.9f}"
        )
    family(
        "chaos_host_phase_cpu_seconds",
        "counter",
        "Host process CPU seconds spent in an engine phase.",
    )
    for row in doc["phases"]:
        lines.append(
            f"chaos_host_phase_cpu_seconds{labels(row)} "
            f"{row['cpu_seconds']:.9f}"
        )
    family(
        "chaos_host_phase_calls",
        "counter",
        "Measured intervals per engine phase.",
    )
    for row in doc["phases"]:
        lines.append(f"chaos_host_phase_calls{labels(row)} {row['calls']}")
    if doc.get("tracemalloc"):
        family(
            "chaos_host_phase_alloc_bytes",
            "gauge",
            "Net tracemalloc allocation delta per engine phase.",
        )
        for row in doc["phases"]:
            lines.append(
                f"chaos_host_phase_alloc_bytes{labels(row)} "
                f"{row['alloc_bytes']}"
            )
    family(
        "chaos_host_region_wall_seconds",
        "counter",
        "Host wall seconds of the whole profiled region.",
    )
    lines.append(
        f"chaos_host_region_wall_seconds "
        f"{doc['region']['wall_seconds']:.9f}"
    )
    family(
        "chaos_host_region_cpu_seconds",
        "counter",
        "Host CPU seconds of the whole profiled region.",
    )
    lines.append(
        f"chaos_host_region_cpu_seconds {doc['region']['cpu_seconds']:.9f}"
    )
    family(
        "chaos_host_edges_per_sec",
        "gauge",
        "Host scatter throughput over the whole run.",
    )
    lines.append(
        f"chaos_host_edges_per_sec {doc['totals']['edges_per_sec']:.3f}"
    )
    if integrity:
        family(
            "chaos_integrity_events_total",
            "counter",
            "Integrity/byzantine events by kind (injected message faults "
            "and their transport/storage-level suppression).",
        )
        for kind in sorted(integrity):
            lines.append(
                f'chaos_integrity_events_total{{kind="{kind}"}} '
                f"{int(integrity[kind])}"
            )
    return "\n".join(lines) + "\n"


_PROM_COMMENT = re.compile(
    r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$"
)
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})?'
    r" [0-9eE.+-]+$"
)


def validate_prometheus(text: str) -> List[str]:
    """Line-format check of a text exposition; returns error strings."""
    errors: List[str] = []
    declared: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not _PROM_COMMENT.match(line):
                errors.append(f"line {number}: malformed comment: {line!r}")
            elif line.startswith("# TYPE "):
                _hash, _type, name, kind = line.split(" ", 3)
                declared[name] = kind
            continue
        if not _PROM_SAMPLE.match(line):
            errors.append(f"line {number}: malformed sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        if name not in declared:
            errors.append(
                f"line {number}: sample before # TYPE declaration: {name}"
            )
    return errors


#: (key, required type) pairs of the host metrics JSON document.
_SCHEMA_TOP = (
    ("host_schema_version", int),
    ("tracemalloc", bool),
    ("region", dict),
    ("session_wall_seconds", (int, float)),
    ("coverage", (int, float)),
    ("phases", list),
    ("iterations", list),
    ("totals", dict),
)
_SCHEMA_PHASE = (
    ("machine", int),
    ("phase", str),
    ("iteration", int),
    ("wall_seconds", (int, float)),
    ("cpu_seconds", (int, float)),
    ("calls", int),
    ("records", int),
)


def check_host_schema(doc: dict) -> List[str]:
    """Schema-check a host metrics document; returns error strings."""
    errors: List[str] = []
    for key, kind in _SCHEMA_TOP:
        if key not in doc:
            errors.append(f"missing top-level key: {key}")
        elif not isinstance(doc[key], kind):
            errors.append(f"{key}: expected {kind}, got {type(doc[key])}")
    if errors:
        return errors
    if doc["host_schema_version"] != HOST_SCHEMA_VERSION:
        errors.append(
            f"host_schema_version {doc['host_schema_version']} != "
            f"{HOST_SCHEMA_VERSION}"
        )
    for index, row in enumerate(doc["phases"]):
        for key, kind in _SCHEMA_PHASE:
            if key not in row:
                errors.append(f"phases[{index}]: missing {key}")
            elif not isinstance(row[key], kind):
                errors.append(f"phases[{index}].{key}: bad type")
        if doc["tracemalloc"] and "alloc_bytes" not in row:
            errors.append(f"phases[{index}]: missing alloc_bytes")
    for key in ("by_phase", "edges", "edges_per_sec"):
        if key not in doc["totals"]:
            errors.append(f"totals: missing {key}")
    if "job" in doc:  # optional stable join keys (see registry.job)
        job = doc["job"]
        if not isinstance(job, dict):
            errors.append("job: expected dict")
        else:
            if not isinstance(job.get("algorithm"), str):
                errors.append("job.algorithm: expected str")
            if not isinstance(job.get("machines"), int):
                errors.append("job.machines: expected int")
    return errors


# -- terminal report -----------------------------------------------------


def format_host_report(
    doc: dict,
    sim_spans: Optional[Dict[str, float]] = None,
    top: int = 10,
) -> str:
    """Render the host-profile section of ``trace-report`` / ``run``.

    ``sim_spans`` maps sim span names to total simulated seconds (from
    a :class:`repro.obs.report.TraceSummary`); when given, the report
    includes the sim-to-host skew table — phases whose host share
    exceeds their sim share are the vectorization targets.
    """
    lines: List[str] = []
    region = doc["region"]
    lines.append(
        f"host profile: region {region['wall_seconds']:.3f}s wall / "
        f"{region['cpu_seconds']:.3f}s cpu "
        f"({doc['coverage']:.1%} of session wall)"
    )
    lines.append(
        f"host throughput: {doc['totals']['edges_per_sec']:,.0f} edges/sec "
        f"({doc['totals']['edges']} edges scattered)"
    )

    by_phase = doc["totals"]["by_phase"]
    ranked = sorted(
        by_phase.items(), key=lambda kv: (-kv[1]["cpu_seconds"], kv[0])
    )[:top]
    host_wall_total = sum(agg["wall_seconds"] for agg in by_phase.values())
    sim_spans = sim_spans or {}
    mapped_sim_total = sum(
        sim_spans.get(span, 0.0) for span in SIM_SPAN_FOR_PHASE.values()
    )

    lines.append("")
    lines.append(f"hottest host phases by CPU time (top {len(ranked)}):")
    header = (
        f"  {'phase':<12s} {'host cpu':>10s} {'host wall':>10s} "
        f"{'calls':>8s} {'host%':>7s}  {'sim span':<12s} {'sim%':>7s} "
        f"{'skew':>7s}"
    )
    lines.append(header)
    for phase, agg in ranked:
        host_share = (
            agg["wall_seconds"] / host_wall_total if host_wall_total else 0.0
        )
        span = SIM_SPAN_FOR_PHASE.get(phase)
        if span is not None and mapped_sim_total > 0:
            sim_share = sim_spans.get(span, 0.0) / mapped_sim_total
            skew = host_share - sim_share
            sim_cols = f"{span:<12s} {sim_share:7.1%} {skew:+7.1%}"
        else:
            sim_cols = f"{'-':<12s} {'-':>7s} {'-':>7s}"
        lines.append(
            f"  {phase:<12s} {agg['cpu_seconds']:9.4f}s "
            f"{agg['wall_seconds']:9.4f}s {agg['calls']:8d} "
            f"{host_share:7.1%}  {sim_cols}"
        )
    if mapped_sim_total > 0:
        lines.append(
            "  (positive skew = host share exceeds sim share: "
            "vectorization target)"
        )

    if doc["iterations"]:
        lines.append("")
        lines.append("per-iteration host throughput (scatter):")
        for cell in doc["iterations"]:
            lines.append(
                f"  iter {cell['iteration']:<3d} {cell['edges']:>10d} edges "
                f"in {cell['scatter_wall_seconds']:.4f}s  "
                f"-> {cell['edges_per_sec']:,.0f} edges/sec"
            )
    return "\n".join(lines)

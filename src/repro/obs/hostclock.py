"""The single sanctioned host-clock entry point inside sim packages.

Everything under ``SIM_PACKAGES`` is forbidden from reading host time:
CHX001 flags ``time.*`` calls statically and CHX008 chases laundered
wall-clock values through the call graph, because host time leaking
into *simulation state* destroys determinism.  Host *profiling*
(:mod:`repro.obs.host`) still needs real clocks — so this module, and
only this module, may import :mod:`time` (and :mod:`tracemalloc`) from
inside a sim package.  Both lint layers exempt it by module path, and
``tests/test_host.py`` asserts the exemption stays this narrow: no
other sim-package module may import ``time``.

The values returned here must never influence simulation behaviour.
They flow into :class:`repro.obs.host.HostMetricsRegistry` and out
through exporters; nothing in ``core``/``sim``/``store``/``net`` reads
them back.
"""

from __future__ import annotations

import time
import tracemalloc


def wall_ns() -> int:
    """Monotonic host wall-clock, nanoseconds (``perf_counter_ns``)."""
    return time.perf_counter_ns()


def cpu_ns() -> int:
    """Process CPU time (user+system), nanoseconds."""
    return time.process_time_ns()


def start_allocation_tracing() -> None:
    """Begin tracemalloc tracing (idempotent)."""
    if not tracemalloc.is_tracing():
        tracemalloc.start()


def stop_allocation_tracing() -> None:
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def allocation_tracing_active() -> bool:
    return tracemalloc.is_tracing()


def allocated_bytes() -> int:
    """Currently traced allocation size in bytes (0 when not tracing)."""
    if not tracemalloc.is_tracing():
        return 0
    current, _peak = tracemalloc.get_traced_memory()
    return current

"""Trace analysis: summarize a saved Chrome-trace JSON file.

``repro trace-report out.json`` (and the test-suite reconciliation
against :class:`repro.core.metrics.Breakdown`) are built on
:func:`summarize_trace`, which replays a trace file into:

* per-device and per-NIC busy time and utilization (from the complete
  spans on the device/NIC tracks);
* a span summary aggregated by name (count, total, mean);
* per-category totals for the nested engine spans — the categories are
  the Figure 17 breakdown categories, so these totals reconcile with
  ``JobResult.total_breakdown()`` to float precision;
* instant-event counts (steal traffic, chunk completions) and counter
  series statistics (mean/peak of each sampled timeline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.metrics import BREAKDOWN_CATEGORIES

#: Categories the fault-injection subsystem stamps on traces: work
#: discarded by a rollback, checkpoint-restore time, bounded-backoff
#: waits of retried RPCs, and integrity-repair work (re-reads, write
#: rewrites, checkpoint re-replication).  Tracked separately from the
#: Figure 17 breakdown — they measure recovery, not steady-state
#: per-engine busy time.
RECOVERY_CATEGORIES = ("lost", "restore", "retry_wait", "integrity")

#: The subset of recovery categories that are non-overlapping wall-time
#: windows of the whole job (the Section 9.6 useful/lost/restore split).
#: ``retry_wait`` / ``integrity`` spans live on engine and storage
#: tracks and overlap those windows, so they are reported as additional
#: detail rows, not subtracted from the useful time.
RECOVERY_WALL_CATEGORIES = ("lost", "restore")

#: Trace Event Format microseconds → seconds.
_SECONDS = 1e-6


@dataclass
class SpanStats:
    """Aggregate of all spans sharing a name."""

    count: int = 0
    total: float = 0.0  # seconds

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class CounterStats:
    samples: int = 0
    total: float = 0.0
    peak: float = 0.0

    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0


@dataclass
class TraceSummary:
    """Everything the text report (and the tests) read from a trace."""

    #: End of the trace in simulated seconds (largest event timestamp).
    duration: float = 0.0
    processes: Dict[int, str] = field(default_factory=dict)
    threads: Dict[Tuple[int, int], str] = field(default_factory=dict)
    #: Busy seconds per (pid, tid) track, from complete ("X") spans.
    track_busy: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Bytes moved per (pid, tid) track (sum of span ``bytes`` args).
    track_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    #: Figure 17 category totals summed over every engine track.
    category_seconds: Dict[str, float] = field(default_factory=dict)
    instants: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, CounterStats] = field(default_factory=dict)
    #: Integrity/byzantine counters from the run's ``job.integrity``
    #: marker (``JobResult.integrity`` written into the trace).
    integrity: Dict[str, int] = field(default_factory=dict)
    begin_events: int = 0
    end_events: int = 0
    unbalanced_spans: int = 0
    total_events: int = 0

    def thread_name(self, pid: int, tid: int) -> str:
        return self.threads.get((pid, tid), f"tid{tid}")

    def utilization(self, pid: int, tid: int) -> float:
        if self.duration <= 0:
            return 0.0
        return self.track_busy.get((pid, tid), 0.0) / self.duration

    def tracks_matching(self, prefix: str) -> List[Tuple[int, int]]:
        """Tracks whose thread name starts with ``prefix``, pid-ordered."""
        return sorted(
            key for key, name in self.threads.items()
            if name.startswith(prefix)
        )


def load_trace(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    if "traceEvents" not in data:
        raise ValueError(f"{path}: not a Chrome trace (no 'traceEvents')")
    return data


def summarize_trace(trace: dict) -> TraceSummary:
    """Digest a loaded Trace Event Format document."""
    summary = TraceSummary()
    open_spans: Dict[Tuple[int, int], List[Tuple[str, str, float]]] = {}
    for event in trace["traceEvents"]:
        ph = event["ph"]
        key = (event["pid"], event["tid"])
        if ph == "M":
            if event["name"] == "process_name":
                summary.processes[event["pid"]] = event["args"]["name"]
            elif event["name"] == "thread_name":
                summary.threads[key] = event["args"]["name"]
            continue
        summary.total_events += 1
        ts = event["ts"] * _SECONDS
        end = ts
        if ph == "B":
            summary.begin_events += 1
            open_spans.setdefault(key, []).append(
                (event["name"], event.get("cat"), ts)
            )
        elif ph == "E":
            summary.end_events += 1
            stack = open_spans.get(key)
            if not stack:
                summary.unbalanced_spans += 1
                continue
            name, cat, begin_ts = stack.pop()
            duration = ts - begin_ts
            stats = summary.spans.setdefault(name, SpanStats())
            stats.count += 1
            stats.total += duration
            if cat in BREAKDOWN_CATEGORIES or cat in RECOVERY_CATEGORIES:
                summary.category_seconds[cat] = (
                    summary.category_seconds.get(cat, 0.0) + duration
                )
        elif ph == "X":
            duration = event.get("dur", 0.0) * _SECONDS
            end = ts + duration
            stats = summary.spans.setdefault(event["name"], SpanStats())
            stats.count += 1
            stats.total += duration
            cat = event.get("cat")
            if cat in RECOVERY_CATEGORIES:
                summary.category_seconds[cat] = (
                    summary.category_seconds.get(cat, 0.0) + duration
                )
            summary.track_busy[key] = (
                summary.track_busy.get(key, 0.0) + duration
            )
            size = event.get("args", {}).get("bytes")
            if size is not None:
                summary.track_bytes[key] = (
                    summary.track_bytes.get(key, 0) + int(size)
                )
        elif ph == "i":
            summary.instants[event["name"]] = (
                summary.instants.get(event["name"], 0) + 1
            )
            if event["name"] == "job.integrity":
                for counter, value in event.get("args", {}).items():
                    summary.integrity[counter] = (
                        summary.integrity.get(counter, 0) + int(value)
                    )
        elif ph == "C":
            stats = summary.counters.setdefault(event["name"], CounterStats())
            value = event["args"]["value"]
            stats.samples += 1
            stats.total += value
            stats.peak = max(stats.peak, value)
        if end > summary.duration:
            summary.duration = end
    summary.unbalanced_spans += sum(len(s) for s in open_spans.values())
    return summary


def summarize_trace_file(path: str) -> TraceSummary:
    return summarize_trace(load_trace(path))


def format_trace_report(summary: TraceSummary, top: int = 12) -> str:
    """Render the terminal report for ``repro trace-report``."""
    lines: List[str] = []
    lines.append(
        f"trace: {summary.duration:.6f}s simulated, "
        f"{summary.total_events} events, "
        f"{len(summary.processes)} processes"
    )

    device_tracks = summary.tracks_matching("device")
    if device_tracks:
        lines.append("")
        lines.append("per-device utilization:")
        for pid, tid in device_tracks:
            process = summary.processes.get(pid, f"pid{pid}")
            busy = summary.track_busy.get((pid, tid), 0.0)
            moved = summary.track_bytes.get((pid, tid), 0)
            lines.append(
                f"  {process:<10s} {summary.thread_name(pid, tid):<16s} "
                f"busy {summary.utilization(pid, tid):6.1%}  "
                f"({busy:.6f}s, {moved / 1e6:.1f} MB)"
            )

    nic_tracks = summary.tracks_matching("nic.")
    if nic_tracks:
        lines.append("")
        lines.append("per-NIC utilization:")
        for pid, tid in nic_tracks:
            process = summary.processes.get(pid, f"pid{pid}")
            moved = summary.track_bytes.get((pid, tid), 0)
            lines.append(
                f"  {process:<10s} {summary.thread_name(pid, tid):<16s} "
                f"busy {summary.utilization(pid, tid):6.1%}  "
                f"({moved / 1e6:.1f} MB)"
            )

    if summary.category_seconds:
        lines.append("")
        lines.append("breakdown categories (engine spans, summed):")
        total = sum(
            summary.category_seconds.get(cat, 0.0)
            for cat in BREAKDOWN_CATEGORIES
        )
        for cat in BREAKDOWN_CATEGORIES:
            seconds = summary.category_seconds.get(cat, 0.0)
            share = seconds / total if total > 0 else 0.0
            lines.append(f"  {cat:<11s} {seconds:12.6f}s  {share:6.1%}")

    recovery_total = sum(
        summary.category_seconds.get(cat, 0.0) for cat in RECOVERY_CATEGORIES
    )
    if recovery_total > 0:
        lines.append("")
        lines.append("recovery decomposition (fault injection, job wall time):")
        wall = sum(
            summary.category_seconds.get(cat, 0.0)
            for cat in RECOVERY_WALL_CATEGORIES
        )
        useful = summary.duration - wall
        lines.append(f"  {'useful':<11s} {useful:12.6f}s")
        for cat in RECOVERY_WALL_CATEGORIES:
            seconds = summary.category_seconds.get(cat, 0.0)
            lines.append(f"  {cat:<11s} {seconds:12.6f}s")
        # Overlapping detail: backoff waits and integrity-repair work
        # happen *inside* the windows above (and inside useful time),
        # so they are shown but not subtracted.
        for cat in RECOVERY_CATEGORIES:
            if cat in RECOVERY_WALL_CATEGORIES:
                continue
            seconds = summary.category_seconds.get(cat, 0.0)
            if seconds > 0:
                lines.append(f"  {cat:<11s} {seconds:12.6f}s  (overlapping)")

    hits = {k: v for k, v in sorted(summary.integrity.items()) if v}
    if hits:
        lines.append("")
        lines.append("integrity counters (injected faults and defenses):")
        for counter, value in hits.items():
            lines.append(f"  {counter:<24s} {value}")

    if summary.spans:
        lines.append("")
        lines.append(f"top spans by total time (of {len(summary.spans)}):")
        ranked = sorted(
            summary.spans.items(), key=lambda kv: (-kv[1].total, kv[0])
        )
        for name, stats in ranked[:top]:
            lines.append(
                f"  {name:<24s} n={stats.count:<6d} "
                f"total={stats.total:10.6f}s  mean={stats.mean() * 1e6:10.2f}us"
            )

    if summary.instants:
        lines.append("")
        lines.append("instant events:")
        for name in sorted(summary.instants):
            lines.append(f"  {name:<24s} {summary.instants[name]}")

    if summary.counters:
        lines.append("")
        lines.append(f"counter series ({len(summary.counters)}):")
        for name in sorted(summary.counters):
            stats = summary.counters[name]
            lines.append(
                f"  {name:<24s} samples={stats.samples:<6d} "
                f"mean={stats.mean():.4g}  peak={stats.peak:.4g}"
            )

    if summary.unbalanced_spans:
        lines.append("")
        lines.append(
            f"WARNING: {summary.unbalanced_spans} unbalanced span events"
        )
    return "\n".join(lines)


def summary_to_dict(summary: TraceSummary, top: int = 12) -> dict:
    """The :func:`format_trace_report` tables, machine-readable."""
    ranked = sorted(
        summary.spans.items(), key=lambda kv: (-kv[1].total, kv[0])
    )
    tracks = []
    for pid, tid in sorted(set(summary.track_busy) | set(summary.track_bytes)):
        tracks.append(
            {
                "pid": pid,
                "tid": tid,
                "process": summary.processes.get(pid, f"pid{pid}"),
                "thread": summary.thread_name(pid, tid),
                "busy_seconds": summary.track_busy.get((pid, tid), 0.0),
                "utilization": summary.utilization(pid, tid),
                "bytes": summary.track_bytes.get((pid, tid), 0),
            }
        )
    recovery = None
    recovery_total = sum(
        summary.category_seconds.get(cat, 0.0) for cat in RECOVERY_CATEGORIES
    )
    if recovery_total > 0:
        wall = sum(
            summary.category_seconds.get(cat, 0.0)
            for cat in RECOVERY_WALL_CATEGORIES
        )
        recovery = {
            "useful_seconds": summary.duration - wall,
            **{
                f"{cat}_seconds": summary.category_seconds.get(cat, 0.0)
                for cat in RECOVERY_CATEGORIES
            },
        }
    return {
        "duration": summary.duration,
        "total_events": summary.total_events,
        "processes": {
            str(pid): name for pid, name in sorted(summary.processes.items())
        },
        "tracks": tracks,
        "category_seconds": dict(sorted(summary.category_seconds.items())),
        "recovery": recovery,
        "top_spans": [
            {
                "name": name,
                "count": stats.count,
                "total_seconds": stats.total,
                "mean_seconds": stats.mean(),
            }
            for name, stats in ranked[:top]
        ],
        "span_names": len(summary.spans),
        "instants": dict(sorted(summary.instants.items())),
        "counters": {
            name: {
                "samples": stats.samples,
                "mean": stats.mean(),
                "peak": stats.peak,
            }
            for name, stats in sorted(summary.counters.items())
        },
        "integrity": dict(sorted(summary.integrity.items())),
        "unbalanced_spans": summary.unbalanced_spans,
    }


def trace_report_json(trace: dict, top: int = 12) -> dict:
    """Everything ``trace-report`` prints, as one JSON document.

    Mirrors the text report section-for-section: span/track summary,
    critpath attribution (None for spanless traces), the causal
    slowest-chain table plus its critpath cross-check (None for traces
    without ``causalEvents``), and the host metrics/skew table (None
    without ``--host-profile``).
    """
    from repro.obs import causal as causal_mod
    from repro.obs.critpath import AttributionError, analyze_chrome_trace
    from repro.obs.host import SIM_SPAN_FOR_PHASE

    summary = summarize_trace(trace)
    document: dict = {"summary": summary_to_dict(summary, top=top)}

    try:
        attribution = analyze_chrome_trace(trace)
    except AttributionError:
        attribution = None
    document["attribution"] = (
        attribution.to_dict() if attribution is not None else None
    )

    try:
        causal_events = causal_mod.causal_events_from_trace(trace)
    except causal_mod.CausalError:
        causal_events = None
    if causal_events:
        chains = causal_mod.slowest_chains(causal_events, top)
        document["slowest_chains"] = [chain.to_dict() for chain in chains]
        document["cross_check"] = (
            causal_mod.cross_check(causal_events, attribution)
            if attribution is not None
            else None
        )
    else:
        document["slowest_chains"] = None
        document["cross_check"] = None

    host_doc = trace.get("hostMetrics")
    document["host"] = host_doc
    skew = None
    if host_doc is not None:
        sim_spans = {
            name: stats.total for name, stats in summary.spans.items()
        }
        by_phase = host_doc["totals"]["by_phase"]
        host_wall_total = sum(
            agg["wall_seconds"] for agg in by_phase.values()
        )
        mapped_sim_total = sum(
            sim_spans.get(span, 0.0) for span in SIM_SPAN_FOR_PHASE.values()
        )
        skew = []
        for phase in sorted(by_phase):
            span = SIM_SPAN_FOR_PHASE.get(phase)
            host_share = (
                by_phase[phase]["wall_seconds"] / host_wall_total
                if host_wall_total
                else 0.0
            )
            sim_share = (
                sim_spans.get(span, 0.0) / mapped_sim_total
                if span is not None and mapped_sim_total > 0
                else None
            )
            skew.append(
                {
                    "phase": phase,
                    "sim_span": span,
                    "host_share": host_share,
                    "sim_share": sim_share,
                    "skew": (
                        host_share - sim_share
                        if sim_share is not None
                        else None
                    ),
                }
            )
    document["host_skew"] = skew
    return document

"""Benchmark snapshots: a machine-readable performance trajectory.

``repro bench`` runs a configurable subset of the benchmark scenarios
below and writes a schema-versioned ``BENCH_<label>.json`` snapshot:
per-scenario simulated runtime, the bottleneck-attribution vector
(:mod:`repro.obs.critpath`), resource utilization, bytes moved and
checkpoint overhead.  ``repro bench --compare A B`` diffs two snapshots
with per-metric tolerances and reports regressions — the CI gate runs
it against the committed ``benchmarks/results/baseline.json``.

Everything here is deterministic: the scenarios fix graph seeds and
cluster configs, the simulation is deterministic by construction, and
snapshots serialize with sorted keys — so a regression in the diff is a
real behavioural change, never noise.

This module deliberately is **not** imported from ``repro.obs``'s
package namespace: it pulls in the full runtime (``repro.core``), which
itself imports ``repro.obs.tracer`` — importing it at package-init time
would create a cycle.  Import it as ``repro.obs.bench``.
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.runtime import run_algorithm
from repro.faults import FaultPlan
from repro.graph import rmat_graph, to_undirected
from repro.net.topology import GIGE_1_BENCH, GIGE_40_BENCH
from repro.obs.critpath import analyze_tracer
from repro.obs.host import HostProfiler
from repro.obs.tracer import Tracer
from repro.store.device import SSD_BENCH

#: v2 adds the opt-in host metrics (``--host``): ``host_wall_seconds``,
#: ``host_cpu_seconds`` and ``edges_per_sec`` per scenario, median over
#: ``--repeats`` runs.  v1 snapshots stay comparable against v2 (see
#: :data:`COMPATIBLE_SCHEMA_PAIRS`) — the host keys are simply absent.
BENCH_SCHEMA_VERSION = 2

#: (base, new) schema-version pairs :func:`compare_snapshots` accepts
#: besides exact equality.  Host metrics are deterministic in neither
#: direction, so a v1-vs-v2 diff just skips them.
COMPATIBLE_SCHEMA_PAIRS = {(1, 2)}

#: The host-side (real wall-clock) metrics a scenario record carries
#: when collected with ``--host``.  Unlike every other tracked metric
#: these are *noisy* — they measure the machine running the benchmark —
#: so the gate treats them warn-only unless the baseline opts in via a
#: ``host_tolerances`` mapping (or a ``--tolerance`` override).
HOST_METRICS = ("host_wall_seconds", "host_cpu_seconds", "edges_per_sec")


@dataclass(frozen=True)
class BenchScenario:
    """One deterministic benchmark run tracked by the perf trajectory."""

    name: str
    description: str
    #: Builds the (algorithm, graph) pair; a callable so scenario
    #: definitions stay cheap until actually run.
    workload: Callable[[], Tuple[object, object]]
    machines: int
    chunk_bytes: int = 4096
    batch_factor: int = 8
    partitions_per_machine: int = 1
    network: object = GIGE_40_BENCH
    device: object = SSD_BENCH
    checkpointing: bool = False
    fault_specs: Tuple[str, ...] = ()


def _pr(scale: int, iterations: int = 3):
    def build():
        from repro.algorithms import PageRank

        return PageRank(iterations=iterations), rmat_graph(scale, seed=1)

    return build


def _wcc(scale: int):
    def build():
        from repro.algorithms import WCC

        return WCC(), to_undirected(rmat_graph(scale, seed=5))

    return build


def _sssp(scale: int):
    def build():
        from repro.algorithms import SSSP

        return SSSP(root=0), to_undirected(
            rmat_graph(scale, seed=5, weighted=True)
        )

    return build


DEFAULT_SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        name="pr_m2",
        description="PageRank x3, RMAT-12, 2 machines, SSD/40GigE",
        workload=_pr(12),
        machines=2,
    ),
    BenchScenario(
        name="pr_m4",
        description="PageRank x3, RMAT-12, 4 machines, SSD/40GigE",
        workload=_pr(12),
        machines=4,
    ),
    BenchScenario(
        name="pr_m8",
        description="PageRank x3, RMAT-12, 8 machines, SSD/40GigE",
        workload=_pr(12),
        machines=8,
    ),
    BenchScenario(
        name="wcc_m2",
        description="WCC to quiescence, undirected RMAT-11, 2 machines",
        workload=_wcc(11),
        machines=2,
    ),
    BenchScenario(
        name="sssp_m2",
        description="SSSP from vertex 0, weighted RMAT-11, 2 machines",
        workload=_sssp(11),
        machines=2,
    ),
    BenchScenario(
        name="pr_1gige_m2",
        description="PageRank x3, RMAT-11, 2 machines, network-bound 1GigE",
        workload=_pr(11),
        machines=2,
        network=GIGE_1_BENCH,
    ),
    BenchScenario(
        name="pr_ckpt_fault",
        description="PageRank x5, RMAT-10, 3 machines, checkpoints + crash",
        workload=_pr(10, iterations=5),
        machines=3,
        checkpointing=True,
        fault_specs=("crash:1@iter=2",),
    ),
)

_SCENARIOS_BY_NAME = {s.name: s for s in DEFAULT_SCENARIOS}


def scenario_names() -> List[str]:
    return [s.name for s in DEFAULT_SCENARIOS]


def _checkpoint_seconds(tracer: Tracer) -> float:
    """Total engine time inside ``checkpoint`` spans (B/E pairs)."""
    open_ts: Dict[Tuple[int, int], List[float]] = {}
    total = 0.0
    for event in tracer.events:
        if event.get("name") != "checkpoint":
            continue
        key = (event["pid"], event["tid"])
        if event["ph"] == "B":
            open_ts.setdefault(key, []).append(event["ts"])
        elif event["ph"] == "E":
            stack = open_ts.get(key)
            if stack:
                total += event["ts"] - stack.pop()
    return total


def _run_scenario_once(
    scenario: BenchScenario, host: bool = False
) -> Dict[str, object]:
    """Run one scenario and distill its tracked metrics."""
    algorithm, graph = scenario.workload()
    tracer = Tracer(sample_interval=None)
    fault_plan = (
        FaultPlan.parse(list(scenario.fault_specs))
        if scenario.fault_specs
        else None
    )
    profiler = HostProfiler() if host else None
    result = run_algorithm(
        algorithm,
        graph,
        tracer=tracer,
        host=profiler,
        fault_plan=fault_plan,
        machines=scenario.machines,
        chunk_bytes=scenario.chunk_bytes,
        batch_factor=scenario.batch_factor,
        partitions_per_machine=scenario.partitions_per_machine,
        network=scenario.network,
        device=scenario.device,
        checkpointing=scenario.checkpointing,
    )
    report = analyze_tracer(tracer)
    cluster_util = {
        u.resource: u.utilization
        for u in report.utilization
        if u.machine is None
    }
    record: Dict[str, object] = {
        "description": scenario.description,
        "machines": scenario.machines,
        "runtime": result.runtime,
        "preprocessing_seconds": result.preprocessing_seconds,
        "iterations": result.iterations,
        "storage_bytes": result.storage_bytes,
        "network_bytes": result.network_bytes,
        "bytes_moved": result.storage_bytes + result.network_bytes,
        "aggregate_bandwidth": result.aggregate_bandwidth,
        "checkpoints": result.checkpoints,
        "checkpoint_seconds": _checkpoint_seconds(tracer),
        "attribution": {
            category: seconds
            for category, seconds in sorted(report.cluster_seconds.items())
        },
        "bottleneck": report.bottleneck,
        "dominant_category": report.dominant_category,
        "utilization": cluster_util,
        "measured_rho": report.measured_rho,
        "analytic_rho": report.analytic_rho,
        "closure_error": report.closure_error(),
        "stragglers": len(report.stragglers),
    }
    if profiler is not None:
        doc = profiler.finalize().to_dict()
        record["host_wall_seconds"] = doc["region"]["wall_seconds"]
        record["host_cpu_seconds"] = doc["region"]["cpu_seconds"]
        record["edges_per_sec"] = doc["totals"]["edges_per_sec"]
    return record


def run_scenario(
    scenario: BenchScenario, host: bool = False, repeats: int = 1
) -> Dict[str, object]:
    """Run one scenario ``repeats`` times; median host metrics.

    The simulated metrics are deterministic, so they come from the first
    run; the host metrics are real wall-clock readings, so each repeat
    re-measures them and the record carries the per-metric median (the
    standard noise-robust aggregate for timing benchmarks).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    record = _run_scenario_once(scenario, host=host)
    if not host or repeats == 1:
        return record
    samples = {metric: [record[metric]] for metric in HOST_METRICS}
    for _ in range(repeats - 1):
        extra = _run_scenario_once(scenario, host=True)
        for metric in HOST_METRICS:
            samples[metric].append(extra[metric])
    for metric in HOST_METRICS:
        record[metric] = statistics.median(samples[metric])
    record["host_repeats"] = repeats
    return record


def run_scenarios(
    names: Optional[List[str]] = None,
    label: str = "local",
    progress: Optional[Callable[[str], None]] = None,
    host: bool = False,
    repeats: int = 1,
) -> Dict[str, object]:
    """Run the selected scenarios into a snapshot document."""
    if names:
        unknown = [n for n in names if n not in _SCENARIOS_BY_NAME]
        if unknown:
            raise ValueError(
                f"unknown scenario(s): {', '.join(unknown)}; "
                f"known: {', '.join(scenario_names())}"
            )
        selected = [_SCENARIOS_BY_NAME[n] for n in names]
    else:
        selected = list(DEFAULT_SCENARIOS)
    scenarios: Dict[str, object] = {}
    for scenario in selected:
        if progress is not None:
            progress(f"running {scenario.name}: {scenario.description}")
        scenarios[scenario.name] = run_scenario(
            scenario, host=host, repeats=repeats
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "scenarios": scenarios,
    }


def snapshot_path(label: str, root: Optional[str] = None) -> str:
    """``BENCH_<label>.json`` at the repo root (default: cwd)."""
    return os.path.join(root or os.getcwd(), f"BENCH_{label}.json")


def write_snapshot(snapshot: Dict[str, object], path: str) -> int:
    """Serialize deterministically; returns bytes written."""
    text = json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    return len(text)


def load_snapshot(path: str) -> Dict[str, object]:
    with open(path) as handle:
        snapshot = json.load(handle)
    if "schema_version" not in snapshot or "scenarios" not in snapshot:
        raise ValueError(f"{path}: not a bench snapshot")
    return snapshot


# ---------------------------------------------------------------------------
# Snapshot comparison (the regression gate)
# ---------------------------------------------------------------------------

#: metric -> (direction, relative tolerance).  ``higher_is_worse``
#: metrics regress when new > base * (1 + tol); ``lower_is_worse``
#: metrics regress when new < base * (1 - tol).
METRIC_POLICIES: Dict[str, Tuple[str, float]] = {
    "runtime": ("higher_is_worse", 0.05),
    "storage_bytes": ("higher_is_worse", 0.05),
    "network_bytes": ("higher_is_worse", 0.05),
    "bytes_moved": ("higher_is_worse", 0.05),
    "checkpoint_seconds": ("higher_is_worse", 0.10),
    "aggregate_bandwidth": ("lower_is_worse", 0.05),
    # Host metrics are real wall-clock readings — noisy across machines
    # and CI runners — so their tolerances are loose, and they gate only
    # when the baseline opts in (see ``host_tolerances`` in
    # :func:`compare_snapshots`); otherwise drift is reported warn-only.
    "host_wall_seconds": ("higher_is_worse", 0.50),
    "host_cpu_seconds": ("higher_is_worse", 0.50),
    "edges_per_sec": ("lower_is_worse", 0.50),
}

#: Absolute ceiling for the attribution-closure invariant.
CLOSURE_LIMIT = 1e-6


@dataclass
class Comparison:
    """Outcome of diffing two snapshots."""

    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def lines(self) -> List[str]:
        out = []
        for text in self.regressions:
            out.append(f"REGRESSION  {text}")
        for text in self.improvements:
            out.append(f"improved    {text}")
        for text in self.notes:
            out.append(f"note        {text}")
        if not out:
            out.append("no tracked metric changed beyond tolerance")
        return out


def compare_snapshots(
    base: Dict[str, object],
    new: Dict[str, object],
    tolerances: Optional[Dict[str, float]] = None,
) -> Comparison:
    """Diff ``new`` against ``base`` under the per-metric policies.

    ``tolerances`` overrides the default relative tolerance per metric
    name.  A scenario present in ``base`` but missing from ``new`` is a
    regression (lost coverage); new scenarios are noted.

    Host metrics (:data:`HOST_METRICS`) are warn-only by default: drift
    beyond tolerance lands in ``notes``, never ``regressions``, because
    real wall-clock readings vary with the machine running the bench.  A
    baseline opts in to gating by carrying a top-level
    ``host_tolerances`` mapping (metric -> relative tolerance); a
    ``tolerances`` override for a host metric also gates it.
    """
    comparison = Comparison()
    base_version = base.get("schema_version")
    new_version = new.get("schema_version")
    if base_version != new_version:
        if (base_version, new_version) in COMPATIBLE_SCHEMA_PAIRS:
            comparison.notes.append(
                f"schema upgrade: base v{base_version} compared against "
                f"new v{new_version} (metrics absent from base are skipped)"
            )
        else:
            raise ValueError(
                f"schema mismatch: base v{base_version} vs "
                f"new v{new_version}"
            )
    overrides = tolerances or {}
    host_tolerances = base.get("host_tolerances")
    if not isinstance(host_tolerances, dict):
        host_tolerances = {}
    base_scenarios = base.get("scenarios", {})
    new_scenarios = new.get("scenarios", {})
    for name in sorted(base_scenarios):
        if name not in new_scenarios:
            comparison.regressions.append(
                f"{name}: scenario missing from new snapshot"
            )
            continue
        old = base_scenarios[name]
        cur = new_scenarios[name]
        for metric in sorted(METRIC_POLICIES):
            direction, tolerance = METRIC_POLICIES[metric]
            gating = True
            if metric in HOST_METRICS:
                if metric in overrides:
                    tolerance = overrides[metric]
                elif metric in host_tolerances:
                    tolerance = float(host_tolerances[metric])
                else:
                    gating = False  # warn-only: no opt-in from baseline
            else:
                tolerance = overrides.get(metric, tolerance)
            if metric not in old or metric not in cur:
                continue
            base_value = float(old[metric])
            new_value = float(cur[metric])
            if base_value == new_value:
                continue
            if base_value == 0:
                delta = float("inf") if new_value > 0 else 0.0
            else:
                delta = (new_value - base_value) / abs(base_value)
            text = (
                f"{name}.{metric}: {base_value:.6g} -> {new_value:.6g} "
                f"({delta:+.2%}, tolerance {tolerance:.0%})"
            )
            if direction == "higher_is_worse":
                worse = delta > tolerance
                better = delta < -tolerance
            else:
                worse = delta < -tolerance
                better = delta > tolerance
            if worse:
                if gating:
                    comparison.regressions.append(text)
                else:
                    comparison.notes.append(
                        f"{text} [host metric, warn-only]"
                    )
            elif better:
                comparison.improvements.append(text)
        closure = float(cur.get("closure_error", 0.0))
        if closure > CLOSURE_LIMIT:
            comparison.regressions.append(
                f"{name}.closure_error: {closure:.3e} exceeds "
                f"{CLOSURE_LIMIT:.0e} (attribution no longer closes)"
            )
        if old.get("bottleneck") != cur.get("bottleneck"):
            comparison.notes.append(
                f"{name}.bottleneck: {old.get('bottleneck')} -> "
                f"{cur.get('bottleneck')}"
            )
    for name in sorted(new_scenarios):
        if name not in base_scenarios:
            comparison.notes.append(f"{name}: new scenario (not in base)")
    return comparison

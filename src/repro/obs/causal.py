"""Causal message-level tracing: the run's event DAG and its analyzers.

Every simulated message (chunk read/write, steal request/response,
accumulator flush, checkpoint replica, heartbeat, retry/resend) carries
a ``(trace_id, span_id, parent_span_id)`` context, injected by
:class:`repro.net.transport.Network` at send time and threaded through
the protocol handlers, so the full causal DAG of a run — who caused
whom, at message granularity — is reconstructable from the saved trace.

The layer has three parts:

* :class:`CausalRecorder` — attached to every :class:`~repro.obs.tracer.
  Tracer` as ``tracer.causal``.  Records one event per message send
  (completed at delivery), plus barrier arrival/release events and
  checkpoint-durability marks.  It is a *passive annotation*: recording
  never touches simulation state, draws no randomness and creates no
  events, so traced runs stay byte-identical to untraced runs per
  (config, seed).
* the chain analyzers — :func:`barrier_chains` rebuilds, for every
  barrier release, the exact backward chain (machine → message →
  device/NIC span) that held the barrier open; :func:`slowest_chains`
  ranks them; :func:`cross_check` reconciles each chain against
  critpath's interval decomposition (the chain must explain the
  barrier-bound machine's measured wait within tolerance).
* the query engine — :func:`parse_where` compiles the small filter
  language behind ``repro trace query`` (``cat=steal_request and
  machine=3 and dur>5ms``) into a predicate over causal events.

Causal events are plain JSON-safe dicts so they serialize losslessly
into the Chrome trace document (top-level ``causalEvents`` key; the
message edges are additionally emitted as Chrome ``flow`` events for
Perfetto's arrow rendering — see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CausalError",
    "CausalRecorder",
    "NULL_CAUSAL",
    "NullCausalRecorder",
    "BarrierChain",
    "barrier_chains",
    "causal_events_from_trace",
    "causal_edges_from_flows",
    "chain_of",
    "cross_check",
    "event_duration",
    "filter_events",
    "format_chain",
    "format_chain_table",
    "format_event",
    "message_kind_counts",
    "parse_duration",
    "parse_where",
    "slowest_chains",
    "undelivered_messages",
    "unreleased_barriers",
]


class CausalError(ValueError):
    """Raised for malformed causal queries or trace documents."""


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------


class CausalRecorder:
    """Collects the causal event DAG of a run.

    Span ids are a deterministic integer counter; timestamps come from
    the owning tracer's offset-adjusted clock, so multi-run drivers
    (recovery re-execution, MCST) compose on one timeline exactly like
    the span events do.

    The recorder keeps, per machine, a *chain head*: the id of the last
    causal event known to have affected that machine (the last message
    its engine dispatched, or the last barrier release it resumed
    from).  Sends without an explicit parent inherit the sender's chain
    head — the standard single-parent approximation of causal tracing.
    """

    __slots__ = (
        "_tracer",
        "events",
        "_index",
        "_head",
        "_barriers",
        "_arrivals",
        "_next_id",
        "trace_id",
    )

    enabled = True

    def __init__(self, tracer):
        self._tracer = tracer
        #: Events in id order; plain dicts, JSON-serializable.
        self.events: List[Dict[str, Any]] = []
        self._index: Dict[int, Dict[str, Any]] = {}
        self._head: Dict[int, int] = {}
        #: (epoch, label, phase) -> release event, once released.
        self._barriers: Dict[Tuple[int, str, str], Dict[str, Any]] = {}
        #: (epoch, label, phase) -> arrival event ids, in arrival order.
        self._arrivals: Dict[Tuple[int, str, str], List[int]] = {}
        self._next_id = 0
        #: Run index within this tracer's timeline (bumped by bind_run).
        self.trace_id = 0

    # -- plumbing ----------------------------------------------------------

    def on_bind(self) -> None:
        """A new simulation run was bound to the owning tracer."""
        self.trace_id += 1
        self._head.clear()

    def _new(self, kind: str, cat: str, t0: float) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "id": self._next_id,
            "trace": self.trace_id,
            "kind": kind,
            "cat": cat,
            "t0": t0,
        }
        self._next_id += 1
        self.events.append(event)
        self._index[event["id"]] = event
        return event

    def head(self, machine: int) -> Optional[int]:
        """Chain head of ``machine`` (last causal event id), or None."""
        return self._head.get(machine)

    def set_head(self, machine: int, span_id: Optional[int]) -> None:
        if span_id is not None:
            self._head[machine] = span_id

    @staticmethod
    def _parent_id(parent) -> Optional[int]:
        """Normalize a parent given as a span id or a message context."""
        if parent is None:
            return None
        if isinstance(parent, tuple):
            return parent[1]
        return parent

    # -- message edges -----------------------------------------------------

    def on_send(
        self,
        kind: str,
        src: int,
        dst: int,
        size: int,
        parent=None,
        attempt: int = 0,
    ) -> Tuple[int, int, Optional[int]]:
        """Record a message send; returns its ``(trace, span, parent)``
        context for stamping onto the in-flight message."""
        parent_id = self._parent_id(parent)
        if parent_id is None:
            parent_id = self._head.get(src)
        event = self._new("msg", kind, self._tracer.now())
        event["src"] = src
        event["dst"] = dst
        event["size"] = size
        event["t1"] = None
        event["parent"] = parent_id
        if attempt:
            event["attempt"] = attempt
        return (self.trace_id, event["id"], parent_id)

    def on_deliver(self, ctx) -> None:
        """Stamp the delivery time onto a message's causal event.

        Duplicate deliveries (byzantine ``dup`` faults) keep the first
        arrival time — the one that actually advanced the receiver.
        """
        event = self._index.get(self._parent_id(ctx))
        if event is not None and event.get("t1") is None:
            event["t1"] = self._tracer.now()

    def on_dispatch(self, machine: int, ctx) -> None:
        """A handler on ``machine`` started processing a message: its
        span becomes the machine's chain head."""
        self.set_head(machine, self._parent_id(ctx))

    # -- barrier events ----------------------------------------------------

    @staticmethod
    def barrier_key(epoch: int, label: str, phase: str) -> str:
        return f"e{epoch}/{label}/{phase}"

    def barrier_arrive(
        self, machine: int, epoch: int, label: str, phase: str
    ) -> Dict[str, Any]:
        """``machine`` reached the barrier (before blocking on it)."""
        now = self._tracer.now()
        event = self._new("arrive", "barrier", now)
        event["t1"] = now
        event["machine"] = machine
        event["epoch"] = epoch
        event["label"] = label
        event["phase"] = phase
        event["barrier"] = self.barrier_key(epoch, label, phase)
        event["parent"] = self._head.get(machine)
        self._arrivals.setdefault((epoch, label, phase), []).append(
            event["id"]
        )
        return event

    def barrier_release(
        self, machine: int, epoch: int, label: str, phase: str
    ) -> Dict[str, Any]:
        """``machine`` resumed from the barrier.

        The first resumer materializes the single release event, whose
        parents are every arrival of the round and whose ``machine`` is
        the straggler (last arriver) that actually opened the barrier.
        Every resumer's chain head becomes the release, so post-barrier
        work is causally downstream of the release.
        """
        key = (epoch, label, phase)
        release = self._barriers.get(key)
        if release is None:
            now = self._tracer.now()
            arrival_ids = self._arrivals.get(key, [])
            arrivals = [self._index[i] for i in arrival_ids]
            release = self._new("release", "barrier", now)
            release["t1"] = now
            release["epoch"] = epoch
            release["label"] = label
            release["phase"] = phase
            release["barrier"] = self.barrier_key(epoch, label, phase)
            release["parents"] = list(arrival_ids)
            straggler = None
            if arrivals:
                straggler = max(
                    arrivals, key=lambda a: (a["t0"], a["machine"])
                )
            release["machine"] = (
                straggler["machine"] if straggler is not None else machine
            )
            self._barriers[key] = release
            # The next round of this barrier (cyclic reuse across
            # iterations shares labels only when label repeats, which
            # epochs/labels prevent) starts a fresh arrival list.
            self._arrivals.pop(key, None)
        self.set_head(machine, release["id"])
        return release

    # -- generic marks (checkpoint durability, recovery milestones) --------

    def mark(
        self,
        cat: str,
        machine: Optional[int] = None,
        parent=None,
        parents: Optional[List[int]] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record a protocol milestone in the DAG (no chain-head move)."""
        now = self._tracer.now()
        event = self._new("mark", cat, now)
        event["t1"] = now
        if machine is not None:
            event["machine"] = machine
        parent_id = self._parent_id(parent)
        if parent_id is None and machine is not None:
            parent_id = self._head.get(machine)
        event["parent"] = parent_id
        if parents is not None:
            event["parents"] = list(parents)
        if args:
            event.update(args)
        return event


class NullCausalRecorder:
    """Disabled recorder: records nothing, hands out no contexts."""

    __slots__ = ()

    enabled = False
    events: List[Dict[str, Any]] = []
    trace_id = 0

    def on_bind(self):
        pass

    def head(self, machine):
        return None

    def set_head(self, machine, span_id):
        pass

    def on_send(self, kind, src, dst, size, parent=None, attempt=0):
        return None

    def on_deliver(self, ctx):
        pass

    def on_dispatch(self, machine, ctx):
        pass

    def barrier_arrive(self, machine, epoch, label, phase):
        return None

    def barrier_release(self, machine, epoch, label, phase):
        return None

    def mark(self, cat, machine=None, parent=None, parents=None, args=None):
        return None


NULL_CAUSAL = NullCausalRecorder()


# ---------------------------------------------------------------------------
# Loading saved traces
# ---------------------------------------------------------------------------


def causal_events_from_trace(trace: dict) -> List[Dict[str, Any]]:
    """The lossless causal event list of a saved Chrome trace document.

    Raises :class:`CausalError` when the trace was recorded before
    causal tracing existed (no ``causalEvents`` key).
    """
    events = trace.get("causalEvents")
    if events is None:
        raise CausalError(
            "trace has no 'causalEvents' — record it with --trace on a "
            "causal-tracing build"
        )
    return events


def message_kind_counts(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Observed message kinds -> send count (``cat`` of ``msg`` events)."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "msg":
            counts[event["cat"]] = counts.get(event["cat"], 0) + 1
    return counts


def undelivered_messages(
    events: Iterable[Dict[str, Any]],
) -> List[Tuple[str, int, int, int]]:
    """Messages sent but never delivered: ``(kind, src, dst, count)``.

    An undelivered message in a *complete* trace is normal fail-stop
    fallout (a send to a crashed machine); in a deadlock capture it is
    the transition the cluster hung on.
    """
    counts: Dict[Tuple[str, int, int], int] = {}
    for event in events:
        if event.get("kind") == "msg" and event.get("t1") is None:
            key = (event["cat"], event.get("src", -1), event.get("dst", -1))
            counts[key] = counts.get(key, 0) + 1
    return [
        (kind, src, dst, count)
        for (kind, src, dst), count in sorted(counts.items())
    ]


def unreleased_barriers(
    events: Iterable[Dict[str, Any]],
) -> List[Tuple[str, List[int]]]:
    """Barrier rounds with arrivals but no release, with their waiters.

    Keyed by ``(trace, barrier)`` internally so re-run epochs of the
    same label stay distinct; returns ``(barrier_key, machines)``.
    """
    arrivals: Dict[Tuple[Any, str], List[int]] = {}
    released: set = set()
    for event in events:
        key = event.get("barrier")
        if key is None:
            continue
        bucket = (event.get("trace"), key)
        if event.get("kind") == "arrive":
            arrivals.setdefault(bucket, []).append(event.get("machine", -1))
        elif event.get("kind") == "release":
            released.add(bucket)
    return [
        (bucket[1], sorted(machines))
        for bucket, machines in sorted(arrivals.items(), key=str)
        if bucket not in released
    ]


def causal_edges_from_flows(trace: dict) -> List[Dict[str, Any]]:
    """Reconstruct message edges from the Chrome ``flow`` events alone.

    Returns one record per flow id: ``{"id", "src", "t0", "dst", "t1",
    "name"}`` with times in seconds.  This is the lossy Perfetto view of
    the DAG (message edges only, no parent links); it exists so flow
    events are verifiably round-trippable and as a fallback for traces
    whose ``causalEvents`` key was stripped.
    """
    edges: Dict[int, Dict[str, Any]] = {}
    for event in trace.get("traceEvents", []):
        ph = event.get("ph")
        if ph not in ("s", "f"):
            continue
        flow_id = event["id"]
        edge = edges.setdefault(flow_id, {"id": flow_id})
        edge["name"] = event.get("name")
        if ph == "s":
            edge["src"] = event["pid"]
            edge["t0"] = event["ts"] * 1e-6
        else:
            edge["dst"] = event["pid"]
            edge["t1"] = event["ts"] * 1e-6
    return [edges[key] for key in sorted(edges)]


# ---------------------------------------------------------------------------
# Chain analysis
# ---------------------------------------------------------------------------


def event_duration(event: Dict[str, Any]) -> Optional[float]:
    """Send-to-delivery latency of a message edge (None if undelivered,
    0 for instantaneous events)."""
    t1 = event.get("t1")
    if t1 is None:
        return None
    return t1 - event["t0"]


def _index(events: Iterable[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
    return {event["id"]: event for event in events}


def chain_of(
    events: List[Dict[str, Any]], span_id: int
) -> List[Dict[str, Any]]:
    """The backward causal chain ending at ``span_id``, root first.

    Release events continue through their straggler arrival (the last
    arriver — the parent that actually gated the release); other events
    follow their single ``parent`` link.  Cycles are impossible by
    construction (parents always have smaller ids) but guarded anyway.
    """
    by_id = _index(events)
    if span_id not in by_id:
        raise CausalError(f"no causal event with id {span_id}")
    chain: List[Dict[str, Any]] = []
    seen = set()
    cursor: Optional[int] = span_id
    while cursor is not None and cursor not in seen:
        seen.add(cursor)
        event = by_id.get(cursor)
        if event is None:
            break
        chain.append(event)
        parents = event.get("parents")
        if parents:
            arrivals = [by_id[p] for p in parents if p in by_id]
            if not arrivals:
                break
            straggler = max(
                arrivals, key=lambda a: (a["t0"], a.get("machine", -1))
            )
            cursor = straggler["id"]
        else:
            cursor = event.get("parent")
    chain.reverse()
    return chain


@dataclass
class BarrierChain:
    """The backward chain that held one barrier release open."""

    release: Dict[str, Any]
    arrivals: List[Dict[str, Any]]
    #: Root-first: ... message ... -> straggler arrival -> release.
    links: List[Dict[str, Any]]

    @property
    def barrier(self) -> str:
        return self.release["barrier"]

    @property
    def epoch(self) -> int:
        return self.release["epoch"]

    @property
    def label(self) -> str:
        return self.release["label"]

    @property
    def phase(self) -> str:
        return self.release["phase"]

    @property
    def machine(self) -> int:
        """The straggler machine the chain terminates at."""
        return self.release["machine"]

    @property
    def release_t(self) -> float:
        return self.release["t0"]

    @property
    def start_t(self) -> float:
        return self.links[0]["t0"] if self.links else self.release["t0"]

    @property
    def duration(self) -> float:
        """End-to-end extent of the chain on the trace timeline."""
        return self.release_t - self.start_t

    def waits(self) -> Dict[int, float]:
        """Per-machine barrier wait measured from the causal events."""
        return {
            a["machine"]: self.release_t - a["t0"] for a in self.arrivals
        }

    def explained_wait(self, machine: int) -> Optional[float]:
        """The portion of ``machine``'s barrier wait the chain covers.

        The machine waits on ``[arrival, release]``; the chain spans
        ``[start_t, release_t]`` — their overlap is the wait the chain
        *explains*.  A chain rooted at (or before) the previous barrier
        release explains every machine's wait in full.
        """
        waits = self.waits()
        if machine not in waits:
            return None
        arrival_t = self.release_t - waits[machine]
        return max(0.0, self.release_t - max(self.start_t, arrival_t))

    def to_dict(self) -> dict:
        return {
            "barrier": self.barrier,
            "epoch": self.epoch,
            "label": self.label,
            "phase": self.phase,
            "machine": self.machine,
            "release_t": self.release_t,
            "start_t": self.start_t,
            "duration": self.duration,
            "waits": {str(m): w for m, w in sorted(self.waits().items())},
            "links": [dict(link) for link in self.links],
        }


def barrier_chains(events: List[Dict[str, Any]]) -> List[BarrierChain]:
    """One chain per barrier release, in release order."""
    by_id = _index(events)
    chains: List[BarrierChain] = []
    for event in events:
        if event.get("kind") != "release":
            continue
        arrivals = [
            by_id[p] for p in event.get("parents", []) if p in by_id
        ]
        chains.append(
            BarrierChain(
                release=event,
                arrivals=arrivals,
                links=chain_of(events, event["id"]),
            )
        )
    chains.sort(key=lambda c: (c.release_t, c.release["id"]))
    return chains


def slowest_chains(
    events: List[Dict[str, Any]], n: Optional[int] = None
) -> List[BarrierChain]:
    """Barrier chains ranked by end-to-end duration, slowest first."""
    chains = sorted(
        barrier_chains(events),
        key=lambda c: (-c.duration, c.release_t, c.release["id"]),
    )
    return chains if n is None else chains[:n]


def cross_check(
    events: List[Dict[str, Any]],
    report,
    tolerance: float = 0.05,
) -> List[dict]:
    """Reconcile every iteration barrier chain against critpath.

    For each released scatter/gather barrier the chain analyzer derives,
    independently of critpath's interval sweep:

    * the straggler (the machine the slowest chain terminates at) — it
      must be the machine critpath charges the *least* barrier wait for
      that (iteration, phase), i.e. the machine that bound the barrier;
    * the barrier-bound waiter's wait (the machine critpath charges the
      most) — the chain must explain it within ``tolerance``.

    ``report`` is a :class:`repro.obs.critpath.AttributionReport`; its
    ``barrier_waits`` map is keyed ``(machine, label, phase)``.  Returns
    one record per checked barrier with an ``ok`` verdict; barriers of
    re-executed epochs are aggregated per (label, phase) exactly like
    critpath aggregates them.
    """
    crit_waits: Dict[Tuple[int, str, str], float] = getattr(
        report, "barrier_waits", {}
    )
    # Aggregate causal waits exactly like critpath does: per
    # (machine, label, phase), summed over epochs/re-executions.
    causal_waits: Dict[Tuple[int, str, str], float] = {}
    explained_waits: Dict[Tuple[int, str, str], float] = {}
    groups: Dict[Tuple[str, str], List[BarrierChain]] = {}
    for chain in barrier_chains(events):
        if not chain.label.isdigit() or chain.phase not in (
            "scatter",
            "gather",
        ):
            continue
        groups.setdefault((chain.label, chain.phase), []).append(chain)
        for machine, wait in chain.waits().items():
            key = (machine, chain.label, chain.phase)
            causal_waits[key] = causal_waits.get(key, 0.0) + wait
            explained_waits[key] = explained_waits.get(key, 0.0) + (
                chain.explained_wait(machine) or 0.0
            )
    records: List[dict] = []
    for (label, phase), chains in sorted(groups.items()):
        machines = sorted(
            {m for chain in chains for m in chain.waits()}
        )
        if not machines:
            continue
        bound_machine = max(
            machines, key=lambda m: (causal_waits[(m, label, phase)], m)
        )
        # A machine whose wait rounds to zero never accumulates a
        # barrier interval, so it is absent from critpath's map — that
        # absence *is* a zero-wait measurement.
        crit_for_phase = {
            machine: crit_waits.get((machine, label, phase), 0.0)
            for machine in machines
        }
        crit_wait = crit_for_phase[bound_machine]
        explained = explained_waits[(bound_machine, label, phase)]
        if crit_wait <= 0.0:
            rel_err = abs(explained - crit_wait)
            wait_ok = rel_err <= 1e-9
        else:
            rel_err = abs(explained - crit_wait) / crit_wait
            wait_ok = rel_err <= tolerance
        # The machine critpath names barrier-bound: the one that made
        # the others wait, i.e. with the smallest charged barrier wait.
        min_wait = min(crit_for_phase.values())
        crit_straggler = min(
            crit_for_phase, key=lambda m: (crit_for_phase[m], m)
        )
        # The chain terminus must sit at critpath's minimum wait (ties
        # allowed: several machines can arrive in the same instant).
        # With re-executed epochs the aggregate argmin no longer
        # identifies a single barrier instance's straggler; only hold
        # the terminus check when the barrier ran exactly once.
        straggler_ok = (
            len(chains) > 1
            or crit_for_phase[chains[0].machine] <= min_wait + 1e-9
        )
        last_chain = chains[-1]
        records.append(
            {
                "barrier": last_chain.barrier,
                "label": label,
                "phase": phase,
                "instances": len(chains),
                "straggler": last_chain.machine,
                "critpath_straggler": crit_straggler,
                "bound_machine": bound_machine,
                "wait_causal": causal_waits[(bound_machine, label, phase)],
                "wait_explained": explained,
                "wait_critpath": crit_wait,
                "rel_err": rel_err,
                "chain_duration": last_chain.duration,
                "chain_links": len(last_chain.links),
                "straggler_ok": straggler_ok,
                "wait_ok": wait_ok,
                "ok": straggler_ok and wait_ok,
            }
        )
    return records


# ---------------------------------------------------------------------------
# The query filter language
# ---------------------------------------------------------------------------

#: Longest operators first so ``>=`` never lexes as ``>`` + ``=``.
_OPERATORS = (">=", "<=", "!=", "=", ">", "<")

#: Fields holding times/durations: values accept s/ms/us/ns suffixes.
_TIME_FIELDS = frozenset({"dur", "t", "t0", "t1"})

_UNIT_SCALE = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}

#: Query-field aliases -> event accessor.
_FIELD_GETTERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "id": lambda e: e.get("id"),
    "parent": lambda e: e.get("parent"),
    "kind": lambda e: e.get("kind"),
    "cat": lambda e: e.get("cat"),
    "src": lambda e: e.get("src"),
    "dst": lambda e: e.get("dst"),
    # "machine" means "the machine the event happened on": the receiver
    # for message edges, the arriving/straggler machine for the rest.
    "machine": lambda e: e.get("machine", e.get("dst")),
    "size": lambda e: e.get("size"),
    "epoch": lambda e: e.get("epoch"),
    "label": lambda e: e.get("label"),
    "phase": lambda e: e.get("phase"),
    "barrier": lambda e: e.get("barrier"),
    "attempt": lambda e: e.get("attempt", 0),
    "trace": lambda e: e.get("trace"),
    "t": lambda e: e.get("t0"),
    "t0": lambda e: e.get("t0"),
    "t1": lambda e: e.get("t1"),
    "dur": event_duration,
}


def parse_duration(text: str) -> float:
    """``"5ms"`` → 0.005; bare numbers are seconds."""
    raw = text.strip()
    for unit in ("ms", "us", "ns", "s"):
        if raw.endswith(unit):
            try:
                return float(raw[: -len(unit)]) * _UNIT_SCALE[unit]
            except ValueError:
                raise CausalError(f"bad duration literal {text!r}") from None
    try:
        return float(raw)
    except ValueError:
        raise CausalError(f"bad duration literal {text!r}") from None


def _parse_value(field: str, text: str) -> Any:
    if text == "none":
        return None  # e.g. "t1=none": messages never delivered
    if field in _TIME_FIELDS:
        return parse_duration(text)
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _compare(op: str, actual: Any, wanted: Any) -> bool:
    if op == "=":
        return actual == wanted
    if op == "!=":
        return actual != wanted
    if actual is None or wanted is None:
        return False  # ordered comparison against missing data
    try:
        if op == ">":
            return actual > wanted
        if op == ">=":
            return actual >= wanted
        if op == "<":
            return actual < wanted
        if op == "<=":
            return actual <= wanted
    except TypeError:
        return False
    raise CausalError(f"unknown operator {op!r}")


def parse_where(text: str) -> Callable[[Dict[str, Any]], bool]:
    """Compile a ``--where`` expression into an event predicate.

    Grammar: ``clause (and clause)*`` with ``clause := field OP value``
    and ``OP`` one of ``= != > >= < <=``.  Fields: ``id parent kind cat
    src dst machine size epoch label phase barrier attempt trace t t0
    t1 dur``; time-valued fields accept ``s``/``ms``/``us``/``ns``
    suffixes (``dur>5ms``).
    """
    clauses: List[Tuple[Callable, str, Any]] = []
    for raw_clause in text.split(" and "):
        clause = raw_clause.strip()
        if not clause:
            raise CausalError(f"empty clause in where expression {text!r}")
        for op in _OPERATORS:
            if op in clause:
                field, _, value_text = clause.partition(op)
                field = field.strip()
                value_text = value_text.strip()
                if field not in _FIELD_GETTERS:
                    raise CausalError(
                        f"unknown field {field!r}; known: "
                        + " ".join(sorted(_FIELD_GETTERS))
                    )
                if not value_text:
                    raise CausalError(f"missing value in clause {clause!r}")
                clauses.append(
                    (
                        _FIELD_GETTERS[field],
                        op,
                        _parse_value(field, value_text),
                    )
                )
                break
        else:
            raise CausalError(
                f"clause {clause!r} has no operator (= != > >= < <=)"
            )

    def predicate(event: Dict[str, Any]) -> bool:
        return all(
            _compare(op, getter(event), wanted)
            for getter, op, wanted in clauses
        )

    return predicate


def filter_events(
    events: List[Dict[str, Any]], where: str
) -> List[Dict[str, Any]]:
    predicate = parse_where(where)
    return [event for event in events if predicate(event)]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def format_event(event: Dict[str, Any]) -> str:
    """One query-result line for a causal event."""
    kind = event.get("kind")
    if kind == "msg":
        dur = event_duration(event)
        dur_text = f"{dur * 1e6:9.2f}us" if dur is not None else "  (lost) "
        attempt = event.get("attempt")
        suffix = f" attempt={attempt}" if attempt else ""
        return (
            f"#{event['id']:<6d} msg     {event.get('cat', ''):<16s} "
            f"m{event.get('src')}->m{event.get('dst')}  "
            f"t={event['t0']:.6f}s  dur={dur_text}  "
            f"size={event.get('size', 0)}{suffix}"
        )
    where = event.get("barrier", event.get("cat", ""))
    return (
        f"#{event['id']:<6d} {kind:<7s} {where:<16s} "
        f"m{event.get('machine', '?')}       t={event['t0']:.6f}s"
    )


def format_chain(chain: BarrierChain) -> str:
    """Multi-line rendering of one barrier chain, root first."""
    lines = [
        f"barrier {chain.barrier}: released at {chain.release_t:.6f}s by "
        f"machine {chain.machine}, chain of {len(chain.links)} events "
        f"spanning {chain.duration * 1e3:.3f}ms"
    ]
    for link in chain.links:
        lines.append("  " + format_event(link))
    return "\n".join(lines)


def format_chain_table(chains: List[BarrierChain]) -> str:
    """The compact per-barrier chain table (``trace-report`` section)."""
    lines = [
        f"{'barrier':<18s} {'machine':>7s} {'links':>5s} "
        f"{'span':>12s} {'released at':>12s}"
    ]
    for chain in chains:
        lines.append(
            f"{chain.barrier:<18s} {chain.machine:>7d} "
            f"{len(chain.links):>5d} {chain.duration * 1e3:>10.3f}ms "
            f"{chain.release_t:>11.6f}s"
        )
    return "\n".join(lines)


def dumps_events(events: List[Dict[str, Any]]) -> str:
    """Deterministic JSON of a causal event list."""
    return json.dumps(events, sort_keys=True, separators=(",", ":"))

"""Time-series counters and periodic resource samplers.

The paper's utilization arguments (Figure 5, Figure 14) are statements
about *timelines* — what fraction of each interval a device or NIC
spent busy, how deep its queue ran, how many bytes it moved.  The
:class:`CounterRegistry` accumulates named time series, and the
:class:`ResourceSampler` is a simulation process that snapshots live
hardware meters every ``interval`` simulated seconds, turning the
simulator's cumulative meters into per-interval series a Fig. 5-style
plot can be drawn from directly.

Probe modes
-----------

``value``
    Record the probe's return value as-is (gauges: queue delay,
    cumulative bytes).
``busy_fraction``
    The probe returns cumulative busy-seconds; the sampler records the
    *delta since the previous sample divided by the elapsed interval* —
    the utilization of that interval.  Note the underlying FIFO meters
    charge a request's full service time at enqueue, so an interval's
    fraction may exceed 1 when a deep queue forms and the immediately
    following intervals show the matching dip; the cumulative average
    is exact.
``rate``
    Like ``busy_fraction`` but without normalizing to a fraction:
    delta/interval (bytes/second from a cumulative byte counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

PROBE_MODES = ("value", "busy_fraction", "rate")


@dataclass
class TimeSeries:
    """One named series of ``(timestamp, value)`` samples."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, ts: float, value: float) -> None:
        self.samples.append((ts, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        return [value for _ts, value in self.samples]

    def integral(self, start_ts: float = 0.0) -> float:
        """Integrate a per-interval rate series over time.

        Each sample ``(t_i, v_i)`` of a ``busy_fraction``/``rate`` probe
        covers the interval ``(t_{i-1}, t_i]`` (``start_ts`` before the
        first sample), so the integral ``Σ v_i · (t_i − t_{i-1})``
        recovers the cumulative quantity the probe differentiated —
        e.g. total busy seconds from a utilization timeline.
        """
        total = 0.0
        previous = start_ts
        for ts, value in self.samples:
            total += value * (ts - previous)
            previous = ts
        return total

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(v for _t, v in self.samples) / len(self.samples)

    def peak(self) -> float:
        if not self.samples:
            return 0.0
        return max(v for _t, v in self.samples)


class CounterRegistry:
    """Holds every time series of a traced run, keyed by name."""

    def __init__(self):
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def add(self, name: str, ts: float, value: float) -> None:
        self.series(name).add(ts, value)

    def names(self) -> List[str]:
        return sorted(self._series)

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def __len__(self) -> int:
        return len(self._series)

    def rows(self) -> Iterator[Tuple[str, float, float]]:
        """All samples as flat ``(series, ts, value)`` rows, series-sorted."""
        for name in self.names():
            for ts, value in self._series[name].samples:
                yield name, ts, value


@dataclass
class _Probe:
    name: str
    pid: int
    fn: Callable[[], float]
    mode: str


class ResourceSampler:
    """A simulation process that samples hardware meters periodically.

    The sampler only *reads* meters; the extra timeout events it
    schedules never change the relative order of the workload's own
    events, so attaching it does not perturb simulated results.
    """

    def __init__(self, sim, tracer, interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.tracer = tracer
        self.interval = float(interval)
        self._probes: List[_Probe] = []
        self._last_raw: Dict[str, float] = {}
        self._last_ts: Optional[float] = None
        self.samples_taken = 0

    def add_probe(
        self, name: str, pid: int, fn: Callable[[], float], mode: str = "value"
    ) -> None:
        if mode not in PROBE_MODES:
            raise ValueError(f"unknown probe mode {mode!r}")
        self._probes.append(_Probe(name, pid, fn, mode))

    def start(self) -> None:
        """Register the sampling loop as a simulation process.

        Anchors the interval bookkeeping at the current simulated time:
        every sample — including the final partial one the runtime takes
        at the finish line — divides meter deltas by the *actual*
        elapsed time, so a ``busy_fraction`` series integrates exactly
        to the meter's total busy time (no end-of-run truncation, and
        runs shorter than one interval still report correct fractions).
        """
        self._last_ts = self.sim.now
        self.sim.process(self._run(), name="obs.sampler")

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval)
            self.sample()

    def sample(self) -> None:
        """Take one snapshot of every probe at the current simulated time."""
        now = self.sim.now
        previous_ts = 0.0 if self._last_ts is None else self._last_ts
        if now <= previous_ts:
            return  # no time has passed; avoid duplicate/zero-dt samples
        elapsed = now - previous_ts
        for probe in self._probes:
            raw = probe.fn()
            if probe.mode == "value":
                value = raw
            else:
                previous = self._last_raw.get(probe.name, 0.0)
                value = (raw - previous) / elapsed
                self._last_raw[probe.name] = raw
            self.tracer.counter(probe.pid, probe.name, value, ts=now)
        self._last_ts = now
        self.samples_taken += 1

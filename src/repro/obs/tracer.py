"""Cluster-wide tracing keyed to the *simulated* clock.

The tracer records typed events — nested spans (begin/end), complete
spans with analytically-known durations, instant markers and counter
samples — on per-machine tracks, mirroring the paper's deployment of
one process per machine hosting a computation engine, a storage engine
and a NIC.  Tracks are addressed Chrome-style as ``(pid, tid)`` pairs:
``pid`` is the machine index (plus one extra "cluster" process for
job-level markers) and ``tid`` selects the component within the
machine (:data:`TID_ENGINE`, :data:`TID_DEVICE`, :data:`TID_NIC_TX`,
:data:`TID_NIC_RX`).

Design constraints, in order:

1. **Zero cost when disabled.**  Components hold a :class:`Track` (or
   :data:`NULL_TRACK`); every method of the null objects is a no-op and
   hot paths additionally guard on ``track.enabled`` before formatting
   labels.
2. **Determinism.**  All timestamps come from the simulated clock; the
   recording order is the (deterministic) simulation callback order, so
   two runs with the same seed produce byte-identical exports.
3. **Multi-run composition.**  Drivers (MCST, SCC) and the recovery
   harness execute several simulations back to back, each with a fresh
   clock starting at zero; :meth:`Tracer.bind_run` re-bases subsequent
   events after everything already recorded so the runs appear
   sequentially on one timeline.

Timestamps are stored in simulated **seconds**; the Chrome exporter
(:mod:`repro.obs.export`) converts to the microseconds the
``trace_event`` format requires.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.causal import NULL_CAUSAL, CausalRecorder
from repro.obs.counters import CounterRegistry

#: Thread ids within a machine process (Chrome ``tid``).
TID_JOB = 0
TID_ENGINE = 1
TID_DEVICE = 2
TID_NIC_TX = 3
TID_NIC_RX = 4
TID_CPU = 5

#: Human names for the fixed per-machine threads.
THREAD_NAMES = {
    TID_JOB: "job",
    TID_ENGINE: "engine",
    TID_DEVICE: "device",
    TID_NIC_TX: "nic.tx",
    TID_NIC_RX: "nic.rx",
    TID_CPU: "cpu",
}


class TraceError(RuntimeError):
    """Raised for tracer misuse (e.g. ending a span that never began)."""


class Track:
    """A (pid, tid) lane of the trace; the handle components record on."""

    __slots__ = ("tracer", "pid", "tid")

    enabled = True

    def __init__(self, tracer: "Tracer", pid: int, tid: int):
        self.tracer = tracer
        self.pid = pid
        self.tid = tid

    def begin(
        self,
        name: str,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Open a nested span at the current simulated time."""
        self.tracer.begin(self.pid, self.tid, name, cat=cat, args=args)

    def end(self, args: Optional[dict] = None) -> None:
        """Close the innermost open span on this track."""
        self.tracer.end(self.pid, self.tid, args=args)

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a span whose extent is already known (FIFO servers
        compute completion times analytically at request time)."""
        self.tracer.complete(
            self.pid, self.tid, name, start, duration, cat=cat, args=args
        )

    def instant(
        self,
        name: str,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Record a zero-duration marker."""
        self.tracer.instant(self.pid, self.tid, name, cat=cat, args=args, ts=ts)


class _NullTrack:
    """No-op track: every recording method does nothing."""

    __slots__ = ()

    enabled = False

    def begin(self, name, cat=None, args=None):  # noqa: D102 - no-op
        pass

    def end(self, args=None):
        pass

    def complete(self, name, start, duration, cat=None, args=None):
        pass

    def instant(self, name, cat=None, args=None, ts=None):
        pass


NULL_TRACK = _NullTrack()


class NullTracer:
    """Disabled tracer: hands out null tracks, records nothing."""

    enabled = False
    sample_interval: Optional[float] = None
    causal = NULL_CAUSAL

    def thread(self, pid, tid, name=None) -> _NullTrack:
        return NULL_TRACK

    def set_process(self, pid, name):
        pass

    def bind_run(self, clock):
        pass

    def instant(self, pid, tid, name, cat=None, args=None, ts=None):
        pass

    def counter(self, pid, name, value, ts=None):
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects typed trace events against the simulated clock.

    ``sample_interval`` is the period (simulated seconds) of the
    periodic resource samplers that the runtime attaches when tracing is
    on; ``None`` disables time-series sampling while keeping spans.
    """

    enabled = True

    def __init__(self, sample_interval: Optional[float] = 1e-3):
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError("sample_interval must be positive (or None)")
        self.sample_interval = sample_interval
        #: Raw events, in recording order, timestamps in simulated seconds.
        self.events: List[Dict[str, Any]] = []
        self.registry = CounterRegistry()
        #: Message-level causal DAG recorder (same clock, same offsets).
        self.causal = CausalRecorder(self)
        self._clock: Optional[Callable[[], float]] = None
        self._offset = 0.0
        self._end = 0.0
        self._open: Dict[Tuple[int, int], List[Tuple[str, Optional[str]]]] = {}
        self._processes: Dict[int, str] = {}
        self._threads: Dict[Tuple[int, int], str] = {}

    # -- clock binding -----------------------------------------------------

    def bind_run(self, clock: Callable[[], float]) -> None:
        """Attach to a (new) simulation run.

        The run's clock is expected to start at zero; its events are
        offset past everything already recorded, so back-to-back runs
        (multi-phase drivers, recovery re-execution) lay out
        sequentially on the shared timeline.
        """
        self._offset = self._end
        self._clock = clock
        self.causal.on_bind()

    def now(self) -> float:
        """Current trace time (offset-adjusted simulated seconds)."""
        if self._clock is None:
            return self._offset
        return self._offset + self._clock()

    @property
    def end_time(self) -> float:
        """Largest timestamp recorded so far."""
        return self._end

    def _stamp(self, ts: Optional[float]) -> float:
        t = self.now() if ts is None else self._offset + ts
        if t > self._end:
            self._end = t
        return t

    # -- track registry ----------------------------------------------------

    def set_process(self, pid: int, name: str) -> None:
        self._processes[pid] = name

    def thread(self, pid: int, tid: int, name: Optional[str] = None) -> Track:
        """Get the track for ``(pid, tid)``, optionally naming it."""
        if name is None:
            name = THREAD_NAMES.get(tid, f"track{tid}")
        self._threads[(pid, tid)] = name
        return Track(self, pid, tid)

    @property
    def processes(self) -> Dict[int, str]:
        return dict(self._processes)

    @property
    def threads(self) -> Dict[Tuple[int, int], str]:
        return dict(self._threads)

    # -- recording ---------------------------------------------------------

    def _record(
        self,
        ph: str,
        pid: int,
        tid: int,
        name: str,
        ts: float,
        cat: Optional[str] = None,
        dur: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "ph": ph,
            "pid": pid,
            "tid": tid,
            "name": name,
            "ts": ts,
        }
        if cat is not None:
            event["cat"] = cat
        if dur is not None:
            event["dur"] = dur
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def begin(
        self,
        pid: int,
        tid: int,
        name: str,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        t = self._stamp(ts)
        self._open.setdefault((pid, tid), []).append((name, cat))
        self._record("B", pid, tid, name, t, cat=cat, args=args)

    def end(
        self,
        pid: int,
        tid: int,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        stack = self._open.get((pid, tid))
        if not stack:
            raise TraceError(
                f"end without begin on track (pid={pid}, tid={tid})"
            )
        name, cat = stack.pop()
        t = self._stamp(ts)
        self._record("E", pid, tid, name, t, cat=cat, args=args)

    def complete(
        self,
        pid: int,
        tid: int,
        name: str,
        start: float,
        duration: float,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        if duration < 0:
            raise TraceError(f"negative span duration {duration}")
        t = self._offset + start
        if t + duration > self._end:
            self._end = t + duration
        self._record("X", pid, tid, name, t, cat=cat, dur=duration, args=args)

    def instant(
        self,
        pid: int,
        tid: int,
        name: str,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        self._record("i", pid, tid, name, self._stamp(ts), cat=cat, args=args)

    def counter(
        self,
        pid: int,
        name: str,
        value: float,
        ts: Optional[float] = None,
    ) -> None:
        """Record one sample of a per-process counter time series."""
        t = self._stamp(ts)
        self.registry.add(name, t, value)
        self._record("C", pid, TID_JOB, name, t, args={"value": value})

    # -- integrity ---------------------------------------------------------

    def open_span_count(self) -> int:
        """Spans begun but not yet ended (should be 0 after a run)."""
        return sum(len(stack) for stack in self._open.values())

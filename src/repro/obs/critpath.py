"""Bottleneck attribution: exact wall-clock decomposition of a trace.

The analyzer replays a recorded trace (live :class:`~repro.obs.tracer.Tracer`
or a saved Chrome-trace document) and attributes every simulated second
of every machine to exactly one of :data:`ATTRIBUTION_CATEGORIES`:

* ``storage_busy``  — the local device was serving a request;
* ``storage_queue`` — the device was serving a *backlogged* request
  (one that waited behind another), the queueing share of busy time;
* ``nic_busy``      — a NIC direction was moving bytes while the
  engine demanded progress;
* ``net_wait``      — the engine waited with no local resource busy
  (remote service time, protocol round trips);
* ``cpu``           — cores were executing chunk processing or Apply;
* ``barrier``       — idle at a global phase barrier;
* ``steal``         — work-stealing overhead: vertex-set copies on the
  stealer side, accumulator shipping, masters waiting for stealer
  accumulators, and steal-proposal round trips;
* ``recovery``      — inside a rollback window (work discarded by a
  fault plus checkpoint-restore time).

The decomposition is built from an elementary-interval sweep over every
machine's timeline, so the category seconds of one machine sum to the
trace duration *by construction* (closure is asserted to float
precision by :meth:`AttributionReport.closure_error`).

Classification priority per elementary interval: recovery window >
engine barrier state > steal state > Apply/merge CPU > demand states,
with demand time refined by which local resource was busy (device,
then NIC, then cores, else ``net_wait``).

Beyond the decomposition the report names the binding resource, checks
the measured steady-state storage utilization against the analytic
rho(m, k) of Eq. 4 (:func:`repro.core.batching.utilization`), and flags
stragglers: machines whose barrier wait in an iteration exceeds the
Section 5.4 stealing bound ``(1 + alpha) * max(vertex load) +
max(chunk service)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import (
    TID_CPU,
    TID_DEVICE,
    TID_ENGINE,
    TID_JOB,
    TID_NIC_RX,
    TID_NIC_TX,
    Tracer,
)

ATTRIBUTION_CATEGORIES = (
    "storage_busy",
    "storage_queue",
    "nic_busy",
    "net_wait",
    "cpu",
    "barrier",
    "steal",
    "recovery",
)

#: Engine spans that are pure stealing overhead wherever they appear.
_STEAL_SPANS = frozenset({"merge_wait", "ship_accum", "steal_pass"})

#: Engine spans that are pure computation (the Apply/merge phase runs
#: on the calling engine's cores).
_CPU_SPANS = frozenset({"merge_apply"})

_BARRIER_SPANS = frozenset({"barrier", "preprocess.barrier"})

#: Job-track span categories marking rollback windows.
_RECOVERY_CATS = frozenset({"lost", "restore"})

#: Trace Event Format microseconds -> simulated seconds.
_SECONDS = 1e-6

#: Tolerance for "this device span started exactly when the previous
#: one finished", i.e. the request had queued (relative to timestamps).
_QUEUE_EPS = 1e-9


class AttributionError(ValueError):
    """Raised when a trace cannot be attributed (e.g. spans disabled)."""


# ---------------------------------------------------------------------------
# Interval helpers
# ---------------------------------------------------------------------------


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping intervals, as sorted disjoint ones."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _intersect(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Intersection of two sorted disjoint interval lists."""
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            out.append((start, end))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _measure(intervals: List[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


class _Cursor:
    """Monotone membership test over a sorted disjoint interval list.

    The sweep only asks about elementary intervals whose endpoints are
    drawn from the union of all interval boundaries, so each query
    interval is entirely inside or entirely outside every interval.
    """

    __slots__ = ("intervals", "index")

    def __init__(self, intervals: List[Tuple[float, float]]):
        self.intervals = intervals
        self.index = 0

    def covers(self, start: float, end: float) -> bool:
        intervals = self.intervals
        while self.index < len(intervals) and intervals[self.index][1] <= start:
            self.index += 1
        if self.index >= len(intervals):
            return False
        s, e = intervals[self.index]
        return s <= start and end <= e


class _SpanCursor:
    """Like :class:`_Cursor` but returns the covering span's payload."""

    __slots__ = ("spans", "index")

    def __init__(self, spans: List[Tuple[float, float, bool]]):
        self.spans = spans
        self.index = 0

    def lookup(self, start: float, end: float) -> Optional[bool]:
        spans = self.spans
        while self.index < len(spans) and spans[self.index][1] <= start:
            self.index += 1
        if self.index >= len(spans):
            return None
        s, e, queued = spans[self.index]
        if s <= start and end <= e:
            return queued
        return None


# ---------------------------------------------------------------------------
# Engine timeline replay
# ---------------------------------------------------------------------------


@dataclass
class _Segment:
    start: float
    end: float
    state: str  # "barrier" | "steal" | "cpu" | "demand"
    label: str  # "preprocess" or the iteration number as a string
    phase: str  # "preprocess" | "scatter" | "gather"
    #: Engine innermost span is a ``stream`` (windowed chunk streaming,
    #: the regime Eq. 4 models).
    streaming: bool = False


def _replay_engine(
    events: List[dict],
    duration: float,
    recovery: List[Tuple[float, float]] = (),
) -> Tuple[List[_Segment], Dict[Tuple[str, str], float]]:
    """Replay one engine track's B/E events into state segments.

    ``recovery`` is the sorted list of rollback windows: every engine of
    the pre-fault epoch is killed during a window, so spans still open
    when a window closes will never see their E event.

    Returns the segments covering ``[0, duration]`` and the maximum
    ``vertex_load`` span duration per (iteration label, phase) — the V
    term of the Section 5.4 straggler bound.
    """
    segments: List[_Segment] = []
    vertex_load_max: Dict[Tuple[str, str], float] = {}
    # B events whose E never arrives: spans held open by an engine that
    # was killed (or still open at trace end).  LIFO matching is exact
    # because killed epochs only ever *leak* opens — they never emit an
    # unmatched E.
    match_stack: List[int] = []
    for index, event in enumerate(events):
        if event["ph"] == "B":
            match_stack.append(index)
        elif event["ph"] == "E" and match_stack:
            match_stack.pop()
    unclosed = frozenset(match_stack)
    # Stack entries: (name, cat, args, push_ts, event_index).  The
    # restarted epoch's spans stack above the dead epoch's unclosed
    # entries, so pops (LIFO) still match the live pushes; the stale
    # entries themselves are truncated when their rollback window
    # closes (below) so they can never leak into post-restart state
    # classification.
    stack: List[Tuple[str, Optional[str], dict, float, int]] = []
    rec_index = 0
    prev = 0.0
    last_label = "preprocess"
    last_phase = "preprocess"

    def current_state() -> Tuple[str, str, str, bool]:
        label = None
        phase = None
        for name, _cat, args, _ts, _idx in reversed(stack):
            if name in ("scatter", "gather"):
                label = str(args.get("iteration", "?"))
                phase = name
                break
        state = "demand"
        streaming = bool(stack) and stack[-1][0] == "stream"
        if stack:
            name, _cat, args, _ts, _idx = stack[-1]
            if name in _BARRIER_SPANS:
                state = "barrier"
            elif name in _STEAL_SPANS:
                state = "steal"
            elif name in _CPU_SPANS:
                state = "cpu"
            elif name == "vertex_load":
                for pname, _pc, pargs, _pt, _pi in reversed(stack[:-1]):
                    if pname.startswith("partition"):
                        if pargs.get("role") == "stealer":
                            state = "steal"
                        break
        return state, label or last_label, phase or last_phase, streaming

    def emit(until: float) -> None:
        nonlocal prev
        if until > prev:
            state, label, phase, streaming = current_state()
            segments.append(
                _Segment(prev, until, state, label, phase, streaming)
            )
            prev = until

    def close_windows(until: float) -> None:
        # A span still open when a rollback window closes and whose E
        # event never arrives was held by a killed engine: flush the
        # pre-window segment, then drop the stale entries so
        # post-restart time is never classified by a dead epoch's
        # innermost span.  (Spans that do close later — an engine that
        # survived the window — are kept.)
        nonlocal rec_index
        while rec_index < len(recovery) and recovery[rec_index][1] <= until:
            window_end = recovery[rec_index][1]
            emit(window_end)
            stack[:] = [
                entry
                for entry in stack
                if entry[4] not in unclosed or entry[3] >= window_end
            ]
            rec_index += 1

    for index, event in enumerate(events):
        ph = event["ph"]
        if ph not in ("B", "E"):
            continue
        ts = event["ts"]
        close_windows(ts)
        emit(ts)
        if ph == "B":
            stack.append(
                (
                    event["name"],
                    event.get("cat"),
                    event.get("args") or {},
                    ts,
                    index,
                )
            )
            if event["name"] in ("scatter", "gather"):
                last_label = str(event.get("args", {}).get("iteration", "?"))
                last_phase = event["name"]
        elif stack:
            name, _cat, _args, t0, _idx = stack.pop()
            if name == "vertex_load":
                _state, label, phase, _streaming = current_state()
                key = (label, phase)
                span = ts - t0
                if span > vertex_load_max.get(key, 0.0):
                    vertex_load_max[key] = span
    close_windows(duration)
    emit(duration)
    return segments, vertex_load_max


# ---------------------------------------------------------------------------
# Report dataclasses
# ---------------------------------------------------------------------------


@dataclass
class MachineAttribution:
    """One machine's wall clock, split across the categories."""

    machine: int
    seconds: Dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return sum(self.seconds.get(c, 0.0) for c in ATTRIBUTION_CATEGORIES)


@dataclass
class IterationAttribution:
    """Cluster engine-seconds per category for one iteration label."""

    label: str
    seconds: Dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return sum(self.seconds.get(c, 0.0) for c in ATTRIBUTION_CATEGORIES)


@dataclass
class ResourceUtilization:
    """Busy fraction of one resource (``machine is None`` = cluster)."""

    resource: str  # "storage" | "nic" | "cpu"
    machine: Optional[int]
    busy_seconds: float
    utilization: float

    @property
    def slack(self) -> float:
        return max(0.0, 1.0 - self.utilization)


@dataclass
class StragglerFlag:
    """A machine whose barrier wait broke the Section 5.4 bound."""

    machine: int
    iteration: str
    phase: str
    wait: float
    bound: float


@dataclass
class AttributionReport:
    """Everything the bottleneck analyzer derives from one trace."""

    duration: float
    machines: int
    config: Dict[str, object] = field(default_factory=dict)
    per_machine: List[MachineAttribution] = field(default_factory=list)
    per_iteration: List[IterationAttribution] = field(default_factory=list)
    utilization: List[ResourceUtilization] = field(default_factory=list)
    #: Aggregate engine-seconds per category over all machines.
    cluster_seconds: Dict[str, float] = field(default_factory=dict)
    #: The binding resource: "storage", "network" or "cpu".
    bottleneck: str = ""
    #: The single largest attribution category.
    dominant_category: str = ""
    #: Steady-state storage utilization vs the Eq. 4 prediction.
    measured_rho: Optional[float] = None
    analytic_rho: Optional[float] = None
    stragglers: List[StragglerFlag] = field(default_factory=list)
    #: Per-machine engine-seconds idle at each phase barrier, keyed by
    #: ``(machine, iteration_label, phase)`` and summed over epochs.
    #: The causal slowest-chain analyzer cross-checks its chains
    #: against this decomposition (repro.obs.causal.cross_check).
    barrier_waits: Dict[Tuple[int, str, str], float] = field(
        default_factory=dict
    )

    def closure_error(self) -> float:
        """Worst |machine total - duration| over all machines (seconds)."""
        if not self.per_machine:
            return 0.0
        return max(abs(m.total() - self.duration) for m in self.per_machine)

    def rho_error(self) -> Optional[float]:
        """Relative error of measured vs analytic utilization."""
        if self.measured_rho is None or not self.analytic_rho:
            return None
        return abs(self.measured_rho - self.analytic_rho) / self.analytic_rho

    def category_fractions(self) -> Dict[str, float]:
        total = sum(self.cluster_seconds.get(c, 0.0) for c in ATTRIBUTION_CATEGORIES)
        if total <= 0:
            return {c: 0.0 for c in ATTRIBUTION_CATEGORIES}
        return {
            c: self.cluster_seconds.get(c, 0.0) / total
            for c in ATTRIBUTION_CATEGORIES
        }

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "machines": self.machines,
            "config": dict(self.config),
            "cluster_seconds": {
                c: self.cluster_seconds.get(c, 0.0)
                for c in ATTRIBUTION_CATEGORIES
            },
            "bottleneck": self.bottleneck,
            "dominant_category": self.dominant_category,
            "measured_rho": self.measured_rho,
            "analytic_rho": self.analytic_rho,
            "closure_error": self.closure_error(),
            "per_machine": [
                {"machine": m.machine, "seconds": dict(m.seconds)}
                for m in self.per_machine
            ],
            "per_iteration": [
                {"label": it.label, "seconds": dict(it.seconds)}
                for it in self.per_iteration
            ],
            "utilization": [
                {
                    "resource": u.resource,
                    "machine": u.machine,
                    "busy_seconds": u.busy_seconds,
                    "utilization": u.utilization,
                }
                for u in self.utilization
            ],
            "stragglers": [
                {
                    "machine": s.machine,
                    "iteration": s.iteration,
                    "phase": s.phase,
                    "wait": s.wait,
                    "bound": s.bound,
                }
                for s in self.stragglers
            ],
            "barrier_waits": [
                {
                    "machine": machine,
                    "label": label,
                    "phase": phase,
                    "wait": wait,
                }
                for (machine, label, phase), wait in sorted(
                    self.barrier_waits.items()
                )
            ],
        }


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def _iteration_sort_key(label: str) -> Tuple[int, int, str]:
    if label == "preprocess":
        return (0, 0, label)
    if label.isdigit():
        return (1, int(label), label)
    return (2, 0, label)


def _device_spans(events: List[dict]) -> List[Tuple[float, float, bool]]:
    """Device busy spans with a queued flag (back-to-back service)."""
    raw = sorted(
        (e["ts"], e["ts"] + e.get("dur", 0.0)) for e in events if e["ph"] == "X"
    )
    spans: List[Tuple[float, float, bool]] = []
    prev_end = None
    for start, end in raw:
        if end <= start:
            continue
        queued = (
            prev_end is not None
            and abs(start - prev_end) <= _QUEUE_EPS * max(1.0, prev_end)
        )
        spans.append((start, end, queued))
        prev_end = end
    return spans


def _x_intervals(events: List[dict]) -> List[Tuple[float, float]]:
    return _merge(
        [(e["ts"], e["ts"] + e.get("dur", 0.0)) for e in events if e["ph"] == "X"]
    )


def analyze_events(
    events: List[dict],
    duration: Optional[float] = None,
    config: Optional[Dict[str, object]] = None,
) -> AttributionReport:
    """Attribute a normalized event list (timestamps in seconds).

    ``config`` overrides/augments the ``job.config`` marker the runtime
    embeds in traces; ``duration`` defaults to the largest event end.
    """
    by_track: Dict[Tuple[int, int], List[dict]] = {}
    trace_config: Dict[str, object] = {}
    max_ts = 0.0
    for event in events:
        ph = event.get("ph")
        if ph not in ("B", "E", "X", "i"):
            continue
        end = event["ts"] + event.get("dur", 0.0)
        if end > max_ts:
            max_ts = end
        if ph == "i" and event["name"] == "job.config" and not trace_config:
            trace_config = dict(event.get("args") or {})
        by_track.setdefault((event["pid"], event["tid"]), []).append(event)

    if config:
        trace_config.update(config)
    machines = int(trace_config.get("machines", 0))
    if not machines:
        machines = len(
            [key for key in by_track if key[1] == TID_ENGINE]
        )
    if not machines:
        raise AttributionError(
            "trace has no engine spans; record it with tracing enabled"
        )
    if duration is None:
        duration = max_ts
    if duration <= 0:
        raise AttributionError("trace duration is zero")

    # Rollback windows (cluster-wide: every machine stalls or loses
    # work during a recovery).
    recovery = _merge(
        [
            (e["ts"], e["ts"] + e.get("dur", 0.0))
            for e in by_track.get((machines, TID_JOB), [])
            if e["ph"] == "X" and e.get("cat") in _RECOVERY_CATS
        ]
    )

    report = AttributionReport(
        duration=duration, machines=machines, config=trace_config
    )
    iteration_seconds: Dict[str, Dict[str, float]] = {}
    barrier_waits: Dict[Tuple[int, str, str], float] = {}
    vertex_load_max: Dict[Tuple[str, str], float] = {}
    demand_by_machine: List[List[Tuple[float, float]]] = []
    device_busy_by_machine: List[List[Tuple[float, float]]] = []
    max_device_span = 0.0

    for machine in range(machines):
        engine_events = by_track.get((machine, TID_ENGINE), [])
        segments, vl_max = _replay_engine(engine_events, duration, recovery)
        for key, value in vl_max.items():
            if value > vertex_load_max.get(key, 0.0):
                vertex_load_max[key] = value

        dev_spans = _device_spans(by_track.get((machine, TID_DEVICE), []))
        for start, end, _q in dev_spans:
            if end - start > max_device_span:
                max_device_span = end - start
        device_busy = _merge([(s, e) for s, e, _q in dev_spans])
        device_busy_by_machine.append(device_busy)
        nic_busy = _merge(
            _x_intervals(by_track.get((machine, TID_NIC_TX), []))
            + _x_intervals(by_track.get((machine, TID_NIC_RX), []))
        )
        cpu_busy = _x_intervals(by_track.get((machine, TID_CPU), []))

        bounds = {0.0, duration}
        for seg in segments:
            bounds.add(seg.start)
            bounds.add(seg.end)
        for start, end, _q in dev_spans:
            bounds.add(start)
            bounds.add(end)
        for start, end in nic_busy + cpu_busy + recovery:
            bounds.add(start)
            bounds.add(end)
        edges = sorted(t for t in bounds if 0.0 <= t <= duration)

        seconds = {c: 0.0 for c in ATTRIBUTION_CATEGORIES}
        demand: List[Tuple[float, float]] = []
        dev_cursor = _SpanCursor(dev_spans)
        nic_cursor = _Cursor(nic_busy)
        cpu_cursor = _Cursor(cpu_busy)
        rec_cursor = _Cursor(recovery)
        seg_index = 0

        for a, b in zip(edges, edges[1:]):
            width = b - a
            # Advance to the engine segment containing [a, b).
            while seg_index < len(segments) and segments[seg_index].end <= a:
                seg_index += 1
            seg = segments[seg_index] if seg_index < len(segments) else None
            label = seg.label if seg is not None else "preprocess"
            state = seg.state if seg is not None else "demand"
            phase = seg.phase if seg is not None else "preprocess"

            if rec_cursor.covers(a, b):
                category = "recovery"
            elif state == "barrier":
                category = "barrier"
            elif state == "steal":
                category = "steal"
            elif state == "cpu":
                category = "cpu"
            else:
                queued = dev_cursor.lookup(a, b)
                if queued is not None:
                    category = "storage_queue" if queued else "storage_busy"
                elif nic_cursor.covers(a, b):
                    category = "nic_busy"
                elif cpu_cursor.covers(a, b):
                    category = "cpu"
                else:
                    category = "net_wait"
                # Steady-state sample for the Eq. 4 check: the engine
                # is inside windowed chunk streaming of a numbered
                # iteration (the regime the batching model describes).
                if label.isdigit() and seg is not None and seg.streaming:
                    demand.append((a, b))

            seconds[category] += width
            bucket = iteration_seconds.setdefault(
                label, {c: 0.0 for c in ATTRIBUTION_CATEGORIES}
            )
            bucket[category] += width
            if category == "barrier" and phase in ("scatter", "gather"):
                key = (machine, label, phase)
                barrier_waits[key] = barrier_waits.get(key, 0.0) + width

        report.per_machine.append(
            MachineAttribution(machine=machine, seconds=seconds)
        )
        demand_by_machine.append(_merge(demand))

        dev_busy_s = _measure(device_busy)
        nic_busy_s = _measure(nic_busy)
        cpu_busy_s = _measure(cpu_busy)
        report.utilization.append(
            ResourceUtilization("storage", machine, dev_busy_s, dev_busy_s / duration)
        )
        report.utilization.append(
            ResourceUtilization("nic", machine, nic_busy_s, nic_busy_s / duration)
        )
        report.utilization.append(
            ResourceUtilization("cpu", machine, cpu_busy_s, cpu_busy_s / duration)
        )

    # Cluster aggregates -----------------------------------------------------
    for category in ATTRIBUTION_CATEGORIES:
        report.cluster_seconds[category] = sum(
            m.seconds.get(category, 0.0) for m in report.per_machine
        )
    for resource in ("storage", "nic", "cpu"):
        busy = sum(
            u.busy_seconds
            for u in report.utilization
            if u.resource == resource and u.machine is not None
        )
        report.utilization.append(
            ResourceUtilization(
                resource, None, busy, busy / (machines * duration)
            )
        )

    report.per_iteration = [
        IterationAttribution(label=label, seconds=iteration_seconds[label])
        for label in sorted(iteration_seconds, key=_iteration_sort_key)
    ]

    cs = report.cluster_seconds
    resource_seconds = {
        "storage": cs["storage_busy"] + cs["storage_queue"],
        "network": cs["nic_busy"] + cs["net_wait"],
        "cpu": cs["cpu"],
    }
    report.bottleneck = max(
        sorted(resource_seconds), key=lambda r: resource_seconds[r]
    )
    report.dominant_category = max(
        ATTRIBUTION_CATEGORIES, key=lambda c: cs[c]
    )

    # Steady-state utilization vs Eq. 4 --------------------------------------
    window = demand_by_machine[0] if demand_by_machine else []
    for intervals in demand_by_machine[1:]:
        window = _intersect(window, intervals)
    window_len = _measure(window)
    if window_len > 0:
        busy_in_window = sum(
            _measure(_intersect(device_busy_by_machine[m], window))
            for m in range(machines)
        )
        report.measured_rho = busy_in_window / (machines * window_len)
    batch_factor = trace_config.get("batch_factor")
    if batch_factor:
        from repro.core.batching import utilization as analytic_utilization

        report.analytic_rho = analytic_utilization(machines, int(batch_factor))

    # Straggler detection (Section 5.4 bound) --------------------------------
    # With stealing on, the residual imbalance at a phase barrier is
    # bounded by the cost of the last steal that could not happen: the
    # vertex-set copy (V, inflated by the Eq. 2 acceptance factor
    # alpha) plus the drain of the request window already in flight.
    alpha = float(trace_config.get("steal_alpha") or 0.0) or 1.0
    window = int(trace_config.get("request_window") or 10)
    for (machine, label, phase), wait in sorted(barrier_waits.items()):
        if not label.isdigit():
            continue
        bound = (1.0 + alpha) * vertex_load_max.get(
            (label, phase), 0.0
        ) + window * max_device_span
        if wait > bound:
            report.stragglers.append(
                StragglerFlag(machine, label, phase, wait, bound)
            )
    report.barrier_waits = barrier_waits

    return report


def analyze_tracer(
    tracer: Tracer, config: Optional[Dict[str, object]] = None
) -> AttributionReport:
    """Attribute a live (in-process) trace recording."""
    if not tracer.enabled:
        raise AttributionError("tracer is disabled; nothing to attribute")
    return analyze_events(
        tracer.events, duration=tracer.end_time, config=config
    )


def analyze_chrome_trace(
    trace: dict, config: Optional[Dict[str, object]] = None
) -> AttributionReport:
    """Attribute a loaded Chrome-trace document (timestamps in us)."""
    events = []
    for raw in trace.get("traceEvents", []):
        if raw.get("ph") == "M":
            continue
        event = dict(raw)
        event["ts"] = raw["ts"] * _SECONDS
        if "dur" in event:
            event["dur"] = raw["dur"] * _SECONDS
        events.append(event)
    return analyze_events(events, config=config)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_SHORT = {
    "storage_busy": "st.busy",
    "storage_queue": "st.queue",
    "nic_busy": "nic",
    "net_wait": "net.wait",
    "cpu": "cpu",
    "barrier": "barrier",
    "steal": "steal",
    "recovery": "recov",
}


def _row(label: str, seconds: Dict[str, float], width: int = 10) -> str:
    cells = "".join(
        f"{seconds.get(c, 0.0):>{width}.4f}" for c in ATTRIBUTION_CATEGORIES
    )
    return f"  {label:<12}{cells}"


def _header(width: int = 10) -> str:
    cells = "".join(f"{_SHORT[c]:>{width}}" for c in ATTRIBUTION_CATEGORIES)
    return f"  {'':<12}{cells}"


def format_iteration_table(report: AttributionReport) -> List[str]:
    """Per-iteration attribution rows (shared with ``trace-report``)."""
    lines = ["per-iteration attribution (engine-seconds):", _header()]
    for it in report.per_iteration:
        lines.append(_row(it.label, it.seconds))
    return lines


def format_attribution_report(report: AttributionReport) -> str:
    """Human-readable rendering of an :class:`AttributionReport`."""
    lines = [
        "== bottleneck attribution ==",
        f"duration          {report.duration:.6f}s x {report.machines} machines",
        f"binding resource  {report.bottleneck} "
        f"(dominant category: {report.dominant_category})",
        f"closure error     {report.closure_error():.3e}s",
    ]
    if report.measured_rho is not None:
        line = f"storage rho       measured={report.measured_rho:.4f}"
        if report.analytic_rho is not None:
            line += (
                f" analytic={report.analytic_rho:.4f}"
                f" (rel err {report.rho_error():.2%})"
            )
        lines.append(line)
    lines.append("")
    lines.append("cluster attribution (engine-seconds; share of total):")
    fractions = report.category_fractions()
    for category in ATTRIBUTION_CATEGORIES:
        lines.append(
            f"  {category:<14}{report.cluster_seconds.get(category, 0.0):>12.4f}s"
            f"  {fractions[category]:>7.1%}"
        )
    lines.append("")
    lines.extend(format_iteration_table(report))
    lines.append("")
    lines.append("per-machine attribution (seconds):")
    lines.append(_header())
    for m in report.per_machine:
        lines.append(_row(f"machine{m.machine}", m.seconds))
    lines.append("")
    lines.append("resource utilization:")
    for u in report.utilization:
        scope = "cluster" if u.machine is None else f"machine{u.machine}"
        lines.append(
            f"  {scope:<10}{u.resource:<9}busy={u.busy_seconds:10.4f}s"
            f"  util={u.utilization:7.1%}  slack={u.slack:7.1%}"
        )
    if report.stragglers:
        lines.append("")
        lines.append("stragglers (barrier wait above Section 5.4 bound):")
        for s in report.stragglers:
            lines.append(
                f"  machine{s.machine} iter {s.iteration} {s.phase}: "
                f"wait={s.wait:.6f}s bound={s.bound:.6f}s"
            )
    return "\n".join(lines)

"""Vertex-range streaming partitions and the one-pass edge split.

This module implements Section 3 of the paper verbatim:

* the partition count is *"the smallest multiple of the number of
  machines such that the vertex set of each partition fits into
  memory"*;
* vertex ids are split into ranges of consecutive identifiers;
* an edge belongs to the partition of its **source** vertex;
* the split is a single pass over the edge list with O(1) work per edge
  and parallelizes trivially (each machine splits an even share of the
  input — we expose that as :func:`preprocess`'s ``input_shards``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.edgelist import EdgeList


@dataclass(frozen=True)
class PartitionLayout:
    """Immutable description of the streaming partitions of a graph.

    ``boundaries`` has ``num_partitions + 1`` entries; partition ``p``
    owns vertex ids ``boundaries[p] .. boundaries[p+1]-1``.
    """

    num_vertices: int
    num_partitions: int
    boundaries: np.ndarray

    def __post_init__(self):
        if self.num_partitions < 1:
            raise ValueError("need at least one partition")
        bounds = np.asarray(self.boundaries, dtype=np.int64)
        if bounds.shape != (self.num_partitions + 1,):
            raise ValueError(
                f"boundaries must have {self.num_partitions + 1} entries"
            )
        if bounds[0] != 0 or bounds[-1] != self.num_vertices:
            raise ValueError("boundaries must span [0, num_vertices]")
        if np.any(np.diff(bounds) < 0):
            raise ValueError("boundaries must be non-decreasing")
        object.__setattr__(self, "boundaries", bounds)

    @classmethod
    def even(cls, num_vertices: int, num_partitions: int) -> "PartitionLayout":
        """Split ids into ``num_partitions`` near-equal consecutive ranges."""
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        base = num_vertices // num_partitions
        extra = num_vertices % num_partitions
        sizes = np.full(num_partitions, base, dtype=np.int64)
        sizes[:extra] += 1
        boundaries = np.concatenate([[0], np.cumsum(sizes)])
        return cls(num_vertices, num_partitions, boundaries)

    def partition_of(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Partition index for each vertex id (vectorized)."""
        return (
            np.searchsorted(self.boundaries, vertex_ids, side="right") - 1
        ).astype(np.int64)

    def vertex_range(self, partition: int) -> range:
        return range(
            int(self.boundaries[partition]), int(self.boundaries[partition + 1])
        )

    def vertex_count(self, partition: int) -> int:
        return int(self.boundaries[partition + 1] - self.boundaries[partition])

    def start(self, partition: int) -> int:
        return int(self.boundaries[partition])

    def to_local(self, partition: int, vertex_ids: np.ndarray) -> np.ndarray:
        """Global vertex ids -> indices local to ``partition``'s range."""
        return vertex_ids - self.boundaries[partition]


def choose_partition_count(
    num_vertices: int,
    machines: int,
    vertex_state_bytes: int,
    memory_bytes: int,
) -> int:
    """Smallest multiple of ``machines`` whose per-partition vertex state
    fits in ``memory_bytes`` (Section 3).

    ``vertex_state_bytes`` is the per-vertex footprint including the
    auxiliary structures (value + accumulator + bookkeeping).
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")
    if vertex_state_bytes < 1:
        raise ValueError("vertex_state_bytes must be >= 1")
    if memory_bytes < vertex_state_bytes:
        raise ValueError("memory cannot hold even one vertex")
    multiple = 1
    while True:
        partitions = machines * multiple
        per_partition = -(-num_vertices // partitions)  # ceil division
        if per_partition * vertex_state_bytes <= memory_bytes:
            return partitions
        multiple += 1


def partition_edges(
    edges: EdgeList, layout: PartitionLayout
) -> List[EdgeList]:
    """One-pass split of the edge list by source-vertex partition.

    Returns one edge list per partition; the union equals the input.
    This is the whole of Chaos' pre-processing.
    """
    partition_of = layout.partition_of(edges.src)
    order = np.argsort(partition_of, kind="stable")
    sorted_partitions = partition_of[order]
    cut_points = np.searchsorted(
        sorted_partitions, np.arange(layout.num_partitions + 1)
    )
    result = []
    for p in range(layout.num_partitions):
        index = order[cut_points[p] : cut_points[p + 1]]
        result.append(edges.subset(index))
    return result


def preprocess(
    edges: EdgeList,
    machines: int,
    vertex_state_bytes: int = 16,
    memory_bytes: Optional[int] = None,
    input_shards: Optional[int] = None,
) -> "PreprocessResult":
    """Full pre-processing pipeline: choose layout, split edges.

    ``input_shards`` models the parallel split: the input edge list is
    divided evenly into that many shards (default: one per machine), and
    each shard is partitioned independently — exactly how a cluster would
    parallelize the single pass.  The result is identical to a serial
    split; we keep the sharding explicit so tests can assert that.
    """
    if memory_bytes is None:
        # Permissive default: one partition per machine.
        memory_bytes = max(
            vertex_state_bytes,
            -(-edges.num_vertices // machines) * vertex_state_bytes,
        )
    count = choose_partition_count(
        edges.num_vertices, machines, vertex_state_bytes, memory_bytes
    )
    layout = PartitionLayout.even(edges.num_vertices, count)

    shards = input_shards if input_shards is not None else machines
    shards = max(1, min(shards, max(1, edges.num_edges)))
    per_partition: List[List[EdgeList]] = [[] for _ in range(count)]
    shard_bounds = np.linspace(0, edges.num_edges, shards + 1, dtype=np.int64)
    for s in range(shards):
        shard = edges.subset(np.arange(shard_bounds[s], shard_bounds[s + 1]))
        for p, part in enumerate(partition_edges(shard, layout)):
            if part.num_edges:
                per_partition[p].append(part)
    merged = []
    for p in range(count):
        parts = per_partition[p]
        if not parts:
            merged.append(
                EdgeList(
                    num_vertices=edges.num_vertices,
                    src=np.empty(0, dtype=np.int64),
                    dst=np.empty(0, dtype=np.int64),
                    weight=np.empty(0) if edges.weighted else None,
                )
            )
            continue
        merged.append(
            EdgeList(
                num_vertices=edges.num_vertices,
                src=np.concatenate([e.src for e in parts]),
                dst=np.concatenate([e.dst for e in parts]),
                weight=(
                    np.concatenate([e.weight for e in parts])
                    if edges.weighted
                    else None
                ),
            )
        )
    return PreprocessResult(layout=layout, partition_edge_lists=merged)


@dataclass
class PreprocessResult:
    """Output of pre-processing: the layout plus per-partition edges."""

    layout: PartitionLayout
    partition_edge_lists: List[EdgeList]

    def total_edges(self) -> int:
        return sum(e.num_edges for e in self.partition_edge_lists)

"""Streaming partitions — the only pre-processing Chaos performs.

A streaming partition is *"a set of vertices that fits in memory, all of
their outgoing edges and all of their incoming updates"* (Section 3).
Chaos chooses the number of partitions as the smallest multiple of the
machine count such that each partition's vertex set fits in main memory,
splits the vertex ids into consecutive ranges, and assigns every edge to
the partition of its source vertex — one pass over the edge list.
"""

from repro.partition.streaming import (
    PartitionLayout,
    choose_partition_count,
    partition_edges,
    preprocess,
)

__all__ = [
    "PartitionLayout",
    "choose_partition_count",
    "partition_edges",
    "preprocess",
]

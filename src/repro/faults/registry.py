"""Cluster-wide checkpoint generation tracking (Section 6.6).

Chaos checkpoints are two-phase: every machine writes its partitions'
vertex sets to a *new* generation, and only once all partitions of the
round are durable does the cluster retire the previous generation.  The
:class:`CheckpointRegistry` is the (zero-cost metadata) bookkeeping of
that protocol: it assigns each checkpoint round a storage *slot* — never
the slot holding the currently durable generation, so a crash halfway
through a round can always fall back to the previous complete one — and
records when a round becomes durable cluster-wide.

Slots map to vertex-chunk index bases far above the working vertex-set
indices, so checkpoint chunks coexist with the live vertex chunks in the
same chunk stores and are read back through the same storage protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

#: Vertex-chunk index bases of the two checkpoint slots (double buffer).
SLOT_BASES = (1_000_000, 2_000_000)


@dataclass
class CheckpointGeneration:
    """One durable checkpoint round."""

    #: (epoch, iteration, phase) of the round that wrote it.
    key: Tuple[int, int, int]
    #: Iteration to resume from when restoring this generation.
    resume_iteration: int
    #: Which double-buffer slot holds it.
    slot: int
    #: Simulated time the last partition's writes became durable.
    durable_at: float


class CheckpointRegistry:
    """Tracks checkpoint rounds and the latest durable generation."""

    def __init__(self, num_partitions: int, causal=None):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        #: Causal DAG recorder (``tracer.causal``) or None: checkpoint
        #: replication chains — each partition's durability, parented to
        #: the replica-write acks, joined by a round-completion mark —
        #: become part of the run's causal trace.  Pure annotation; the
        #: protocol never reads it.
        self._causal = causal if causal is not None and causal.enabled else None
        self._durable: Optional[CheckpointGeneration] = None
        # key -> [slot, resume_iteration, partitions_done]
        self._rounds: Dict[Tuple[int, int, int], list] = {}
        # key -> causal ids of the per-partition durability marks.
        self._round_marks: Dict[Tuple[int, int, int], list] = {}
        #: Rounds that completed (telemetry).
        self.rounds_completed = 0
        #: Replica locations (machine, partition, store_index) whose
        #: stored chunk failed integrity verification during a restore.
        #: Quarantined replicas are skipped until re-replication
        #: overwrites them with a verified copy.
        self._quarantined: Set[Tuple[int, int, int]] = set()
        self.replicas_quarantined = 0
        self.replicas_repaired = 0

    def round_slot(self, key: Tuple[int, int, int], resume_iteration: int) -> int:
        """The slot for round ``key`` (first caller opens the round).

        Every machine of a round calls this with the same key; the round
        is assigned the slot *not* holding the durable generation, so an
        in-progress round can never clobber the restore point.
        """
        entry = self._rounds.get(key)
        if entry is None:
            durable_slot = self._durable.slot if self._durable is not None else 1
            entry = [1 - durable_slot, resume_iteration, 0]
            self._rounds[key] = entry
        return entry[0]

    def base_for_slot(self, slot: int) -> int:
        return SLOT_BASES[slot]

    def note_durable(
        self,
        key: Tuple[int, int, int],
        partition: int,
        now: float,
        machine: Optional[int] = None,
        parent=None,
    ) -> None:
        """One partition's replica writes for round ``key`` are all acked.

        When every partition has reported, the round becomes the durable
        generation (retiring the previous one — its slot will be reused
        by the next round).  ``machine``/``parent`` annotate the causal
        trace with the replication chain that made the round durable.
        """
        entry = self._rounds.get(key)
        if entry is None:
            raise KeyError(f"checkpoint round {key} was never opened")
        entry[2] += 1
        if self._causal is not None:
            mark = self._causal.mark(
                "ckpt_durable",
                machine=machine,
                parent=parent,
                args={"ckpt": list(key), "partition": partition},
            )
            if mark is not None:
                self._round_marks.setdefault(key, []).append(mark["id"])
        if entry[2] == self.num_partitions:
            self._durable = CheckpointGeneration(
                key=key,
                resume_iteration=entry[1],
                slot=entry[0],
                durable_at=now,
            )
            self.rounds_completed += 1
            if self._causal is not None:
                self._causal.mark(
                    "ckpt_round",
                    parents=self._round_marks.pop(key, []),
                    args={"ckpt": list(key), "slot": entry[0]},
                )

    def latest_durable(self) -> Optional[CheckpointGeneration]:
        return self._durable

    # -- corrupt-replica quarantine -----------------------------------

    def quarantine_replica(
        self, machine: int, partition: int, store_index: int
    ) -> bool:
        """Mark one replica location as corrupt; True if newly marked."""
        key = (machine, partition, store_index)
        if key in self._quarantined:
            return False
        self._quarantined.add(key)
        self.replicas_quarantined += 1
        return True

    def is_quarantined(
        self, machine: int, partition: int, store_index: int
    ) -> bool:
        return (machine, partition, store_index) in self._quarantined

    def clear_quarantine(
        self, machine: int, partition: int, store_index: int
    ) -> None:
        """Re-replication rewrote the replica with a verified copy."""
        key = (machine, partition, store_index)
        if key in self._quarantined:
            self._quarantined.discard(key)
            self.replicas_repaired += 1

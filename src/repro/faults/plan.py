"""Fault plans: what to break, where, and when.

A :class:`FaultPlan` is a declarative schedule of machine faults to
inject into a simulated run (Section 6.6 evaluation methodology).  Each
:class:`FaultSpec` names a fault kind, a victim machine, and a trigger —
either an absolute simulated time (``t=``) or the start of a logical
iteration (``iter=``) — plus kind-specific knobs.

The CLI grammar (``--inject-fault SPEC``, repeatable)::

    kind:machine@trigger[,key=value ...]

    crash:1@t=0.05              # fail-stop; operator reboot during recovery
    crash:1@t=0.05,down=0.02    # fail-stop; self-reboots after 20 ms
    crash-restart:2@iter=3      # fail-stop + self-reboot (restart_seconds)
    partition:0@t=0.1,for=0.02  # network partition for 20 ms
    slow-device:1@iter=2,factor=8,for=0.05   # device 8x slower for 50 ms
    msg-corrupt:1@iter=2,count=2   # next 2 chunk frames to m1 corrupted
    msg-dup:0@t=0.05               # next message to m0 delivered twice
    msg-reorder:1@iter=1,delay=0.002  # next frame to m1 held 2 ms
    chunk-bitflip:1@iter=2         # next served chunk bit-flipped
    torn-write:0@iter=1,count=2    # next 2 persisted chunks torn
    stale-read:1@iter=2            # next vread returns prior version
    ckpt-corrupt:1@iter=3          # corrupt a durable checkpoint replica

``crash`` and ``crash-restart`` share mechanics (fail-stop, in-memory
state lost, secondary storage survives — the paper's transient-failure
assumption); they differ in who reboots the machine.  A plain ``crash``
stays down until the cluster's recovery procedure reboots it
(``config.restart_seconds`` after recovery begins), while
``crash-restart`` reboots on its own ``down`` seconds after the crash —
possibly before the failure detector has even noticed.

The byzantine family (message corruption / duplication / reordering,
chunk bit-flips, torn writes, stale reads, checkpoint-replica rot)
models *silent* damage rather than fail-stop: nothing crashes, data is
just wrong.  Each byzantine spec arms a budget of ``count`` damaged
operations on the victim machine; the integrity hardening
(``config.integrity_checks``) must detect and repair every one of them
for the run to stay byte-identical to the undisturbed run.

Plans round-trip through files: :meth:`FaultPlan.dump` writes one
``describe()`` line per spec (with ``#`` comments), and
:meth:`FaultPlan.load` reads them back — the chaos fuzzer's shrunk
reproducers are exactly such files.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


class FaultKind(Enum):
    """The injectable fault classes."""

    CRASH = "crash"
    CRASH_RESTART = "crash-restart"
    PARTITION = "partition"
    SLOW_DEVICE = "slow-device"
    MSG_CORRUPT = "msg-corrupt"
    MSG_DUP = "msg-dup"
    MSG_REORDER = "msg-reorder"
    CHUNK_BITFLIP = "chunk-bitflip"
    TORN_WRITE = "torn-write"
    STALE_READ = "stale-read"
    CKPT_CORRUPT = "ckpt-corrupt"


#: The silent-damage fault family (no fail-stop, just wrong data).
BYZANTINE_KINDS = frozenset(
    {
        FaultKind.MSG_CORRUPT,
        FaultKind.MSG_DUP,
        FaultKind.MSG_REORDER,
        FaultKind.CHUNK_BITFLIP,
        FaultKind.TORN_WRITE,
        FaultKind.STALE_READ,
        FaultKind.CKPT_CORRUPT,
    }
)


#: Default partition duration, in lease units: long enough that the
#: failure detector is guaranteed to notice before the link heals.
DEFAULT_PARTITION_LEASES = 3.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    kind: FaultKind
    machine: int
    #: Absolute simulated trigger time (exclusive with ``at_iteration``).
    at_time: Optional[float] = None
    #: Trigger at the first scatter of this logical iteration.
    at_iteration: Optional[int] = None
    #: Downtime before a self-reboot (crash / crash-restart).
    down: Optional[float] = None
    #: Fault duration (partition / slow-device).
    duration: Optional[float] = None
    #: Device slowdown factor (slow-device only).
    factor: Optional[float] = None
    #: Budget of damaged operations (byzantine kinds; default 1).
    count: Optional[int] = None
    #: Hold time for reordered frames (msg-reorder only).
    delay: Optional[float] = None

    def validate(self, config) -> None:
        """Check the spec against a concrete cluster configuration."""
        if (self.at_time is None) == (self.at_iteration is None):
            raise ValueError(
                f"fault {self.describe()}: exactly one of t=/iter= required"
            )
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"fault {self.describe()}: t= must be >= 0")
        if self.at_iteration is not None and self.at_iteration < 0:
            raise ValueError(f"fault {self.describe()}: iter= must be >= 0")
        if not 0 <= self.machine < config.machines:
            raise ValueError(
                f"fault {self.describe()}: machine {self.machine} outside "
                f"cluster of {config.machines}"
            )
        if self.down is not None:
            if self.kind not in (FaultKind.CRASH, FaultKind.CRASH_RESTART):
                raise ValueError(
                    f"fault {self.describe()}: down= only applies to crashes"
                )
            if self.down <= 0:
                raise ValueError(f"fault {self.describe()}: down= must be > 0")
        if self.kind is FaultKind.PARTITION:
            if config.machines < 2:
                raise ValueError(
                    "a partition fault needs at least two machines"
                )
            lease = config.effective_lease_timeout()
            duration = self.effective_duration(config)
            if duration < 2 * lease:
                raise ValueError(
                    f"fault {self.describe()}: partition duration "
                    f"{duration:g}s is shorter than two leases "
                    f"({2 * lease:g}s); the failure detector could not "
                    f"reliably observe it"
                )
        if self.kind is FaultKind.SLOW_DEVICE:
            if self.factor is None or self.factor <= 1:
                raise ValueError(
                    f"fault {self.describe()}: slow-device needs factor= > 1"
                )
            if self.duration is None or self.duration <= 0:
                raise ValueError(
                    f"fault {self.describe()}: slow-device needs for= > 0"
                )
        elif self.factor is not None:
            raise ValueError(
                f"fault {self.describe()}: factor= only applies to slow-device"
            )
        if self.duration is not None and self.kind in (
            FaultKind.CRASH,
            FaultKind.CRASH_RESTART,
        ):
            raise ValueError(
                f"fault {self.describe()}: use down= (not for=) with crashes"
            )
        if self.kind in BYZANTINE_KINDS:
            if self.duration is not None or self.factor is not None:
                raise ValueError(
                    f"fault {self.describe()}: for=/factor= do not apply "
                    f"to byzantine faults"
                )
            if self.kind is FaultKind.CKPT_CORRUPT and not config.checkpointing:
                raise ValueError(
                    f"fault {self.describe()}: ckpt-corrupt needs "
                    f"checkpointing enabled"
                )
        if self.count is not None:
            if self.kind not in BYZANTINE_KINDS:
                raise ValueError(
                    f"fault {self.describe()}: count= only applies to "
                    f"byzantine faults"
                )
            if self.count < 1:
                raise ValueError(
                    f"fault {self.describe()}: count= must be >= 1"
                )
        if self.delay is not None:
            if self.kind is not FaultKind.MSG_REORDER:
                raise ValueError(
                    f"fault {self.describe()}: delay= only applies to "
                    f"msg-reorder"
                )
            if self.delay <= 0:
                raise ValueError(
                    f"fault {self.describe()}: delay= must be > 0"
                )

    def effective_duration(self, config) -> float:
        """Partition / slow-device duration with the config default."""
        if self.duration is not None:
            return self.duration
        return DEFAULT_PARTITION_LEASES * config.effective_lease_timeout()

    def effective_down(self, config) -> Optional[float]:
        """Self-reboot delay: ``None`` means operator-rebooted (crash)."""
        if self.down is not None:
            return self.down
        if self.kind is FaultKind.CRASH_RESTART:
            return config.restart_seconds
        return None

    def effective_count(self) -> int:
        """Damaged-operation budget (byzantine kinds; default 1)."""
        return 1 if self.count is None else self.count

    def effective_delay(self, config) -> float:
        """Reorder hold time with the config default (one heartbeat)."""
        if self.delay is not None:
            return self.delay
        return config.heartbeat_interval

    def describe(self) -> str:
        """Canonical spec string; parses back to an equal spec."""
        trigger = (
            f"t={self.at_time:g}"
            if self.at_time is not None
            else f"iter={self.at_iteration}"
        )
        options = []
        if self.down is not None:
            options.append(f"down={self.down:g}")
        if self.duration is not None:
            options.append(f"for={self.duration:g}")
        if self.factor is not None:
            options.append(f"factor={self.factor:g}")
        if self.count is not None:
            options.append(f"count={self.count}")
        if self.delay is not None:
            options.append(f"delay={self.delay:g}")
        tail = ("," + ",".join(options)) if options else ""
        return f"{self.kind.value}:{self.machine}@{trigger}{tail}"


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one ``kind:machine@trigger[,key=value...]`` spec string."""
    head, _, tail = text.partition("@")
    if not tail:
        raise ValueError(f"fault spec {text!r}: missing @trigger")
    kind_text, _, machine_text = head.partition(":")
    try:
        kind = FaultKind(kind_text.strip())
    except ValueError:
        known = ", ".join(k.value for k in FaultKind)
        raise ValueError(
            f"fault spec {text!r}: unknown kind {kind_text!r} "
            f"(expected one of {known})"
        ) from None
    try:
        machine = int(machine_text)
    except ValueError:
        raise ValueError(
            f"fault spec {text!r}: bad machine id {machine_text!r}"
        ) from None

    fields = {}
    parts = tail.split(",")
    trigger = parts[0].strip()
    key, _, value = trigger.partition("=")
    if key == "t":
        fields["at_time"] = _parse_float(text, key, value)
    elif key == "iter":
        try:
            fields["at_iteration"] = int(value)
        except ValueError:
            raise ValueError(
                f"fault spec {text!r}: bad iter= value {value!r}"
            ) from None
    else:
        raise ValueError(
            f"fault spec {text!r}: trigger must be t=<seconds> or iter=<n>"
        )
    for part in parts[1:]:
        key, _, value = part.strip().partition("=")
        if key == "down":
            fields["down"] = _parse_float(text, key, value)
        elif key == "for":
            fields["duration"] = _parse_float(text, key, value)
        elif key == "factor":
            fields["factor"] = _parse_float(text, key, value)
        elif key == "count":
            try:
                fields["count"] = int(value)
            except ValueError:
                raise ValueError(
                    f"fault spec {text!r}: bad count= value {value!r}"
                ) from None
        elif key == "delay":
            fields["delay"] = _parse_float(text, key, value)
        else:
            raise ValueError(
                f"fault spec {text!r}: unknown option {key!r} "
                f"(expected down=, for=, factor=, count=, or delay=)"
            )
    return FaultSpec(kind=kind, machine=machine, **fields)


def _parse_float(text: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"fault spec {text!r}: bad {key}= value {value!r}"
        ) from None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults for one run."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, spec_texts) -> "FaultPlan":
        """Build a plan from CLI ``--inject-fault`` spec strings."""
        return cls(specs=tuple(parse_fault_spec(t) for t in spec_texts))

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan file: one spec per line, ``#`` starts a comment."""
        specs = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                specs.append(parse_fault_spec(text))
        return cls(specs=tuple(specs))

    def dump(self, path, header=()) -> None:
        """Write the plan as a replayable ``--inject-fault`` file."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in header:
                handle.write(f"# {line}\n")
            for spec in self.specs:
                handle.write(spec.describe() + "\n")

    def validate(self, config) -> None:
        for spec in self.specs:
            spec.validate(config)

    def __bool__(self) -> bool:
        return bool(self.specs)

"""The fault injector: fires a :class:`FaultPlan` into a live run.

One simulation process per fault spec waits for its trigger — a
simulated-time timeout or the supervisor's first-start-of-iteration
event — then applies the fault through the supervisor's fault actions
and schedules the matching repair (reboot, heal, device restore).
"""

from __future__ import annotations

from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.supervisor import ClusterSupervisor
from repro.sim.engine import Simulator


class FaultInjector:
    """Schedules and fires every fault of a plan, exactly once each."""

    def __init__(
        self,
        sim: Simulator,
        supervisor: ClusterSupervisor,
        plan: FaultPlan,
        config,
    ):
        self.sim = sim
        self.supervisor = supervisor
        self.plan = plan
        self.config = config

    def start(self) -> None:
        for spec in self.plan.specs:
            self.sim.process(
                self._fire(spec), name=f"fault.{spec.describe()}"
            )

    def _fire(self, spec):
        if spec.at_time is not None:
            yield self.sim.timeout(spec.at_time)
        else:
            yield self.supervisor.iteration_reached(spec.at_iteration)
        supervisor = self.supervisor
        supervisor.note_fault(spec, self.sim.now)
        machine = spec.machine
        if spec.kind is FaultKind.CRASH or spec.kind is FaultKind.CRASH_RESTART:
            down = spec.effective_down(self.config)
            supervisor.crash_machine(machine, operator_reboot=down is None)
            if down is not None:
                self.sim.schedule(down, supervisor.revive_machine, machine)
        elif spec.kind is FaultKind.PARTITION:
            supervisor.partition_machine(machine)
            self.sim.schedule(
                spec.effective_duration(self.config),
                supervisor.heal_machine,
                machine,
            )
        elif spec.kind is FaultKind.SLOW_DEVICE:
            supervisor.degrade_device(machine, spec.factor)
            self.sim.schedule(
                spec.effective_duration(self.config),
                supervisor.restore_device,
                machine,
            )
        elif spec.kind is FaultKind.MSG_CORRUPT:
            supervisor.corrupt_messages(machine, spec.effective_count())
        elif spec.kind is FaultKind.MSG_DUP:
            supervisor.duplicate_messages(machine, spec.effective_count())
        elif spec.kind is FaultKind.MSG_REORDER:
            supervisor.reorder_messages(
                machine,
                spec.effective_count(),
                spec.effective_delay(self.config),
            )
        elif spec.kind is FaultKind.CHUNK_BITFLIP:
            supervisor.corrupt_chunk_reads(machine, spec.effective_count())
        elif spec.kind is FaultKind.TORN_WRITE:
            supervisor.tear_chunk_writes(machine, spec.effective_count())
        elif spec.kind is FaultKind.STALE_READ:
            supervisor.serve_stale_reads(machine, spec.effective_count())
        elif spec.kind is FaultKind.CKPT_CORRUPT:
            supervisor.corrupt_checkpoint_replicas(
                machine, spec.effective_count()
            )
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ValueError(f"unhandled fault kind {spec.kind!r}")

"""Heartbeat/lease failure detection over the simulated network.

Every machine runs a :class:`HeartbeatSender` that periodically sends a
small heartbeat message to the cluster monitor — an extra network
endpoint (``Network(extra_endpoints=1)``) that is never a placement
target, so the control plane shares the fabric with the data plane
without perturbing chunk placement.  The monitor-side
:class:`FailureDetector` tracks the last heartbeat receipt per machine
and *suspects* a machine whose lease (``config.effective_lease_timeout``)
expires.  Detection is therefore end-to-end: a crashed machine's sender
process dies, a partitioned machine's heartbeats are dropped by the
transport, and in both cases the lease runs out at the monitor.

Suspicion is a one-way latch per machine until explicitly cleared by the
recovery supervisor (after the machine has been re-admitted); the
computation engines consult :meth:`FailureDetector.is_suspected` to
decide when a blocked read or steal RPC may be abandoned.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.transport import Network
from repro.sim.engine import Simulator

#: Service name of the monitor's heartbeat mailbox.
MEMBERSHIP_SERVICE = "membership"
#: Wire size of one heartbeat message (machine id + epoch + sequence).
HEARTBEAT_BYTES = 24


class HeartbeatSender:
    """One machine's periodic heartbeat process (one instance per epoch)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        machine: int,
        monitor: int,
        interval: float,
        epoch: int = 0,
    ):
        self.sim = sim
        self.network = network
        self.machine = machine
        self.monitor = monitor
        self.interval = interval
        self.epoch = epoch
        self._process = None

    def start(self) -> None:
        self._process = self.sim.process(
            self._run(), name=f"heartbeat{self.machine}.e{self.epoch}"
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill("epoch-end")
            self._process = None

    def _run(self):
        while True:
            self.network.send(
                src=self.machine,
                dst=self.monitor,
                service=MEMBERSHIP_SERVICE,
                kind="heartbeat",
                size=HEARTBEAT_BYTES,
                payload=self.machine,
                epoch=self.epoch,
            )
            yield self.sim.timeout(self.interval)


class FailureDetector:
    """Lease-based membership view at the cluster monitor endpoint.

    ``on_suspect(machine)`` is invoked (at most once per suspicion
    episode) when a machine's lease expires; the recovery supervisor
    uses it to trigger a cluster-wide rollback.  The detector is
    ``arm()``-ed at each epoch start — which also grants every machine a
    fresh lease so a slow first heartbeat is not a false positive — and
    ``disarm()``-ed while recovery is rebuilding the cluster.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        machines: int,
        monitor: int,
        lease: float,
        on_suspect: Optional[Callable[[int], None]] = None,
    ):
        if lease <= 0:
            raise ValueError("lease must be positive")
        self.sim = sim
        self.network = network
        self.machines = machines
        self.monitor = monitor
        self.lease = lease
        self.on_suspect = on_suspect
        self.armed = False
        #: Suspicion episodes observed (telemetry).
        self.suspicions = 0
        self._last_seen: List[float] = [0.0] * machines
        self._suspected: List[bool] = [False] * machines
        self._mailbox = network.register(monitor, MEMBERSHIP_SERVICE)
        self._receiver = sim.process(self._receive(), name="detector.rx")
        self._watchdog = sim.process(self._watch(), name="detector.watch")

    # -- lifecycle ---------------------------------------------------------

    def arm(self) -> None:
        """Start watching leases; every machine gets a fresh lease now."""
        now = self.sim.now
        for machine in range(self.machines):
            self._last_seen[machine] = now
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def clear(self, machine: int) -> None:
        """Forgive a machine (it was re-admitted by recovery)."""
        self._suspected[machine] = False
        self._last_seen[machine] = self.sim.now

    # -- queries ------------------------------------------------------------

    def is_suspected(self, machine: int) -> bool:
        return self._suspected[machine]

    def suspected_machines(self) -> List[int]:
        return [m for m in range(self.machines) if self._suspected[m]]

    # -- suspicion ----------------------------------------------------------

    def suspect(self, machine: int) -> None:
        """Mark a machine dead (lease expiry, or external escalation)."""
        if self._suspected[machine]:
            return
        self._suspected[machine] = True
        self.suspicions += 1
        if self.on_suspect is not None:
            self.on_suspect(machine)

    # -- processes ----------------------------------------------------------

    def _receive(self):
        while True:
            message = yield self._mailbox.get()
            machine = message.payload
            if 0 <= machine < self.machines:
                self._last_seen[machine] = self.sim.now

    def _watch(self):
        # Checking at half the lease period bounds detection latency to
        # 1.5 leases after the last heartbeat.
        period = self.lease / 2.0
        while True:
            yield self.sim.timeout(period)
            if not self.armed:
                continue
            now = self.sim.now
            for machine in range(self.machines):
                if self._suspected[machine]:
                    continue
                if now - self._last_seen[machine] > self.lease:
                    self.suspect(machine)

"""Chaos-schedule fuzzer: random fault schedules, invariants, shrinking.

The fault subsystem's correctness claim is universal — *any* schedule of
supported faults must leave the final vertex values byte-identical to
the undisturbed run (or cleanly refuse with a structured diagnosis) —
but the test suite only pins hand-picked schedules.  The fuzzer samples
the schedule space: a seeded generator draws random :class:`FaultPlan`s,
each episode runs the plan inside a simulated-time deadline watchdog,
and the outcome is checked against three invariants:

1. **Byte identity** — the run completes and its final values equal the
   undisturbed baseline's, byte for byte.
2. **Graceful degradation** — a run that cannot complete (e.g. every
   replica of a checkpoint chunk rotted) raises
   :class:`UnrecoverableJobError` with a diagnosis, never hangs and
   never silently returns wrong values.
3. **Bounded recovery** — the cluster performs at most a small constant
   number of recovery rounds per injected fault; a recovery livelock is
   a violation even if simulated time keeps advancing.

A violating schedule is *shrunk* — first ddmin over the spec list, then
per-spec option simplification — to a minimal reproducer, dumped as a
``--inject-fault`` plan file that ``repro run --inject-fault <file>
--verify-recovery`` replays exactly.

Determinism: everything (generation, jitter, placement) derives from the
fuzz seed and the config seed, so a campaign is reproducible by seed
alone.  The module never touches unseeded RNG (enforced by lint rule
CHX018).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.diagnosis import UnrecoverableJobError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import DeadlineExceeded, SimulationError

#: Episode outcomes.
OUTCOME_OK = "ok"
OUTCOME_DIAGNOSED = "diagnosed"
OUTCOME_MISMATCH = "mismatch"
OUTCOME_DEADLOCK = "deadlock"
OUTCOME_CRASH = "crash"
OUTCOME_UNBOUNDED = "unbounded-recovery"

#: Outcomes that violate the invariants (``diagnosed`` is the *graceful*
#: refusal path and therefore acceptable).
VIOLATION_OUTCOMES = frozenset(
    {OUTCOME_MISMATCH, OUTCOME_DEADLOCK, OUTCOME_CRASH, OUTCOME_UNBOUNDED}
)


@dataclass
class EpisodeResult:
    """One fuzzed schedule and how it went."""

    index: int
    plan: FaultPlan
    outcome: str
    detail: str
    recoveries: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "specs": [s.describe() for s in self.plan.specs],
            "outcome": self.outcome,
            "detail": self.detail,
            "recoveries": self.recoveries,
        }


@dataclass
class Violation:
    """A violating episode with its shrunk reproducer."""

    episode: EpisodeResult
    shrunk: FaultPlan
    shrunk_outcome: str
    shrink_runs: int

    def to_dict(self) -> dict:
        return {
            "episode": self.episode.to_dict(),
            "shrunk_specs": [s.describe() for s in self.shrunk.specs],
            "shrunk_outcome": self.shrunk_outcome,
            "shrink_runs": self.shrink_runs,
        }


@dataclass
class FuzzReport:
    """Full campaign result."""

    seed: int
    episodes: List[EpisodeResult] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    baseline_runtime: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for episode in self.episodes:
            counts[episode.outcome] = counts.get(episode.outcome, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "baseline_runtime": self.baseline_runtime,
            "episodes": [e.to_dict() for e in self.episodes],
            "violations": [v.to_dict() for v in self.violations],
            "outcome_counts": self.outcome_counts(),
            "ok": self.ok,
        }

    def summary(self) -> str:
        counts = self.outcome_counts()
        parts = ", ".join(
            f"{counts[k]} {k}" for k in sorted(counts)
        ) or "no episodes"
        lines = [
            f"fuzz campaign (seed {self.seed}): {len(self.episodes)} "
            f"episode(s) — {parts}",
        ]
        for violation in self.violations:
            episode = violation.episode
            lines.append(
                f"  VIOLATION episode {episode.index} "
                f"[{episode.outcome}]: {episode.detail}"
            )
            lines.append(
                f"    original: {'; '.join(s.describe() for s in episode.plan.specs)}"
            )
            lines.append(
                f"    shrunk ({violation.shrink_runs} runs): "
                f"{'; '.join(s.describe() for s in violation.shrunk.specs)}"
            )
        return "\n".join(lines)


class ScheduleGenerator:
    """Seeded random fault-schedule sampler.

    Draws plans of 1..``max_specs`` specs over every supported fault
    kind, with kind-appropriate knobs; specs that fail validation
    against the target config are resampled, so every emitted plan is
    runnable.
    """

    def __init__(
        self,
        config,
        max_iteration: int,
        baseline_runtime: float,
        seed: int,
        max_specs: int = 3,
    ):
        self.config = config
        self.max_iteration = max(0, max_iteration)
        self.baseline_runtime = baseline_runtime
        self.max_specs = max_specs
        # Independent of the run RNGs: the same fuzz seed explores the
        # same schedules whatever the config seed is.
        self.rng = random.Random(seed * 9_176 + 11)
        self.kinds = [
            k
            for k in FaultKind
            if config.checkpointing or k is not FaultKind.CKPT_CORRUPT
        ]
        if config.machines < 2:
            self.kinds = [k for k in self.kinds if k is not FaultKind.PARTITION]

    def sample_plan(self) -> FaultPlan:
        count = self.rng.randint(1, self.max_specs)
        specs: List[FaultSpec] = []
        for _ in range(count):
            for _attempt in range(25):
                spec = self._sample_spec()
                try:
                    spec.validate(self.config)
                except ValueError:
                    continue
                specs.append(spec)
                break
        if not specs:  # pragma: no cover - generator knobs match validate
            specs = [FaultSpec(kind=FaultKind.CRASH, machine=0, at_iteration=1)]
        return FaultPlan(specs=tuple(specs))

    def _sample_spec(self) -> FaultSpec:
        rng = self.rng
        config = self.config
        kind = rng.choice(self.kinds)
        machine = rng.randrange(config.machines)
        fields: dict = {}
        if rng.random() < 0.65 or self.baseline_runtime <= 0:
            fields["at_iteration"] = rng.randint(0, self.max_iteration)
        else:
            fields["at_time"] = round(
                rng.uniform(0.0, self.baseline_runtime * 0.9), 6
            )
        lease = config.effective_lease_timeout()
        if kind in (FaultKind.CRASH, FaultKind.CRASH_RESTART):
            if rng.random() < 0.5:
                fields["down"] = round(rng.uniform(0.5 * lease, 4.0 * lease), 6)
        elif kind is FaultKind.PARTITION:
            fields["duration"] = round(rng.uniform(2.2 * lease, 5.0 * lease), 6)
        elif kind is FaultKind.SLOW_DEVICE:
            fields["factor"] = float(rng.choice((2, 4, 8, 16)))
            fields["duration"] = round(rng.uniform(lease, 4.0 * lease), 6)
        elif kind is FaultKind.MSG_REORDER:
            fields["count"] = rng.randint(1, 3)
            fields["delay"] = round(
                rng.uniform(config.heartbeat_interval * 0.1, lease * 0.8), 6
            )
        elif kind is FaultKind.CKPT_CORRUPT:
            fields["count"] = rng.randint(1, 2)
        else:  # remaining byzantine kinds: a small damage budget
            fields["count"] = rng.randint(1, 3)
        return FaultSpec(kind=kind, machine=machine, **fields)


class ChaosFuzzer:
    """Run a seeded fuzz campaign against one (algorithm, graph, config).

    ``algorithm_factory`` is a zero-argument callable returning a fresh
    algorithm instance (runs must not share mutable algorithm state).
    ``progress`` (optional) is called after every episode with the
    :class:`EpisodeResult`.
    """

    def __init__(
        self,
        algorithm_factory: Callable[[], object],
        edges,
        config,
        seed: int = 0,
        max_specs: int = 3,
        max_iteration: Optional[int] = None,
        deadline_factor: float = 30.0,
        max_shrink_runs: int = 48,
        progress: Optional[Callable[[EpisodeResult], None]] = None,
    ):
        self.algorithm_factory = algorithm_factory
        self.edges = edges
        self.config = config
        self.seed = seed
        self.max_specs = max_specs
        self.max_iteration = max_iteration
        self.deadline_factor = deadline_factor
        self.max_shrink_runs = max_shrink_runs
        self.progress = progress
        self._baseline_bytes: Optional[Dict[str, bytes]] = None
        self._baseline_runtime = 0.0
        self._deadline: Optional[float] = None

    # -- execution -----------------------------------------------------

    def _run(self, plan: Optional[FaultPlan]):
        from repro.core.runtime import ChaosCluster

        cluster = ChaosCluster(self.config)
        result = cluster.run(
            self.algorithm_factory(),
            self.edges,
            fault_plan=plan,
            deadline_seconds=self._deadline if plan is not None else None,
        )
        return result, cluster.last_fault_timeline

    def _ensure_baseline(self) -> None:
        if self._baseline_bytes is not None:
            return
        result, _ = self._run(None)
        self._baseline_bytes = {
            name: values.tobytes() for name, values in result.values.items()
        }
        self._baseline_runtime = result.runtime
        # Generous: a schedule may legitimately multiply the runtime
        # (recoveries re-execute work), but a wedged cluster advances
        # simulated time forever — the deadline turns that into a
        # reportable outcome.
        self._deadline = max(
            result.runtime * self.deadline_factor, result.runtime + 1.0
        )

    def capture_trace(self, plan: Optional[FaultPlan], path: str) -> str:
        """Re-run ``plan`` with causal tracing on and write the Chrome
        trace to ``path`` — even when the run deadlocks or crashes.

        The partial causal DAG of a wedged run is the point: ``repro
        trace conform`` replays it against the extracted protocol model
        and names the stuck transition (the sent-but-never-delivered
        message or the barrier round still waiting for arrivals).
        Returns the traced run's outcome string.
        """
        from repro.core.runtime import ChaosCluster
        from repro.obs.export import write_chrome_trace
        from repro.obs.tracer import Tracer

        self._ensure_baseline()
        tracer = Tracer(sample_interval=None)
        cluster = ChaosCluster(self.config, tracer=tracer)
        outcome = OUTCOME_OK
        try:
            cluster.run(
                self.algorithm_factory(),
                self.edges,
                fault_plan=plan,
                deadline_seconds=self._deadline if plan is not None else None,
            )
        except DeadlineExceeded:
            outcome = OUTCOME_DEADLOCK
        except UnrecoverableJobError:
            outcome = OUTCOME_DIAGNOSED
        except SimulationError as error:
            outcome = (
                OUTCOME_DEADLOCK
                if "deadlock" in str(error)
                else OUTCOME_CRASH
            )
        write_chrome_trace(tracer, path)
        return outcome

    def classify(self, plan: FaultPlan) -> Tuple[str, str, int]:
        """Run one plan and classify: (outcome, detail, recoveries)."""
        self._ensure_baseline()
        try:
            result, timeline = self._run(plan)
        except UnrecoverableJobError as error:
            return OUTCOME_DIAGNOSED, error.diagnosis.cause, 0
        except DeadlineExceeded as error:
            return OUTCOME_DEADLOCK, str(error), 0
        except SimulationError as error:
            text = str(error)
            outcome = (
                OUTCOME_DEADLOCK if "deadlock" in text else OUTCOME_CRASH
            )
            return outcome, text, 0
        except Exception as error:  # chaos: ignore[CHX006] host-side crash classifier, never a sim process
            return OUTCOME_CRASH, f"{type(error).__name__}: {error}", 0
        recoveries = len(timeline.rounds) if timeline is not None else 0
        bound = 2 * len(plan.specs) + 2
        if recoveries > bound:
            return (
                OUTCOME_UNBOUNDED,
                f"{recoveries} recovery rounds for {len(plan.specs)} "
                f"fault(s) (bound {bound})",
                recoveries,
            )
        actual = {n: v.tobytes() for n, v in result.values.items()}
        if actual != self._baseline_bytes:
            return (
                OUTCOME_MISMATCH,
                "final values differ from the undisturbed run",
                recoveries,
            )
        return OUTCOME_OK, "", recoveries

    # -- campaign ------------------------------------------------------

    def run_campaign(self, episodes: int) -> FuzzReport:
        self._ensure_baseline()
        generator = ScheduleGenerator(
            self.config,
            max_iteration=(
                self.max_iteration if self.max_iteration is not None else 4
            ),
            baseline_runtime=self._baseline_runtime,
            seed=self.seed,
            max_specs=self.max_specs,
        )
        report = FuzzReport(
            seed=self.seed, baseline_runtime=self._baseline_runtime
        )
        for index in range(episodes):
            plan = generator.sample_plan()
            outcome, detail, recoveries = self.classify(plan)
            episode = EpisodeResult(
                index=index,
                plan=plan,
                outcome=outcome,
                detail=detail,
                recoveries=recoveries,
            )
            report.episodes.append(episode)
            if self.progress is not None:
                self.progress(episode)
            if outcome in VIOLATION_OUTCOMES:
                shrunk, shrunk_outcome, runs = self.shrink(plan)
                report.violations.append(
                    Violation(
                        episode=episode,
                        shrunk=shrunk,
                        shrunk_outcome=shrunk_outcome,
                        shrink_runs=runs,
                    )
                )
        return report

    # -- shrinking -----------------------------------------------------

    def shrink(self, plan: FaultPlan) -> Tuple[FaultPlan, str, int]:
        """Minimize a violating plan: ddmin over specs, then per-spec
        option simplification.  Any violation outcome keeps a candidate
        (the minimal reproducer need not fail the same way the original
        did — a smaller schedule exposing *a* violation is what the
        developer wants on their desk)."""
        budget = {"runs": 0}
        last_outcome = {"value": ""}

        def violates(candidate: FaultPlan) -> bool:
            if not candidate.specs:
                return False
            if budget["runs"] >= self.max_shrink_runs:
                return False
            budget["runs"] += 1
            outcome, _detail, _rec = self.classify(candidate)
            if outcome in VIOLATION_OUTCOMES:
                last_outcome["value"] = outcome
                return True
            return False

        specs = list(plan.specs)
        specs = _ddmin(specs, lambda ss: violates(FaultPlan(specs=tuple(ss))))
        simplified = [
            self._simplify_spec(spec, index, specs, violates)
            for index, spec in enumerate(specs)
        ]
        # _simplify_spec mutates position-by-position against the
        # *current* list, so rebuild from the final state.
        final = FaultPlan(specs=tuple(simplified))
        if not last_outcome["value"]:
            # Shrinking never re-confirmed (budget 0 or flaky classify):
            # fall back to the original plan's outcome label.
            outcome, _detail, _rec = self.classify(final)
            last_outcome["value"] = outcome
        return final, last_outcome["value"], budget["runs"]

    def _simplify_spec(
        self,
        spec: FaultSpec,
        index: int,
        specs: List[FaultSpec],
        violates: Callable[[FaultPlan], bool],
    ) -> FaultSpec:
        """Try dropping optional knobs from one spec, keeping violation."""
        candidates = []
        if spec.count is not None and spec.count != 1:
            candidates.append(replace(spec, count=None))
        if spec.delay is not None:
            candidates.append(replace(spec, delay=None))
        if spec.down is not None:
            candidates.append(replace(spec, down=None))
        if spec.duration is not None and spec.kind is not FaultKind.SLOW_DEVICE:
            candidates.append(replace(spec, duration=None))
        current = spec
        for candidate in candidates:
            try:
                candidate.validate(self.config)
            except ValueError:
                continue
            trial = list(specs)
            trial[index] = candidate
            if violates(FaultPlan(specs=tuple(trial))):
                current = candidate
                specs[index] = candidate
        return current


def _ddmin(items: List, violates: Callable[[List], bool]) -> List:
    """Classic delta-debugging minimization over a spec list."""
    if len(items) <= 1:
        return items
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk :]
            if candidate and violates(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def write_reproducer(
    path: str, violation: Violation, seed: int, config
) -> None:
    """Dump a shrunk violation as a replayable ``--inject-fault`` file."""
    episode = violation.episode
    header = [
        "chaos fuzz reproducer (minimal shrunk fault plan)",
        f"fuzz seed {seed}, episode {episode.index}, "
        f"outcome {violation.shrunk_outcome}",
        f"config: machines={config.machines} seed={config.seed} "
        f"integrity_checks={config.integrity_checks}",
        "replay: repro run --inject-fault <this file> --verify-recovery",
    ]
    violation.shrunk.dump(path, header=header)

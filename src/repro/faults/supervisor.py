"""The fault-recovery supervisor: epochs, rollback, and live restore.

Recovery in Chaos is cluster-wide (Section 6.6): when any machine
fails, *all* machines roll back to the most recent durable checkpoint
and re-execute from its iteration.  The :class:`ClusterSupervisor`
implements that protocol around the discrete-event simulation:

1. **Run an epoch.**  Build the job coordinator, barrier, and
   computation engines for the current recovery epoch and let them run.
   Heartbeat senders feed the failure detector; the barrier's stall
   watchdog escalates unreachable stragglers.
2. **Detect.**  The first suspicion fires the epoch's failure event and
   ends the epoch.  Every engine is fenced (its processes killed, its
   callbacks disabled), every surviving storage engine's data epoch is
   advanced so in-flight traffic from the dead epoch is dropped, and
   unavailable machines' storage engines self-fence.
3. **Re-admit.**  Recovery waits until every machine is up and
   reachable again — Chaos assumes transient failures; plainly crashed
   machines are rebooted ``restart_seconds`` into recovery, and
   ``crash-restart`` / ``partition`` faults revive on their own
   schedule.  Their secondary storage survives the outage.
4. **Restore.**  Per-machine restore workers read the durable
   checkpoint generation's vertex chunks back from their (replicated)
   storage locations *through the real transport and device models*,
   overwrite the vertex state, and purge every stale update chunk set.
   If no checkpoint ever became durable, the job restarts from its
   initial vertex values (only the pre-processing output survives).
5. **Resume.**  A fresh epoch starts at the checkpoint's resume
   iteration, skipping pre-processing (edge chunks survived on disk).

Every phase is accounted on the cluster job track: retroactive ``lost``
spans (work after the restored checkpoint that must be re-executed) and
``restore`` spans (fence to resume), which the trace report reconciles
against the timeline totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import compute as compute_engine
from repro.faults.detector import HeartbeatSender
from repro.faults.diagnosis import JobDiagnosis, UnrecoverableJobError
from repro.faults.plan import FaultSpec
from repro.faults.registry import SLOT_BASES
from repro.net.retry import RetryPolicy, jittered_delay
from repro.obs.tracer import NULL_TRACK
from repro.sim.engine import Event, SimulationError, Simulator
from repro.store import engine as store_engine
from repro.store.chunk import ChunkKind
from repro.store.integrity import verify_chunk
from repro.store.placement import HashedVertexPlacement

#: Service name of the per-machine restore worker mailboxes.
RESTORE_SERVICE = "restore"


@dataclass
class FaultRecord:
    """One injected fault, as it actually fired."""

    spec: FaultSpec
    fired_at: float


@dataclass
class RecoveryRound:
    """One detection → rollback → restore → resume cycle."""

    #: Recovery epoch that failed (0 = the initial run).
    epoch: int
    #: Machines the failure detector had suspected at fence time.
    suspects: Tuple[int, ...]
    #: Simulated time the failure was detected (== fence time).
    detected_at: float
    #: Whether a durable checkpoint existed (else restart from initial).
    from_checkpoint: bool
    #: Iteration the next epoch resumed from.
    resume_iteration: int
    #: Start of the re-executed (lost) work window.
    lost_started_at: float
    #: Work discarded by the rollback: fence − max(durable, epoch start).
    lost_seconds: float
    #: Fence → resume: admission wait + checkpoint reads + cleanup.
    restore_seconds: float
    #: Simulated time the next epoch started.
    resumed_at: float


@dataclass
class FaultTimeline:
    """Full fault/recovery history of one run, with the time split the
    paper's failure experiment reports (Section 9.6): useful work, lost
    work, and restore time, summing to the total runtime."""

    faults: List[FaultRecord] = field(default_factory=list)
    rounds: List[RecoveryRound] = field(default_factory=list)
    total_runtime: float = 0.0

    @property
    def lost_seconds(self) -> float:
        return sum(r.lost_seconds for r in self.rounds)

    @property
    def restore_seconds(self) -> float:
        return sum(r.restore_seconds for r in self.rounds)

    @property
    def useful_seconds(self) -> float:
        return self.total_runtime - self.lost_seconds - self.restore_seconds

    def summary(self) -> str:
        lines = [
            f"faults injected: {len(self.faults)}, "
            f"recoveries: {len(self.rounds)}",
            f"useful {self.useful_seconds:.6f}s + "
            f"lost {self.lost_seconds:.6f}s + "
            f"restore {self.restore_seconds:.6f}s "
            f"= {self.total_runtime:.6f}s total",
        ]
        for record in self.faults:
            lines.append(
                f"  fault {record.spec.describe()} fired at "
                f"t={record.fired_at:.6f}"
            )
        for r in self.rounds:
            source = (
                f"checkpoint(iter={r.resume_iteration})"
                if r.from_checkpoint
                else "initial state"
            )
            lines.append(
                f"  epoch {r.epoch}: detected t={r.detected_at:.6f} "
                f"suspects={list(r.suspects)} lost={r.lost_seconds:.6f}s "
                f"restore={r.restore_seconds:.6f}s from {source}"
            )
        return "\n".join(lines)


class ClusterSupervisor:
    """Owns fault state, failure detection hooks, and epoch recovery."""

    def __init__(
        self,
        sim: Simulator,
        config,
        network,
        stores,
        workload,
        registry,
        detector,
        build_epoch,
        job_track=NULL_TRACK,
    ):
        self.sim = sim
        self.config = config
        self.network = network
        self.stores = stores
        self.workload = workload
        self.registry = registry
        self.detector = detector
        self.build_epoch = build_epoch
        self.job_track = job_track
        detector.on_suspect = self._on_suspect

        machines = config.machines
        self.monitor = machines
        self.vertex_placement = HashedVertexPlacement(machines)
        self._up = [True] * machines
        self._partitioned = [False] * machines
        self._operator_reboot = [False] * machines

        self.epoch = 0
        self.timeline = FaultTimeline()
        #: Per-epoch JobCoordinator / engine lists (result assembly).
        self.epoch_jobs: List = []
        self.epoch_engines: List = []
        self.job = None
        self.engines: List = []
        self.processes: List = []
        self.failure: Optional[Event] = None
        self._senders: List[HeartbeatSender] = []
        self._iteration_events: Dict[int, Event] = {}
        self._admission_waiter: Optional[Event] = None
        self._epoch_started_at = 0.0
        self._initial_iteration = 0

    # ------------------------------------------------------------------
    # Top-level execution
    # ------------------------------------------------------------------

    def execute(self, start_iteration: int = 0) -> None:
        """Run the job to completion across however many epochs it takes."""
        self._initial_iteration = start_iteration
        resume = start_iteration
        preprocess = True
        while True:
            if self._run_epoch(resume, preprocess):
                break
            resume = self._recover()
            preprocess = False
        self.timeline.total_runtime = self.sim.now

    def _run_epoch(self, resume_iteration: int, preprocess: bool) -> bool:
        sim = self.sim
        epoch = self.epoch
        self.failure = sim.event(f"failure.e{epoch}")
        self._epoch_started_at = sim.now
        job, barrier, engines, processes = self.build_epoch(
            epoch, resume_iteration, preprocess
        )
        self.job, self.engines, self.processes = job, engines, processes
        self.epoch_jobs.append(job)
        self.epoch_engines.append(engines)
        job.on_iteration = self._note_iteration
        barrier.set_stall_watch(
            2.0 * self.config.effective_lease_timeout(), self._on_barrier_stall
        )
        self.detector.arm()
        self._senders = [
            HeartbeatSender(
                sim,
                self.network,
                m,
                self.monitor,
                self.config.heartbeat_interval,
                epoch=epoch,
            )
            for m in range(self.config.machines)
        ]
        for sender in self._senders:
            sender.start()

        done = sim.all_of([p.finished for p in processes])
        sim.run_until(sim.any_of([done, self.failure]))
        if (
            not self.failure.triggered
            and job.done
            and self._all_available()
        ):
            return True
        if not self.failure.triggered:
            # Either the engines died without finishing the job (a kill
            # fires their `finished` events too) or the job "completed"
            # while a machine was out — possibly on incomplete data.
            # Wait for the failure detector and roll back.
            sim.run_until(self.failure)
        return False

    # ------------------------------------------------------------------
    # Failure signals
    # ------------------------------------------------------------------

    def _on_suspect(self, machine: int) -> None:
        self.job_track.instant(
            "fault.suspect", cat="lost", args={"machine": machine}
        )
        if self.failure is not None and not self.failure.triggered:
            self.failure.trigger(machine)

    def _on_barrier_stall(self, missing, generation) -> None:
        # Only escalate stragglers that are actually gone; a slow but
        # healthy machine must never be declared dead by the barrier.
        for machine in missing:
            if machine is None:
                continue
            if not self._available(machine):
                self.detector.suspect(machine)

    def _note_iteration(self, iteration: int) -> None:
        event = self._iteration_events.get(iteration)
        if event is not None and not event.triggered:
            event.trigger(iteration)

    def iteration_reached(self, iteration: int) -> Event:
        """Event firing the first time logical ``iteration`` starts.

        Fires at most once across epochs: a rollback that re-executes
        the iteration does not re-trigger it (so an ``iter=`` fault
        injects exactly once).
        """
        event = self._iteration_events.get(iteration)
        if event is None:
            event = self.sim.event(f"iteration.{iteration}")
            self._iteration_events[iteration] = event
        return event

    # ------------------------------------------------------------------
    # Fault actions (called by the injector)
    # ------------------------------------------------------------------

    def note_fault(self, spec: FaultSpec, now: float) -> None:
        self.timeline.faults.append(FaultRecord(spec=spec, fired_at=now))
        self.job_track.instant(
            "fault.inject", cat="lost", args={"spec": spec.describe()}
        )

    def crash_machine(self, machine: int, operator_reboot: bool = False) -> None:
        """Fail-stop ``machine``: processes die, storage contents survive."""
        if not self._up[machine]:
            return
        self._up[machine] = False
        self._operator_reboot[machine] = operator_reboot
        self._update_reachability(machine)
        self._fence_machine(machine, cause="machine-crash")
        if self.stores[machine].running:
            self.stores[machine].crash()

    def revive_machine(self, machine: int) -> None:
        """Reboot a crashed machine: storage engine returns, compute
        stays idle until the next epoch admits it."""
        if self._up[machine]:
            return
        self._up[machine] = True
        self._operator_reboot[machine] = False
        self._update_reachability(machine)
        self.stores[machine].restart()
        self.job_track.instant("fault.reboot", args={"machine": machine})
        self._check_admission()

    def partition_machine(self, machine: int) -> None:
        """Cut ``machine`` off the network; its processes keep running."""
        if self._partitioned[machine]:
            return
        self._partitioned[machine] = True
        self._update_reachability(machine)

    def heal_machine(self, machine: int) -> None:
        if not self._partitioned[machine]:
            return
        self._partitioned[machine] = False
        self._update_reachability(machine)
        if not self.stores[machine].running:
            # The machine self-fenced during the outage (recovery struck
            # while it was partitioned away); bring its storage back.
            self.stores[machine].restart()
        self.job_track.instant("fault.heal", args={"machine": machine})
        self._check_admission()

    def degrade_device(self, machine: int, factor: float) -> None:
        self.stores[machine].degrade_device(factor)

    def restore_device(self, machine: int) -> None:
        self.stores[machine].restore_device()

    # -- byzantine fault arms (silent damage, no fail-stop) ------------

    def corrupt_messages(self, machine: int, count: int) -> None:
        """Corrupt the next ``count`` chunk frames delivered to machine."""
        self.network.inject_fault(machine, "corrupt", count=count)

    def duplicate_messages(self, machine: int, count: int) -> None:
        """Deliver the next ``count`` frames to machine twice."""
        self.network.inject_fault(machine, "dup", count=count)

    def reorder_messages(self, machine: int, count: int, delay: float) -> None:
        """Hold the next ``count`` frames to machine for ``delay``s."""
        self.network.inject_fault(machine, "reorder", count=count, delay=delay)

    def corrupt_chunk_reads(self, machine: int, count: int) -> None:
        """Bit-flip the next ``count`` chunks machine's device serves."""
        self.stores[machine].inject_read_corruption(count)

    def tear_chunk_writes(self, machine: int, count: int) -> None:
        """Tear the next ``count`` chunks machine's device persists."""
        self.stores[machine].inject_write_corruption(count)

    def serve_stale_reads(self, machine: int, count: int) -> None:
        """Serve prior versions for machine's next ``count`` vreads."""
        self.stores[machine].inject_stale_reads(count)

    def corrupt_checkpoint_replicas(self, machine: int, count: int) -> int:
        """Rot up to ``count`` durable checkpoint chunks on machine's
        store in place (persistent damage — survives until quarantine +
        re-replication rewrites them).  Returns how many were hit."""
        return self.stores[machine].corrupt_stored_checkpoint(
            count, SLOT_BASES[0]
        )

    # ------------------------------------------------------------------
    # Availability bookkeeping
    # ------------------------------------------------------------------

    def _update_reachability(self, machine: int) -> None:
        self.network.set_reachable(
            machine, self._up[machine] and not self._partitioned[machine]
        )

    def _available(self, machine: int) -> bool:
        return self._up[machine] and not self._partitioned[machine]

    def _all_available(self) -> bool:
        return all(
            self._available(m) and not self.detector.is_suspected(m)
            for m in range(self.config.machines)
        )

    def _check_admission(self) -> None:
        waiter = self._admission_waiter
        if waiter is None or waiter.triggered:
            return
        if all(self._available(m) for m in range(self.config.machines)):
            waiter.trigger()

    def _fence_machine(self, machine: int, cause: str) -> None:
        if machine < len(self.engines):
            engine = self.engines[machine]
            engine.fence()
            engine.dispatch_process.kill(cause)
        if machine < len(self.processes):
            self.processes[machine].kill(cause)
        if machine < len(self._senders):
            self._senders[machine].stop()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> int:
        """Roll the cluster back; returns the iteration to resume from."""
        sim = self.sim
        machines = self.config.machines
        fence_time = sim.now
        failed_epoch = self.epoch
        self.detector.disarm()
        suspects = tuple(self.detector.suspected_machines())
        self.epoch += 1

        # Cluster-wide fence: every engine stops, dead or not.
        for machine in range(machines):
            self._fence_machine(machine, cause="rollback")
        # A machine that is out of contact self-fences its services when
        # its own view of the cluster lease lapses; model that by
        # stopping its storage engine (restarted at heal/reboot).
        for machine in range(machines):
            if not self._available(machine) and self.stores[machine].running:
                self.stores[machine].crash()
        # Surviving stores move to the new epoch: in-flight writes from
        # the dead epoch must not land after the rollback's cleanup.
        for machine in range(machines):
            if self.stores[machine].running:
                self.stores[machine].advance_epoch(self.epoch)
        # The dead dispatchers' mailboxes may hold queued messages whose
        # consumers no longer exist; drop them.
        for machine in range(machines):
            self.network.mailbox(
                machine, compute_engine.COMPUTE_SERVICE
            ).reset()
        # Plainly crashed machines are rebooted by the recovery
        # procedure itself (the "operator"), restart_seconds in.
        for machine in range(machines):
            if not self._up[machine] and self._operator_reboot[machine]:
                sim.schedule(
                    self.config.restart_seconds, self.revive_machine, machine
                )

        generation = self.registry.latest_durable()
        if generation is None:
            resume = self._initial_iteration
        else:
            resume = generation.resume_iteration

        # Admission + restore, repeated if another fault disturbs the
        # restore itself (its reads and deletes must complete cleanly).
        while True:
            waiter = sim.event(f"admission.e{self.epoch}")
            self._admission_waiter = waiter
            self._check_admission()
            sim.run_until(waiter)
            self._admission_waiter = None
            # Stores revived during the wait still carry the old epoch.
            for machine in range(machines):
                if self.stores[machine].data_epoch != self.epoch:
                    self.stores[machine].advance_epoch(self.epoch)
            # Every machine is re-admitted: clear suspicion so restore
            # reads (and next epoch's RPCs) are not abandoned.
            for machine in range(machines):
                self.detector.clear(machine)
            if generation is None:
                # Nothing durable yet: recovery restarts the computation
                # from its initial vertex values (pre-processing output
                # survives on disk).
                self.workload.reset_to_initial()
            self._run_restore(generation)
            if all(self._available(m) for m in range(machines)):
                break

        resume_time = sim.now
        durable_at = (
            generation.durable_at
            if generation is not None
            else self._epoch_started_at
        )
        lost_start = max(durable_at, self._epoch_started_at)
        lost = max(0.0, fence_time - lost_start)
        restore = resume_time - fence_time
        self.job_track.complete(
            "lost",
            lost_start,
            lost,
            cat="lost",
            args={"epoch": failed_epoch, "suspects": list(suspects)},
        )
        self.job_track.complete(
            "restore",
            fence_time,
            restore,
            cat="restore",
            args={"epoch": failed_epoch, "resume_iteration": resume},
        )
        self.timeline.rounds.append(
            RecoveryRound(
                epoch=failed_epoch,
                suspects=suspects,
                detected_at=fence_time,
                from_checkpoint=generation is not None,
                resume_iteration=resume,
                lost_started_at=lost_start,
                lost_seconds=lost,
                restore_seconds=restore,
                resumed_at=resume_time,
            )
        )
        return resume

    # ------------------------------------------------------------------
    # Restore protocol (real reads through the storage/network model)
    # ------------------------------------------------------------------

    def _vertex_chunk_count(self, partition: int) -> int:
        total = self.workload.vertex_set_bytes(partition)
        chunk_bytes = self.config.chunk_bytes
        return -(-total // chunk_bytes) if total > 0 else 0

    def _run_restore(self, generation) -> None:
        sim = self.sim
        machines = self.config.machines
        clients = [_RestoreClient(self, m) for m in range(machines)]
        processes = [
            sim.process(
                client.run(generation), name=f"restore{m}.e{self.epoch}"
            )
            for m, client in enumerate(clients)
        ]
        sim.run_until(sim.all_of([p.finished for p in processes]))
        for client in clients:
            client.close()


class _RestoreClient:
    """One machine's restore worker: reads its partitions' checkpoint
    chunks back from the storage engines and purges stale update sets,
    all through the simulated transport."""

    def __init__(self, supervisor: ClusterSupervisor, machine: int):
        self.sup = supervisor
        self.sim = supervisor.sim
        self.machine = machine
        self.epoch = supervisor.epoch
        self._pending: Dict[int, object] = {}
        self._next_id = machine
        self._mailbox = supervisor.network.register(machine, RESTORE_SERVICE)
        self._mailbox.reset()  # strays from a previous recovery
        self._dispatcher = self.sim.process(
            self._dispatch(), name=f"restore{machine}.rx.e{self.epoch}"
        )

    def close(self) -> None:
        self._dispatcher.kill("restore-done")

    def _new_id(self) -> int:
        self._next_id += self.sup.config.machines
        return self._next_id

    def _dispatch(self):
        while True:
            message = yield self._mailbox.get()
            if message.epoch != self.epoch:
                continue
            callback = self._pending.pop(message.payload[0], None)
            if callback is not None:
                callback(message)

    def run(self, generation):
        sup = self.sup
        config = sup.config
        layout = sup.workload.layout
        if generation is not None:
            base = sup.registry.base_for_slot(generation.slot)
            mine = [
                p
                for p in range(layout.num_partitions)
                if p % config.machines == self.machine
            ]
            for partition in mine:
                count = sup._vertex_chunk_count(partition)
                snapshot = None
                for index in range(count):
                    chunk = yield from self._read_chunk(
                        partition, index, base + index, generation
                    )
                    if index == 0:
                        snapshot = chunk.payload
                if snapshot is None:
                    raise SimulationError(
                        f"checkpoint for partition {partition} carries no "
                        f"snapshot payload"
                    )
                sup.workload.restore_partition(partition, snapshot["snapshot"])
        # Purge stale update chunk sets: each machine clears its own
        # store for every partition (local requests, zero network cost),
        # which between the workers covers the whole cluster.
        for partition in range(layout.num_partitions):
            sup.network.send(
                src=self.machine,
                dst=self.machine,
                service=store_engine.SERVICE,
                kind="delete",
                size=store_engine.CONTROL_BYTES,
                payload=(partition, ChunkKind.UPDATES),
                epoch=self.epoch,
            )
        # One zero-delay hop so the local deletes are dispatched before
        # the worker reports done (local sends deliver via the scheduler).
        yield self.sim.timeout(0.0)

    def _read_chunk(
        self, partition: int, raw_index: int, store_index: int, generation=None
    ):
        """Read one checkpoint chunk, cycling over its healthy replicas.

        Post-admission every machine is reachable, but a fresh fault may
        strike mid-restore; a timed-out read backs off (deterministic
        seeded jitter) and tries the next replica.  With integrity
        checks on, every reply is checksum-verified and snapshot chunks
        are freshness-checked against the generation being restored: a
        replica serving rotted bytes is quarantined (and re-replicated
        from a verified copy before the read returns), while a
        validly-sealed but *old* version — the stale-read fault — is
        simply re-read.  When every replica of a chunk is quarantined
        the job is cleanly abandoned with a structured diagnosis rather
        than retrying forever.
        """
        sup = self.sup
        config = sup.config
        registry = sup.registry
        integrity = config.integrity_checks
        targets = sup.vertex_placement.machines_for(
            partition, raw_index, config.vertex_replicas
        )
        period = config.effective_read_timeout()
        policy = RetryPolicy(
            base=config.heartbeat_interval / 4.0,
            factor=2.0,
            cap=config.effective_lease_timeout(),
        )
        missing = 0
        attempt = 0
        while True:
            healthy = [
                t
                for t in targets
                if not registry.is_quarantined(t, partition, store_index)
            ]
            if not healthy:
                raise UnrecoverableJobError(
                    JobDiagnosis(
                        cause="checkpoint-unreadable",
                        detail=(
                            f"every replica of checkpoint chunk (partition "
                            f"{partition}, index {store_index}) failed "
                            f"integrity verification"
                        ),
                        at_time=self.sim.now,
                        epoch=self.epoch,
                        quarantined=[
                            (t, partition, store_index) for t in targets
                        ],
                    )
                )
            target = healthy[attempt % len(healthy)]
            request_id = self._new_id()
            if attempt > 0:
                # Bounded deterministic backoff between attempts, so a
                # flapping replica is polled, not hammered.
                wait_start = self.sim.now
                yield self.sim.timeout(
                    jittered_delay(
                        policy,
                        attempt - 1,
                        config.seed,
                        self.machine,
                        request_id,
                    )
                )
                sup.job_track.complete(
                    "restore.retry_wait",
                    wait_start,
                    self.sim.now - wait_start,
                    cat="retry_wait",
                    args={"machine": self.machine, "partition": partition},
                )
            attempt += 1
            reply = Event(self.sim, name=f"restore.read.p{partition}")
            self._pending[request_id] = reply.trigger
            sup.network.send(
                src=self.machine,
                dst=target,
                service=store_engine.SERVICE,
                kind="vread",
                size=store_engine.CONTROL_BYTES,
                payload=(
                    request_id,
                    self.machine,
                    RESTORE_SERVICE,
                    partition,
                    store_index,
                ),
                epoch=self.epoch,
                attempt=attempt - 1,
            )
            winner, value = yield self.sim.any_of(
                [reply, self.sim.timeout(period)]
            )
            if winner is not reply:
                self._pending.pop(request_id, None)
                continue
            _rid, chunk = value.payload
            if chunk is None:
                missing += 1
                if missing >= len(targets):
                    raise SimulationError(
                        f"no replica holds durable checkpoint chunk "
                        f"(partition {partition}, index {store_index})"
                    )
                continue
            if integrity and not verify_chunk(chunk):
                # Rotted replica (or in-flight corruption — either way
                # the copy that would land is untrustworthy): quarantine
                # the source and try another; re-replication rewrites it
                # from a verified copy once one is found.
                if registry.quarantine_replica(target, partition, store_index):
                    sup.job_track.instant(
                        "integrity.ckpt_quarantine",
                        cat="integrity",
                        args={
                            "machine": target,
                            "partition": partition,
                            "index": store_index,
                        },
                    )
                continue
            if (
                integrity
                and generation is not None
                and isinstance(chunk.payload, dict)
                and "key" in chunk.payload
                and tuple(chunk.payload["key"]) != tuple(generation.key)
            ):
                # Validly-sealed but *old* data (the stale-read fault):
                # the checksum passes, the freshness key does not.
                sup.job_track.instant(
                    "integrity.stale_restore",
                    cat="integrity",
                    args={"machine": target, "partition": partition},
                )
                continue
            if integrity:
                yield from self._reprotect(
                    chunk, partition, store_index, targets
                )
            return chunk

    def _reprotect(self, chunk, partition, store_index, targets):
        """Re-replicate a verified chunk over its quarantined replicas.

        Best-effort by design: a repair write that times out or is
        nacked leaves the replica quarantined for the next recovery to
        retry — the restore itself never blocks on repair.
        """
        sup = self.sup
        registry = sup.registry
        for target in targets:
            if not registry.is_quarantined(target, partition, store_index):
                continue
            start = self.sim.now
            ack = Event(self.sim, name=f"restore.rereplicate.p{partition}")
            request_id = self._new_id()
            self._pending[request_id] = ack.trigger
            sup.network.send(
                src=self.machine,
                dst=target,
                service=store_engine.SERVICE,
                kind="vwrite",
                size=chunk.size,
                payload=(request_id, self.machine, RESTORE_SERVICE, chunk),
                epoch=self.epoch,
            )
            winner, value = yield self.sim.any_of(
                [ack, self.sim.timeout(sup.config.effective_read_timeout())]
            )
            if winner is not ack or value.payload[1] is not None:
                self._pending.pop(request_id, None)
                continue
            registry.clear_quarantine(target, partition, store_index)
            sup.job_track.complete(
                "integrity.rereplicate",
                start,
                self.sim.now - start,
                cat="integrity",
                args={
                    "machine": target,
                    "partition": partition,
                    "index": store_index,
                },
            )

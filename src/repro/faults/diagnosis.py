"""Structured diagnosis for unrecoverable runs (graceful degradation).

The paper's recovery protocol assumes transient failures: secondary
storage survives, so some replica of every durable checkpoint chunk is
readable.  Byzantine storage faults can violate that assumption — every
replica of a chunk may rot.  Rather than hang the restore loop or die
with a bare traceback, the supervisor raises
:class:`UnrecoverableJobError` carrying a :class:`JobDiagnosis`: which
chunk is unreadable, which replicas were quarantined, and what the
operator can do about it.  The CLI renders the diagnosis and exits with
a distinct status (3) so scripted chaos campaigns can tell "the job
correctly refused to resume from damaged state" apart from crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class JobDiagnosis:
    """Why a run could not complete, in operator terms."""

    #: Short machine-readable cause, e.g. ``checkpoint-unreadable``.
    cause: str
    #: One-line human explanation.
    detail: str
    #: Simulated time the run was abandoned.
    at_time: float
    #: Recovery epoch that was being restored.
    epoch: int
    #: Replica locations (machine, partition, store_index) found corrupt.
    quarantined: List[Tuple[int, int, int]] = field(default_factory=list)
    #: What the operator should do next.
    remediation: str = (
        "restore the checkpoint media from an external backup, or rerun "
        "the job from its initial state (drop --checkpoint-interval "
        "resume by deleting the damaged generation)"
    )

    def render(self) -> str:
        lines = [
            f"unrecoverable job: {self.cause}",
            f"  {self.detail}",
            f"  abandoned at t={self.at_time:.6f} (recovery epoch "
            f"{self.epoch})",
        ]
        if self.quarantined:
            lines.append("  quarantined replicas:")
            for machine, partition, index in self.quarantined:
                lines.append(
                    f"    machine {machine}: partition {partition}, "
                    f"chunk index {index}"
                )
        lines.append(f"  remediation: {self.remediation}")
        return "\n".join(lines)


class UnrecoverableJobError(RuntimeError):
    """The run cannot make progress and has been cleanly abandoned."""

    def __init__(self, diagnosis: JobDiagnosis):
        super().__init__(diagnosis.detail)
        self.diagnosis = diagnosis

"""In-simulation fault injection and live recovery (Section 6.6).

This package makes machine failures *happen inside the simulation* —
real crashed processes, dropped messages, expired leases, and a restore
path that reads replicated checkpoint bytes back through the modelled
network and storage devices — rather than being analytically costed.

The keystone invariant: for a fixed ``(config, seed)``, a fault-injected
run's final vertex values are byte-identical to the undisturbed run's
(requires ``aggregate_updates=False``, the default — the canonical
gather ordering makes the numeric reduction schedule-independent).

Entry points:

- :func:`repro.faults.plan.parse_fault_spec` / :class:`FaultPlan` — the
  ``--inject-fault`` grammar.
- ``run_algorithm(..., fault_plan=...)`` /
  ``ChaosCluster.run(..., fault_plan=...)`` — execution; the cluster's
  ``last_fault_timeline`` attribute holds the :class:`FaultTimeline`.
"""

from repro.faults.detector import (
    HEARTBEAT_BYTES,
    MEMBERSHIP_SERVICE,
    FailureDetector,
    HeartbeatSender,
)
from repro.faults.diagnosis import JobDiagnosis, UnrecoverableJobError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BYZANTINE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    parse_fault_spec,
)
from repro.faults.registry import CheckpointGeneration, CheckpointRegistry
from repro.faults.supervisor import (
    RESTORE_SERVICE,
    ClusterSupervisor,
    FaultRecord,
    FaultTimeline,
    RecoveryRound,
)

__all__ = [
    "BYZANTINE_KINDS",
    "HEARTBEAT_BYTES",
    "MEMBERSHIP_SERVICE",
    "RESTORE_SERVICE",
    "CheckpointGeneration",
    "CheckpointRegistry",
    "ClusterSupervisor",
    "FailureDetector",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "FaultTimeline",
    "HeartbeatSender",
    "JobDiagnosis",
    "RecoveryRound",
    "UnrecoverableJobError",
    "parse_fault_spec",
]

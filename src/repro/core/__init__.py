"""Chaos core: the GAS runtime, computation engines and cluster driver.

This package is the paper's primary contribution: an edge-centric GAS
(gather-apply-scatter) engine that executes streaming partitions spread
over the aggregate secondary storage of a cluster, with randomized chunk
placement, batched requests (Section 6.5), randomized work stealing
(Section 5.3-5.4) and optional two-phase checkpointing (Section 6.6).
"""

from repro.core.batching import (
    amplification_factor,
    request_window,
    utilization,
    utilization_limit,
)
from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm, GraphContext
from repro.core.metrics import Breakdown, IterationStats, JobResult
from repro.core.recovery import RecoveryReport, run_with_failure
from repro.core.runtime import ChaosCluster, run_algorithm
from repro.core.stealing import StealDecision, should_accept_steal

__all__ = [
    "Breakdown",
    "ChaosCluster",
    "ClusterConfig",
    "GasAlgorithm",
    "GraphContext",
    "IterationStats",
    "JobResult",
    "RecoveryReport",
    "run_with_failure",
    "StealDecision",
    "amplification_factor",
    "request_window",
    "run_algorithm",
    "should_accept_steal",
    "utilization",
    "utilization_limit",
]

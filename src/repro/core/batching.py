"""Request batching math (Section 6.5).

A computation engine keeps a window of outstanding chunk requests spread
randomly over the storage engines so that, with high probability, no
storage engine ever goes idle.  The paper derives:

* the amplification factor  φ = 1 + R_network / R_storage  (Eq. 3, via
  Little's law) — the window must be φk to keep k requests *at* the
  storage engines, because the rest are in transit;
* the utilization of a storage engine with m machines each keeping k
  requests outstanding:  ρ(m, k) = 1 − (1 − k/m)^m  (Eq. 4);
* its limit for large clusters:  lim ρ = 1 − e^−k  (Eq. 5).

These functions regenerate Figure 5 and predict the Figure 16 sweet
spot (φk = 10 for k = 5, φ = 2 on the paper's hardware).
"""

from __future__ import annotations

import math


def amplification_factor(network_rtt: float, storage_latency: float) -> float:
    """φ = 1 + R_network / R_storage (Eq. 3).

    ``network_rtt`` is the round-trip request latency on the network;
    ``storage_latency`` the storage engine's request service latency.
    On the paper's cluster the two are approximately equal, giving φ=2.
    """
    if network_rtt < 0:
        raise ValueError("network_rtt must be non-negative")
    if storage_latency <= 0:
        raise ValueError("storage_latency must be positive")
    return 1.0 + network_rtt / storage_latency


def request_window(k: int, network_rtt: float, storage_latency: float) -> int:
    """The engine's outstanding-request window φk (rounded up)."""
    if k < 1:
        raise ValueError("batch factor k must be >= 1")
    phi = amplification_factor(network_rtt, storage_latency)
    return max(1, math.ceil(phi * k))


def utilization(m: int, k: int) -> float:
    """ρ(m, k) = 1 − (1 − k/m)^m (Eq. 4).

    Probability that a given storage engine has at least one of the
    m·k outstanding requests directed at it.  For k ≥ m the utilization
    is 1 (every engine certainly targeted).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= m:
        return 1.0
    return 1.0 - (1.0 - k / m) ** m


def utilization_limit(k: int) -> float:
    """lim_{m→∞} ρ(m, k) = 1 − e^−k (Eq. 5).

    k = 5 keeps utilization above 99.3% for any cluster size — the
    justification for the paper's default batch factor.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 - math.exp(-k)

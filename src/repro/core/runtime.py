"""The cluster runtime: build a simulated deployment and run a job.

:class:`ChaosCluster` wires together everything the paper describes
(Figure 6): one process per machine containing a computation engine and
a storage engine, connected by a full-bisection network.  ``run``
executes a GAS algorithm over a real edge list (functional mode);
``run_model`` executes a phantom workload described by a
:class:`GraphSpec` and an activity profile (capacity mode).

All reported runtimes are simulated wall-clock seconds from the start of
pre-processing to the final vertex state being durable, matching the
paper's measurement convention (Section 8).
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.compute import ComputationEngine
from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm, GraphContext
from repro.core.job import JobCoordinator
from repro.core.metrics import Breakdown, JobResult
from repro.core.workload import DataWorkload, ModelWorkload, Workload
from repro.graph.edgelist import EdgeList, bytes_per_edge
from repro.graph.stats import out_degrees as compute_out_degrees
from repro.net.transport import Network
from repro.obs.counters import ResourceSampler
from repro.obs.tracer import NULL_TRACER, NULL_TRACK, TID_JOB
from repro.partition.streaming import (
    PartitionLayout,
    choose_partition_count,
    partition_edges,
)
from repro.sim.engine import DeadlineExceeded, Simulator
from repro.sim.sync import Barrier
from repro.store.chunk import Chunk, ChunkKind, split_into_chunks
from repro.store.engine import StorageEngine
from repro.store.memstore import MemoryChunkStore
from repro.store.placement import CentralizedDirectory, HashedVertexPlacement


def _integrity_counters(network, stores) -> Dict[str, int]:
    """Cluster-wide integrity/byzantine counters for the run summary.

    Network counters cover injected in-flight faults and their
    transport-level suppression; store counters cover the durability
    defenses (epoch fencing, torn-write repair, checksum re-reads).
    All are cumulative over the run, including re-executed epochs.
    """
    return {
        "messages_dropped": network.messages_dropped,
        "messages_corrupted": network.messages_corrupted,
        "messages_duplicated": network.messages_duplicated,
        "messages_reordered": network.messages_reordered,
        "duplicates_suppressed": network.duplicates_suppressed,
        "write_rejects": sum(s.write_rejects for s in stores),
        "torn_writes_repaired": sum(s.torn_writes_repaired for s in stores),
        "integrity_rereads": sum(s.integrity_rereads for s in stores),
        "stale_reads_served": sum(s.stale_reads_served for s in stores),
        "retransmits": sum(s.retransmits for s in stores),
    }


def _check_open_spans(tracer) -> None:
    """Warn if a clean run ends with spans still open (leaked begin()).

    A leaked span skews every downstream analysis (critpath sees an
    interval that never closes; durations go negative at export), so a
    clean finish with ``open_span_count() != 0`` is an instrumentation
    bug worth surfacing loudly — but not worth failing the job over.
    """
    if not tracer.enabled:
        return
    leaked = tracer.open_span_count()
    if leaked:
        warnings.warn(
            f"run finished with {leaked} trace span(s) still open; "
            f"the trace's durations are unreliable (leaked begin()?)",
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass
class GraphSpec:
    """Description of a graph for model-mode (phantom) runs.

    Capacity experiments (RMAT-36, Section 9.3) cannot materialize the
    graph; the engine only needs volumes: vertex count, edge count, and
    how edges distribute over the streaming partitions.
    """

    num_vertices: int
    num_edges: int
    weighted: bool = False
    #: "rmat" reproduces the analytic RMAT partition skew; "uniform"
    #: spreads edges evenly.
    skew: str = "rmat"

    def input_bytes(self) -> int:
        return self.num_edges * bytes_per_edge(self.num_vertices, self.weighted)

    def edge_record_bytes(self) -> int:
        return bytes_per_edge(self.num_vertices, self.weighted)

    def partition_fractions(self, num_partitions: int) -> np.ndarray:
        if self.skew == "uniform":
            return np.full(num_partitions, 1.0 / num_partitions)
        if self.skew == "rmat":
            return rmat_partition_fractions(num_partitions)
        raise ValueError(f"unknown skew model {self.skew!r}")

    @classmethod
    def rmat(cls, scale: int, weighted: bool = False) -> "GraphSpec":
        """The paper's scale-n graph: 2^n vertices, 2^(n+4) edges."""
        return cls(
            num_vertices=2**scale,
            num_edges=16 * 2**scale,
            weighted=weighted,
            skew="rmat",
        )


def rmat_partition_fractions(
    num_partitions: int, top_fraction: float = 0.76
) -> np.ndarray:
    """Exact per-partition edge fractions of an (unpermuted) RMAT graph.

    With vertex ranges over the raw RMAT id space, a partition's edge
    share is determined by the source-bit probabilities: each high-order
    id bit is 0 with probability a+b (= 0.76 for Graph500 parameters).
    For a power-of-two partition count the shares follow exactly; other
    counts are interpolated through a fine power-of-two grid.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    bits = max(1, math.ceil(math.log2(max(2, num_partitions))))
    grid = 2**bits
    shares = np.ones(grid)
    for bit in range(bits):
        factor = np.where(
            (np.arange(grid) >> (bits - 1 - bit)) & 1, 1 - top_fraction, top_fraction
        )
        shares *= factor
    # Aggregate the fine grid down to the requested partition count.
    boundaries = np.linspace(0, grid, num_partitions + 1)
    fractions = np.empty(num_partitions)
    cumulative = np.concatenate([[0.0], np.cumsum(shares)])
    for p in range(num_partitions):
        lo, hi = boundaries[p], boundaries[p + 1]
        lo_i, hi_i = int(lo), int(hi)
        value = cumulative[hi_i] - cumulative[lo_i]
        value += (lo_i - lo) * (shares[lo_i - 1] if lo_i > 0 and lo_i != lo else 0)
        if hi_i < grid and hi != hi_i:
            value += (hi - hi_i) * shares[hi_i]
        fractions[p] = value
    fractions = np.maximum(fractions, 0)
    return fractions / fractions.sum()


class ChaosCluster:
    """A simulated Chaos deployment, ready to run jobs."""

    def __init__(
        self,
        config: ClusterConfig,
        backend_factory: Optional[Callable[[int], object]] = None,
        tracer=None,
        sanitizer=None,
        host=None,
    ):
        self.config = config
        self.backend_factory = backend_factory or (lambda _m: MemoryChunkStore())
        #: Observability: a :class:`repro.obs.Tracer` records spans,
        #: instants and counter timelines of every run on this cluster;
        #: ``None`` (the default) costs nothing.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Happens-before sanitizer (:mod:`repro.analysis.sanitizer`):
        #: vector-clock race detection over cross-machine shared state;
        #: ``None`` (the default) costs nothing.
        self.sanitizer = (
            sanitizer if sanitizer is not None and sanitizer.enabled else None
        )
        #: Host profiler (:mod:`repro.obs.host`): real wall/CPU time per
        #: engine phase, recorded alongside the simulated spans; ``None``
        #: (the default) costs nothing — every engine resolves it to the
        #: no-op null profiler.
        self.host = host
        #: Introspection handles from the most recent run (protocol
        #: audits and tests): the storage engines and the network.
        self.last_stores: Optional[List[StorageEngine]] = None
        self.last_network: Optional[Network] = None
        #: :class:`repro.faults.FaultTimeline` of the most recent
        #: fault-injected run (``None`` for fault-free runs).
        self.last_fault_timeline = None
        #: :class:`repro.faults.CheckpointRegistry` of the most recent
        #: fault-injected run (quarantine/repair counters; ``None`` for
        #: fault-free runs).
        self.last_registry = None

    # ------------------------------------------------------------------
    # Functional (data) mode
    # ------------------------------------------------------------------

    def run(
        self,
        algorithm: GasAlgorithm,
        edges: EdgeList,
        initial_values=None,
        start_iteration: int = 0,
        fault_plan=None,
        deadline_seconds: Optional[float] = None,
    ) -> JobResult:
        """Execute ``algorithm`` on ``edges`` and return the result.

        Validates the algorithm's input requirements, performs the
        streaming-partition pre-processing, pre-places chunks, and runs
        the full simulated cluster to completion.

        ``initial_values`` resumes the computation from previously saved
        vertex state (a checkpoint): the paper's recovery model, in
        which all computation state lives in the vertex values
        (Section 6.6).

        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects
        machine faults into the run: crashes, partitions, and slow
        devices fire inside the simulation, the failure detector
        notices, and the cluster rolls back to the latest durable
        checkpoint and re-executes.  The final values are byte-identical
        to the fault-free run's for the same config and seed.

        ``deadline_seconds`` arms a simulated-time watchdog: if the run
        has not completed by that time, :class:`DeadlineExceeded` is
        raised instead of simulating a wedged cluster forever.  The
        chaos fuzzer uses this to turn hangs into reportable violations.
        """
        config = self.config
        if algorithm.needs_weights and not edges.weighted:
            raise ValueError(
                f"{algorithm.name} requires edge weights; the input has none"
            )

        layout = self._make_layout(edges.num_vertices, algorithm)
        parts = partition_edges(edges, layout)

        ctx = GraphContext(
            num_vertices=edges.num_vertices,
            num_edges=edges.num_edges,
            weighted=edges.weighted,
            out_degrees=(
                compute_out_degrees(edges) if algorithm.needs_out_degrees else None
            ),
        )
        workload = DataWorkload(algorithm, layout, ctx, initial_values=initial_values)
        edge_bytes = bytes_per_edge(edges.num_vertices, edges.weighted)
        return self._execute(
            workload,
            layout,
            input_bytes=edges.storage_bytes(),
            edge_chunk_loader=lambda placement_rng, stores: self._place_data_chunks(
                parts, layout, edge_bytes, placement_rng, stores
            ),
            start_iteration=start_iteration,
            fault_plan=fault_plan,
            deadline_seconds=deadline_seconds,
        )

    # ------------------------------------------------------------------
    # Capacity (model) mode
    # ------------------------------------------------------------------

    def run_model(self, algorithm: GasAlgorithm, spec: GraphSpec, profile) -> JobResult:
        """Execute a phantom workload described by ``spec`` + ``profile``."""
        layout = self._make_layout(spec.num_vertices, algorithm)
        workload = ModelWorkload(algorithm, layout, profile)
        fractions = spec.partition_fractions(layout.num_partitions)
        edge_bytes = spec.edge_record_bytes()
        total_bytes = spec.input_bytes()

        def loader(placement_rng, stores):
            total_chunks = 0
            for p in range(layout.num_partitions):
                part_bytes = int(round(total_bytes * fractions[p]))
                for size in split_into_chunks(part_bytes, self.config.chunk_bytes):
                    records = max(1, size // edge_bytes)
                    chunk = Chunk(
                        partition=p,
                        kind=ChunkKind.EDGES,
                        size=size,
                        payload=None,
                        records=records,
                    )
                    stores[placement_rng.randrange(len(stores))].preload_chunk(chunk)
                    total_chunks += 1
            return total_chunks

        return self._execute(
            workload,
            layout,
            input_bytes=total_bytes,
            edge_chunk_loader=loader,
        )

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _make_layout(
        self, num_vertices: int, algorithm: GasAlgorithm
    ) -> PartitionLayout:
        config = self.config
        if config.partitions_per_machine is not None:
            count = config.machines * config.partitions_per_machine
        else:
            count = choose_partition_count(
                num_vertices,
                config.machines,
                algorithm.vertex_state_bytes(),
                config.memory_bytes,
            )
        return PartitionLayout.even(num_vertices, count)

    def _place_data_chunks(
        self,
        parts: List[EdgeList],
        layout: PartitionLayout,
        edge_bytes: int,
        placement_rng: random.Random,
        stores: List[StorageEngine],
    ) -> int:
        """Split per-partition edge lists into chunks at random engines."""
        chunk_records = max(1, self.config.chunk_bytes // edge_bytes)
        total_chunks = 0
        for p, part in enumerate(parts):
            for start in range(0, part.num_edges, chunk_records):
                stop = min(start + chunk_records, part.num_edges)
                payload = {
                    "src": part.src[start:stop],
                    "dst": part.dst[start:stop],
                }
                if part.weighted:
                    payload["weight"] = part.weight[start:stop]
                chunk = Chunk(
                    partition=p,
                    kind=ChunkKind.EDGES,
                    size=(stop - start) * edge_bytes,
                    payload=payload,
                    records=stop - start,
                )
                stores[placement_rng.randrange(len(stores))].preload_chunk(chunk)
                total_chunks += 1
        return total_chunks

    def _place_vertex_chunks(
        self, workload: Workload, layout: PartitionLayout, stores
    ) -> None:
        placement = HashedVertexPlacement(self.config.machines)
        for p in range(layout.num_partitions):
            total = workload.vertex_set_bytes(p)
            for index, size in enumerate(
                split_into_chunks(total, self.config.chunk_bytes)
            ):
                chunk = Chunk(
                    partition=p,
                    kind=ChunkKind.VERTICES,
                    size=size,
                    payload=None,
                    index=index,
                )
                stores[placement.machine_for(p, index)].preload_chunk(chunk)

    def _make_sampler(
        self, sim, tracer, stores, network: Network, engines
    ) -> ResourceSampler:
        """Periodic per-device / per-NIC / per-core-bank telemetry probes.

        The sampled series reproduce Figure 5-style utilization
        timelines from a live run: device busy fraction and queue depth,
        NIC busy fraction, cumulative bytes, and busy cores.
        """
        sampler = ResourceSampler(sim, tracer, tracer.sample_interval)
        for m, store in enumerate(stores):
            sampler.add_probe(
                f"m{m}.device.busy",
                m,
                store.device_busy_time,
                mode="busy_fraction",
            )
            sampler.add_probe(
                f"m{m}.device.queue_s", m, store.device_queue_delay, mode="value"
            )
            sampler.add_probe(
                f"m{m}.device.bytes",
                m,
                store.device_bytes_served,
                mode="value",
            )
        for m, nic in enumerate(network.nics):
            sampler.add_probe(
                f"m{m}.nic.tx.busy",
                m,
                lambda meter=nic.egress.meter: meter.busy_time,
                mode="busy_fraction",
            )
            sampler.add_probe(
                f"m{m}.nic.rx.busy",
                m,
                lambda meter=nic.ingress.meter: meter.busy_time,
                mode="busy_fraction",
            )
            sampler.add_probe(
                f"m{m}.nic.tx.bytes", m, nic.bytes_sent, mode="value"
            )
            sampler.add_probe(
                f"m{m}.nic.rx.bytes", m, nic.bytes_received, mode="value"
            )
        for m, engine in enumerate(engines):
            sampler.add_probe(
                f"m{m}.cores.busy", m, engine.cores.busy_cores, mode="value"
            )
        return sampler

    @staticmethod
    def _arm_deadline(sim: Simulator, deadline_seconds: Optional[float]) -> None:
        """Schedule the watchdog; a completed run never reaches it."""
        if deadline_seconds is None:
            return

        def expire() -> None:
            raise DeadlineExceeded(
                f"run exceeded simulated deadline of {deadline_seconds:g}s "
                f"(possible livelock or recovery loop)"
            )

        sim.schedule(deadline_seconds, expire)

    def _execute(
        self,
        workload: Workload,
        layout: PartitionLayout,
        input_bytes: int,
        edge_chunk_loader,
        start_iteration: int = 0,
        fault_plan=None,
        deadline_seconds: Optional[float] = None,
    ) -> JobResult:
        if fault_plan is not None and fault_plan:
            return self._execute_with_faults(
                workload,
                layout,
                input_bytes,
                edge_chunk_loader,
                start_iteration,
                fault_plan,
                deadline_seconds,
            )
        self.last_fault_timeline = None
        self.last_registry = None
        config = self.config
        sim = Simulator()
        tracer = self.tracer
        job_track = None
        if tracer.enabled:
            tracer.bind_run(lambda: sim.now)
            for m in range(config.machines):
                tracer.set_process(m, f"machine{m}")
            tracer.set_process(config.machines, "cluster")
            job_track = tracer.thread(config.machines, TID_JOB, "job")
            sim.process_hook = lambda process, phase: job_track.instant(
                f"process.{phase}", args={"name": process.name}
            )
            # Self-describing trace: the attribution analyzer
            # (repro.obs.critpath) reads the cluster shape from this
            # marker so saved traces can be analyzed without the config.
            job_track.instant(
                "job.config",
                args={
                    "machines": config.machines,
                    "cores": config.cores,
                    "chunk_bytes": config.chunk_bytes,
                    "batch_factor": config.batch_factor,
                    "steal_alpha": config.steal_alpha,
                    "request_window": config.effective_request_window(),
                    "algorithm": workload.algorithm.name,
                },
            )
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.bind_run(
                config.machines, now=lambda: sim.now, track=job_track
            )
        network = Network(
            sim, config.machines, config.network, tracer=tracer,
            sanitizer=sanitizer, host=self.host,
            integrity=config.integrity_checks,
        )
        stores = [
            StorageEngine(
                sim,
                network,
                m,
                config.device,
                self.backend_factory(m),
                tracer=tracer,
                sanitizer=sanitizer,
                host=self.host,
                integrity=config.integrity_checks,
                job_track=job_track if job_track is not None else NULL_TRACK,
            )
            for m in range(config.machines)
        ]
        self._arm_deadline(sim, deadline_seconds)
        # Stable seed (string hash() is salted per process).
        placement_rng = random.Random(config.seed * 1_000_003 + 99991)
        edge_chunk_loader(placement_rng, stores)
        self._place_vertex_chunks(workload, layout, stores)

        directory = None
        if config.placement == "centralized":
            directory = CentralizedDirectory(
                sim,
                network,
                home=0,
                lookups_per_second=config.directory_lookups_per_second,
                seed=config.seed,
            )

        job = JobCoordinator(workload, stores, start_iteration=start_iteration)
        barrier = Barrier(
            sim, parties=config.machines, name="phase-barrier",
            sanitizer=sanitizer,
        )
        per_machine_input = -(-input_bytes // config.machines)
        engines = [
            ComputationEngine(
                sim,
                network,
                m,
                config,
                workload,
                job,
                local_store=stores[m],
                barrier=barrier,
                directory=directory,
                input_bytes_share=per_machine_input,
                tracer=tracer,
                sanitizer=sanitizer,
                host=self.host,
            )
            for m in range(config.machines)
        ]
        sampler = None
        if tracer.enabled and tracer.sample_interval is not None:
            sampler = self._make_sampler(sim, tracer, stores, network, engines)
            sampler.start()
        processes = [
            sim.process(engine.main(), name=f"engine{m}")
            for m, engine in enumerate(engines)
        ]
        sim.run_until(sim.all_of([p.finished for p in processes]))
        if sampler is not None:
            sampler.sample()  # close the timelines at the finish line
        integrity = _integrity_counters(network, stores)
        if job_track is not None:
            job_track.instant("job.integrity", args=dict(integrity))
            job_track.instant(
                "job.done", args={"algorithm": workload.algorithm.name}
            )
        _check_open_spans(tracer)
        self.last_stores = stores
        self.last_network = network

        storage_bytes = sum(s.bytes_served() for s in stores)
        return JobResult(
            algorithm=workload.algorithm.name,
            machines=config.machines,
            runtime=sim.now,
            preprocessing_seconds=job.preprocessing_end,
            iterations=job.completed_iterations(),
            iteration_stats=job.iteration_stats,
            breakdowns=[engine.metrics for engine in engines],
            storage_bytes=storage_bytes,
            network_bytes=network.total_bytes(),
            steals_accepted=job.steals_accepted,
            steals_rejected=job.steals_rejected,
            values=workload.final_values(),
            checkpoints=sum(e.checkpoints_written for e in engines),
            updates_written_records=sum(
                e.updates_written_records for e in engines
            ),
            updates_written_bytes=sum(e.updates_written_bytes for e in engines),
            integrity=integrity,
        )

    def _execute_with_faults(
        self,
        workload: Workload,
        layout: PartitionLayout,
        input_bytes: int,
        edge_chunk_loader,
        start_iteration: int,
        fault_plan,
        deadline_seconds: Optional[float] = None,
    ) -> JobResult:
        """Fault-injected execution: epochs, detection, live recovery.

        The supervisor owns the epoch loop (run → detect → fence →
        re-admit → restore → resume); this method wires the cluster the
        same way as :meth:`_execute`, plus a monitor network endpoint
        for the failure detector, a checkpoint registry, and a
        per-epoch engine factory.
        """
        # Imported lazily: repro.faults depends on repro.core.
        from repro.faults.detector import FailureDetector
        from repro.faults.injector import FaultInjector
        from repro.faults.registry import CheckpointRegistry
        from repro.faults.supervisor import ClusterSupervisor

        config = self.config
        if config.placement == "centralized":
            raise ValueError(
                "fault injection does not support the centralized placement "
                "baseline (directory replies carry no recovery epoch)"
            )
        if self.sanitizer is not None:
            raise ValueError(
                "fault injection and the happens-before sanitizer are "
                "mutually exclusive (vector clocks do not model epochs)"
            )
        if not hasattr(workload, "snapshot_partition"):
            raise ValueError(
                "fault injection requires a data-mode workload (model-mode "
                "phantom runs have no vertex state to checkpoint)"
            )
        fault_plan.validate(config)

        sim = Simulator()
        tracer = self.tracer
        job_track = None
        if tracer.enabled:
            tracer.bind_run(lambda: sim.now)
            for m in range(config.machines):
                tracer.set_process(m, f"machine{m}")
            tracer.set_process(config.machines, "cluster")
            job_track = tracer.thread(config.machines, TID_JOB, "job")
            sim.process_hook = lambda process, phase: job_track.instant(
                f"process.{phase}", args={"name": process.name}
            )
            # Self-describing trace: the attribution analyzer
            # (repro.obs.critpath) reads the cluster shape from this
            # marker so saved traces can be analyzed without the config.
            job_track.instant(
                "job.config",
                args={
                    "machines": config.machines,
                    "cores": config.cores,
                    "chunk_bytes": config.chunk_bytes,
                    "batch_factor": config.batch_factor,
                    "steal_alpha": config.steal_alpha,
                    "request_window": config.effective_request_window(),
                    "algorithm": workload.algorithm.name,
                },
            )
        # One extra endpoint: the failure-detector monitor.
        network = Network(
            sim, config.machines, config.network, tracer=tracer,
            host=self.host, extra_endpoints=1,
            integrity=config.integrity_checks,
        )
        stores = [
            StorageEngine(
                sim, network, m, config.device, self.backend_factory(m),
                tracer=tracer, host=self.host,
                integrity=config.integrity_checks,
                job_track=job_track if job_track is not None else NULL_TRACK,
            )
            for m in range(config.machines)
        ]
        self._arm_deadline(sim, deadline_seconds)
        placement_rng = random.Random(config.seed * 1_000_003 + 99991)
        edge_chunk_loader(placement_rng, stores)
        self._place_vertex_chunks(workload, layout, stores)

        registry = CheckpointRegistry(
            layout.num_partitions, causal=tracer.causal
        )
        # Bound immediately (not just on success) so a diagnosed run's
        # quarantine counters stay inspectable after the exception.
        self.last_registry = registry
        detector = FailureDetector(
            sim,
            network,
            config.machines,
            monitor=config.machines,
            lease=config.effective_lease_timeout(),
        )
        per_machine_input = -(-input_bytes // config.machines)
        # The current epoch's engines, for telemetry probes that must
        # survive epoch turnover (the list object is reused in place).
        live_engines: List[ComputationEngine] = []

        def build_epoch(epoch, resume_iteration, preprocess):
            job = JobCoordinator(
                workload, stores, start_iteration=resume_iteration
            )
            barrier = Barrier(
                sim, parties=config.machines, name=f"phase-barrier.e{epoch}"
            )
            engines = [
                ComputationEngine(
                    sim,
                    network,
                    m,
                    config,
                    workload,
                    job,
                    local_store=stores[m],
                    barrier=barrier,
                    input_bytes_share=per_machine_input,
                    tracer=tracer,
                    host=self.host,
                    epoch=epoch,
                    preprocess=preprocess,
                    registry=registry,
                    liveness=detector,
                )
                for m in range(config.machines)
            ]
            live_engines[:] = engines
            processes = [
                sim.process(engine.main(), name=f"engine{m}.e{epoch}")
                for m, engine in enumerate(engines)
            ]
            return job, barrier, engines, processes

        supervisor = ClusterSupervisor(
            sim,
            config,
            network,
            stores,
            workload,
            registry,
            detector,
            build_epoch,
            job_track=job_track if job_track is not None else NULL_TRACK,
        )
        injector = FaultInjector(sim, supervisor, fault_plan, config)
        injector.start()

        sampler = None
        if tracer.enabled and tracer.sample_interval is not None:
            sampler = self._make_sampler(sim, tracer, stores, network, [])
            for m in range(config.machines):
                sampler.add_probe(
                    f"m{m}.cores.busy",
                    m,
                    lambda m=m: (
                        live_engines[m].cores.busy_cores()
                        if m < len(live_engines)
                        else 0
                    ),
                    mode="value",
                )
            sampler.start()

        supervisor.execute(start_iteration)
        if sampler is not None:
            sampler.sample()
        integrity = _integrity_counters(network, stores)
        if job_track is not None:
            job_track.instant("job.integrity", args=dict(integrity))
            job_track.instant(
                "job.done", args={"algorithm": workload.algorithm.name}
            )
        if not supervisor.timeline.faults:
            # Kills legitimately strand the victims' open spans; only a
            # fault-free timeline is held to the no-leak invariant.
            _check_open_spans(tracer)
        self.last_stores = stores
        self.last_network = network
        self.last_fault_timeline = supervisor.timeline
        self.last_registry = registry

        # Assemble the result across epochs: wall-time categories and
        # I/O counters sum over every epoch's engines (re-executed work
        # really happened); the logical iteration trajectory comes from
        # the final epoch.
        jobs = supervisor.epoch_jobs
        final_job = jobs[-1]
        breakdowns = []
        for m in range(config.machines):
            merged = Breakdown()
            for engines in supervisor.epoch_engines:
                merged = merged.merged_with(engines[m].metrics)
            breakdowns.append(merged)
        all_stats = [
            stats for job in jobs for stats in job.iteration_stats
        ]
        storage_bytes = sum(s.bytes_served() for s in stores)
        return JobResult(
            algorithm=workload.algorithm.name,
            machines=config.machines,
            runtime=sim.now,
            preprocessing_seconds=jobs[0].preprocessing_end,
            iterations=final_job.iteration_stats[-1].iteration + 1,
            iteration_stats=all_stats,
            breakdowns=breakdowns,
            storage_bytes=storage_bytes,
            network_bytes=network.total_bytes(),
            steals_accepted=sum(j.steals_accepted for j in jobs),
            steals_rejected=sum(j.steals_rejected for j in jobs),
            values=workload.final_values(),
            checkpoints=sum(
                e.checkpoints_written
                for engines in supervisor.epoch_engines
                for e in engines
            ),
            updates_written_records=sum(
                e.updates_written_records
                for engines in supervisor.epoch_engines
                for e in engines
            ),
            updates_written_bytes=sum(
                e.updates_written_bytes
                for engines in supervisor.epoch_engines
                for e in engines
            ),
            integrity=integrity,
        )


def run_algorithm(
    algorithm: GasAlgorithm,
    edges: EdgeList,
    config: Optional[ClusterConfig] = None,
    tracer=None,
    sanitizer=None,
    host=None,
    fault_plan=None,
    deadline_seconds=None,
    **config_overrides,
) -> JobResult:
    """Convenience one-shot entry point.

    >>> result = run_algorithm(PageRank(iterations=5), graph, machines=4)

    Pass ``tracer=repro.obs.Tracer()`` to record spans and utilization
    timelines of the run (see :mod:`repro.obs`),
    ``sanitizer=repro.analysis.Sanitizer()`` to race-check the run's
    cross-machine shared-state accesses, and
    ``fault_plan=repro.faults.FaultPlan.parse([...])`` to inject machine
    faults and exercise live recovery.  Pass
    ``host=repro.obs.HostProfiler()`` to measure the real (host) wall
    and CPU time of each engine phase alongside the simulated spans.
    """
    if config is None:
        config = ClusterConfig(**config_overrides)
    elif config_overrides:
        config = config.with_(**config_overrides)
    cluster = ChaosCluster(config, tracer=tracer, sanitizer=sanitizer, host=host)
    return cluster.run(
        algorithm, edges, fault_plan=fault_plan,
        deadline_seconds=deadline_seconds,
    )
